"""Benchmark / reproduction of Fig. 11 (estimator dispersion, 500 runs)."""

from __future__ import annotations

from repro.experiments import fig11


def test_fig11(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig11.Fig11Config()
    else:
        config = fig11.Fig11Config(
            dataset_counts=[50, 500, 5000], n_replications=40
        )
    result = benchmark.pedantic(fig11.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    stds = [r["rel_std_pct"] for r in result.rows]
    assert stds == sorted(stds, reverse=True) or stds[0] > stds[-1]
    assert stds[-1] < 5.0  # paper: ≈2% at 5k data sets
