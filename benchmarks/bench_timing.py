"""Benchmark / reproduction of Section 7.7 (tool running times)."""

from __future__ import annotations

from repro.experiments import timing


def test_timing(benchmark, paper_scale, reporter):
    if paper_scale:
        config = timing.TimingConfig()
    else:
        config = timing.TimingConfig(
            dataset_counts=[100, 1000, 10_000], tpn_cap=5_000
        )
    result = benchmark.pedantic(timing.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    assert all(r["system_sim_s"] >= 0 for r in result.rows)
