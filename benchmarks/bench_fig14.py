"""Benchmark / reproduction of Fig. 14 (heterogeneous network)."""

from __future__ import annotations

import pytest

from repro.experiments import fig14


def test_fig14(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig14.Fig14Config()
    else:
        config = fig14.Fig14Config(
            sides=[(2, 3), (3, 4), (4, 5)],
            n_datasets=6000,
            tpn_datasets=3000,
        )
    result = benchmark.pedantic(fig14.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    for r in result.rows:
        assert r["cst_system"] == pytest.approx(1.0, abs=0.03)
        if r["mode"] == "dominant":
            # Paper's claim holds exactly for the theory; the scaled-down
            # simulation renews on the single slow link, so its estimator
            # gets a wider band.
            assert r["exp_theory"] == pytest.approx(1.0, abs=0.04)
            assert r["exp_system"] == pytest.approx(1.0, abs=0.12)
