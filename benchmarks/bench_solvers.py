"""Micro-benchmarks of the algorithmic engines (not tied to one figure).

Measures the four throughput engines on a fixed mid-size system so
regressions in any layer are visible: the (max,+) cycle solver, the
symbolic decomposition, the pattern CTMC, and the marking-chain method.
"""

from __future__ import annotations

import pytest

from repro.core import (
    overlap_throughput,
    pattern_throughput_exponential,
    strict_exponential_throughput,
)
from repro.core.pattern import CommPattern
from repro.experiments.fig10 import paper_system
from repro.maxplus import max_cycle_ratio
from repro.petri import build_overlap_tpn

from _util import make_mapping


def test_max_cycle_ratio_speed(benchmark):
    tpn = build_overlap_tpn(paper_system())
    graph = tpn.to_token_graph()
    result = benchmark(max_cycle_ratio, graph)
    assert result is not None and result.ratio > 0


def test_howard_speed(benchmark):
    """Policy iteration vs the cycle-ratio iteration above (same graph)."""
    from repro.maxplus import howard_max_cycle_ratio

    tpn = build_overlap_tpn(paper_system())
    graph = tpn.to_token_graph()
    ref = max_cycle_ratio(graph).ratio
    value = benchmark(howard_max_cycle_ratio, graph)
    assert value == pytest.approx(ref, rel=1e-9)


def test_dater_evolution_speed(benchmark):
    """The third evaluator: exact dater recursion over 200 rounds."""
    from repro.maxplus import dater_throughput
    from repro.core import overlap_throughput

    mp = paper_system()
    tpn = build_overlap_tpn(mp)
    est = benchmark.pedantic(
        dater_throughput, args=(tpn, 200), rounds=1, iterations=1
    )
    # The dater realizes the unbounded (no back-pressure) semantics.
    ref = overlap_throughput(mp, "deterministic")
    assert est == pytest.approx(ref, rel=0.05)


def test_symbolic_deterministic_speed(benchmark):
    mp = paper_system()
    rho = benchmark(overlap_throughput, mp, "deterministic")
    assert rho > 0


def test_symbolic_exponential_speed(benchmark):
    mp = paper_system()
    rho = benchmark(overlap_throughput, mp, "exponential")
    assert rho > 0


def test_heterogeneous_pattern_ctmc_speed(benchmark):
    import numpy as np

    rng = np.random.default_rng(0)
    means = tuple(rng.uniform(0.5, 2.0, 20).tolist())
    pattern = CommPattern(4, 5, means)
    rho = benchmark(pattern_throughput_exponential, pattern)
    assert rho > 0


def test_strict_marking_chain_speed(benchmark):
    mp = make_mapping([[0], [1, 2]], seed=1)
    rho = benchmark(
        strict_exponential_throughput, mp, max_states=400_000
    )
    assert rho > 0
