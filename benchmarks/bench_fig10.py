"""Benchmark / reproduction of Fig. 10 (throughput vs data-set count)."""

from __future__ import annotations

import pytest

from repro.experiments import fig10


def test_fig10(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig10.Fig10Config()
    else:
        config = fig10.Fig10Config(
            dataset_counts=[100, 1000, 10_000], tpn_max_datasets=3000
        )
    result = benchmark.pedantic(fig10.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    last = result.rows[-1]
    assert last["cst_system"] == pytest.approx(last["cst_theory"], rel=0.02)
    assert last["exp_system"] == pytest.approx(last["exp_theory"], rel=0.06)
