"""Benchmark / reproduction of Fig. 15 (the max(u,v)/(u+v-1) ratio)."""

from __future__ import annotations

import pytest

from repro.experiments import fig15


def test_fig15(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig15.Fig15Config()
    else:
        config = fig15.Fig15Config(
            senders=[2, 4, 5, 7, 10, 14], n_datasets=6000
        )
    result = benchmark.pedantic(fig15.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    for r in result.rows:
        assert r["exp_sim_norm"] == pytest.approx(r["ratio_formula"], rel=0.07)
        assert 0.5 < r["ratio_formula"] <= 1.0
