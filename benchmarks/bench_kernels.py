"""Micro-benchmarks of the kernel layer (vectorized vs reference engines).

The JSON perf trajectory lives in ``BENCH_PR<n>.json`` (written by
``python -m repro.cli bench``); these pytest-benchmark probes give the
same engines per-commit visibility next to the solver benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.petri import build_overlap_tpn, build_strict_tpn
from repro.petri.reachability import explore, explore_reference
from repro.sim import simulate_tpn
from repro.experiments.fig10 import paper_system

from _util import make_mapping


def _mid_size_net():
    return build_strict_tpn(make_mapping([[0, 1], [2, 3, 4], [5, 6, 7]], seed=1))


def test_explore_vectorized_speed(benchmark):
    tpn = _mid_size_net()
    tpn.kernel  # cache the incidence structures outside the timed region
    result = benchmark(explore, tpn, max_states=500_000)
    assert result.n_states == 10_368


def test_explore_reference_speed(benchmark):
    """The seed implementation — the denominator of the ≥5× target."""
    tpn = _mid_size_net()
    result = benchmark.pedantic(
        explore_reference, args=(tpn,), kwargs={"max_states": 500_000},
        rounds=2, iterations=1,
    )
    assert result.n_states == 10_368


def test_sim_fast_speed(benchmark):
    tpn = build_overlap_tpn(paper_system())
    tpn.kernel
    result = benchmark(
        simulate_tpn, tpn, n_datasets=1000, seed=7, engine="fast"
    )
    assert result.n_processed == 1000


def test_sim_reference_speed(benchmark):
    tpn = build_overlap_tpn(paper_system())
    ref = benchmark.pedantic(
        simulate_tpn, args=(tpn,),
        kwargs={"n_datasets": 1000, "seed": 7, "engine": "reference"},
        rounds=2, iterations=1,
    )
    fast = simulate_tpn(tpn, n_datasets=1000, seed=7, engine="fast")
    assert np.array_equal(fast.completion_times, ref.completion_times)
