"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one table/figure of the paper (Section 7)
through pytest-benchmark: the benchmark measures the driver's runtime and
the printed rows are the reproduced series. ``--benchmark-only`` runs just
these. Scaled-down configurations keep the suite in CI-friendly territory;
pass ``--paper-scale`` for the full campaigns.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the full-size experimental campaigns of the paper",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return bool(request.config.getoption("--paper-scale"))


@pytest.fixture(scope="session")
def reporter():
    """Collect rendered experiment tables; print and persist at session end.

    The tables are the regenerated paper rows. They are printed (visible
    with ``-s``) and always written to ``benchmark_report.txt`` at the
    repository root, since pytest's capture swallows teardown prints.
    """
    import pathlib

    tables: list[str] = []
    yield tables
    text = "\n\n".join(tables) + "\n"
    print()
    print(text)
    out = pathlib.Path(__file__).resolve().parent.parent / "benchmark_report.txt"
    out.write_text(text)
