"""Ablation benches for the design choices called out in DESIGN.md.

* buffer capacity: how fast the finite-buffer marking chain converges to
  the unbounded decomposition value (DESIGN §3.3);
* semantics gap: unbounded vs bottleneck on heterogeneous branches
  (DESIGN §3.2);
* TPN DES throttle: measured throughput is insensitive to the cap on
  symmetric systems.
"""

from __future__ import annotations

from repro.core import exponential_throughput, overlap_throughput
from repro.mapping.examples import single_communication
from repro.petri import build_overlap_tpn
from repro.sim.tpn_sim import simulate_tpn

from _util import make_mapping


def test_buffer_capacity_convergence(benchmark, reporter):
    """ρ(capacity B) increases towards the unbounded value."""
    mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
    target = overlap_throughput(mp, "exponential")

    def sweep():
        return [
            exponential_throughput(
                mp, "overlap", method="full", buffer_capacity=b,
                max_states=400_000,
            )
            for b in (1, 2, 4, 8)
        ]

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["# ablation: buffer capacity -> throughput (target %.6g)" % target]
    for b, v in zip((1, 2, 4, 8), values):
        lines.append(f"B={b}: {v:.6g} ({100 * v / target:.2f}% of unbounded)")
    reporter.append("\n".join(lines))
    # Monotone 1 - O(1/B) convergence: strictly increasing, all below the
    # unbounded value, and already within ~15% at B = 8.
    assert values == sorted(values)
    assert values[-1] < target
    assert values[-1] > 0.8 * target


def test_semantics_gap_on_heterogeneous_branches(benchmark, reporter):
    """Unbounded >= bottleneck; strict gap on a skewed two-team system."""
    mp = make_mapping(
        [[0], [1, 2]], works=[0.01, 2.0], files=[0.01],
        speeds=[100.0, 10.0, 0.5],
    )

    def compute():
        return (
            overlap_throughput(mp, "deterministic"),
            overlap_throughput(mp, "deterministic", semantics="bottleneck"),
        )

    unb, bot = benchmark.pedantic(compute, rounds=1, iterations=1)
    reporter.append(
        f"# ablation: semantics gap  unbounded={unb:.6g}  bottleneck={bot:.6g}"
    )
    assert unb > bot * 1.5  # the skew makes the gap large


def test_throttle_insensitivity(benchmark, reporter):
    """On symmetric systems the DES throttle does not bias throughput."""
    mp = single_communication(3, 4)
    tpn = build_overlap_tpn(mp)

    def sweep():
        return [
            simulate_tpn(
                tpn, n_datasets=4000, law="exponential", seed=5, throttle=t
            ).steady_state_throughput()
            for t in (4, 16, 64)
        ]

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reporter.append(
        "# ablation: DES throttle -> throughput "
        + ", ".join(f"{t}:{v:.4g}" for t, v in zip((4, 16, 64), values))
    )
    assert max(values) - min(values) < 0.05 * max(values)
