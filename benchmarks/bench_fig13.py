"""Benchmark / reproduction of Fig. 13 (Theorem 4 vs simulation)."""

from __future__ import annotations

import pytest

from repro.experiments import fig13


def test_fig13(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig13.Fig13Config()
    else:
        config = fig13.Fig13Config(
            sides=[(2, 3), (3, 4), (4, 5), (5, 7), (2, 9)], n_datasets=6000
        )
    result = benchmark.pedantic(fig13.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    for r in result.rows:
        assert r["exp_sim"] == pytest.approx(r["exp_theory"], rel=0.06)
