"""Benchmark / reproduction of Fig. 16 (N.B.U.E. laws inside the bounds)."""

from __future__ import annotations

from repro.experiments import fig16


def test_fig16(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig16.Fig16Config()
    else:
        config = fig16.Fig16Config(senders=[3, 4, 7], n_datasets=12_000)
    result = benchmark.pedantic(fig16.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    assert all(r["all_inside"] for r in result.rows)
