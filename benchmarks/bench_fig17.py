"""Benchmark / reproduction of Fig. 17 (non-N.B.U.E. laws escape)."""

from __future__ import annotations

from repro.experiments import fig17


def test_fig17(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig17.Fig17Config()
    else:
        config = fig17.Fig17Config(senders=[3, 4, 7], n_datasets=6000)
    result = benchmark.pedantic(fig17.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    for r in result.rows:
        assert r["gamma(shape=0.25)"] < r["lower_exp"] * 0.97
        assert r["hyperexponential(cv2=6)"] < r["lower_exp"] * 0.97
