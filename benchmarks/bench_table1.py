"""Benchmark / reproduction of Table 1 (critical-resource census)."""

from __future__ import annotations

from repro.experiments import table1


def test_table1(benchmark, paper_scale, reporter):
    scale = 1.0 if paper_scale else 0.05
    config = table1.scaled_config(scale)
    if not paper_scale:
        # Keep the benchmark loop tight: two small-comm classes dominate
        # the paper's interesting rows (where Strict gaps appear).
        config.classes = config.classes[:2] + config.classes[6:8]
    result = benchmark.pedantic(table1.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    overlap_rows = [r for r in result.rows if r["model"] == "overlap"]
    assert all(r["no_critical"] == 0 for r in overlap_rows)
