"""Small helpers local to the benchmark suite."""

from __future__ import annotations

import numpy as np

from repro import Application, Mapping, Platform


def make_mapping(
    teams: list[list[int]],
    *,
    works: list[float] | None = None,
    files: list[float] | None = None,
    speeds: list[float] | None = None,
    bandwidth: float = 1.0,
    seed: int | None = None,
) -> Mapping:
    """Compact mapping builder (mirror of the test-suite helper)."""
    n = len(teams)
    m = max(p for t in teams for p in t) + 1
    works = works if works is not None else [1.0] * n
    files = files if files is not None else [1.0] * (n - 1)
    app = Application.from_work(works, files)
    if seed is not None:
        r = np.random.default_rng(seed)
        speeds = r.uniform(0.5, 2.0, m).tolist()
        bw = r.uniform(0.5, 2.0, (m, m))
        bw = np.triu(bw, 1)
        bw = bw + bw.T + np.eye(m)
        platform = Platform.from_speeds(speeds, bw)
    else:
        speeds = speeds if speeds is not None else [1.0] * m
        platform = Platform.from_speeds(speeds, bandwidth)
    return Mapping(app, platform, teams)
