"""Benchmark / reproduction of Fig. 12 (throughput flat in #stages)."""

from __future__ import annotations

from repro.experiments import fig12


def test_fig12(benchmark, paper_scale, reporter):
    if paper_scale:
        config = fig12.Fig12Config()
    else:
        config = fig12.Fig12Config(link_counts=[1, 3, 6], n_datasets=4000)
    result = benchmark.pedantic(fig12.run, args=(config,), rounds=1, iterations=1)
    reporter.append(result.render())
    sims = result.column("exp_sim_norm")
    # Flat curve (longer chains read slightly low on finite runs — the
    # equal-rate components sit on a null-recurrent boundary).
    assert max(sims) - min(sims) < 0.12
