#!/usr/bin/env python3
"""The paper's Example A, end to end (Fig. 1, Sections 3-4).

Reconstructs the 4-stage / 7-processor mapping with replication, builds
the timed Petri nets of both execution models (Figs. 2 and 3), and
reproduces the paper's structural observations:

* 6 round-robin paths (Proposition 1);
* the Overlap net is feed-forward, the Strict net is strongly connected;
* the Overlap throughput is pinned by a critical resource while the
  Strict model can lose throughput on mixed-resource cycles
  (period > Mct, Section 4.2).

Run: ``python examples/paper_example_a.py``
"""

from repro import StreamingSystem
from repro.core import scc_rates_deterministic
from repro.mapping import example_a, max_cycle_time
from repro.petri import (
    build_overlap_tpn,
    build_strict_tpn,
    is_feed_forward,
    is_strongly_connected,
)


def main() -> None:
    mp = example_a()
    print(f"Example A: {mp}")
    print("teams:", mp.teams)
    print("paths (Proposition 1):")
    for j, path in enumerate(mp.paths()):
        print(f"  data sets {j} mod 6 -> " + " -> ".join(f"P{p}" for p in path))

    overlap = build_overlap_tpn(mp)
    strict = build_strict_tpn(mp)
    print(f"\nOverlap TPN: {overlap}")
    print(f"  feed-forward: {is_feed_forward(overlap)}")
    print(f"Strict TPN:  {strict}")
    print(f"  strongly connected: {is_strongly_connected(strict)}")

    comps, inner, effective = scc_rates_deterministic(overlap)
    print(f"\nOverlap SCCs: {len(comps)} components")

    for model in ("overlap", "strict"):
        sys_ = StreamingSystem(mp, model)
        rho = sys_.deterministic_throughput(
            semantics="bottleneck" if model == "overlap" else "unbounded"
        )
        mct = max_cycle_time(mp, model)
        gap = (1 / mct - rho) / (1 / mct)
        print(
            f"\n{model:8s}: period = {1 / rho:8.3f}  Mct = {mct:8.3f}  "
            f"gap = {100 * gap:5.2f}%"
            + ("  <- no critical resource!" if gap > 1e-6 else "")
        )

    # Probabilistic view: exponential value and the N.B.U.E. sandwich.
    sys_ = StreamingSystem(mp, "overlap")
    bounds = sys_.throughput_bounds()
    print(
        f"\nOverlap N.B.U.E. sandwich: "
        f"[{bounds.lower:.5f}, {bounds.upper:.5f}] data sets per time unit"
    )
    sim = sys_.simulate(n_datasets=20_000, law="exponential", seed=0)
    print(f"exponential simulation   : {sim.steady_state_throughput():.5f}")


if __name__ == "__main__":
    main()
