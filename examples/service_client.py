"""Round-trip demo of the evaluation service (`repro.service`).

Embeds a server on a background thread (the same code path
``python -m repro.cli serve`` runs), then talks to it over a real
loopback socket with :class:`repro.service.ServiceClient`:

1. ``ping`` — version + live counters;
2. single ``evaluate`` / named-system ``solve`` requests;
3. a campaign-unit batch (the ``smoke`` preset), submitted twice —
   the second pass is answered entirely from cache (0 evaluator runs);
4. a simulated *restart*: a brand-new server on the same tier-2 disk
   cache still answers with 0 evaluator runs;
5. a poisoned request, which comes back as a structured failure record
   while the service keeps running;
6. a *faulty* server (injected dropped replies) transparently absorbed
   by the client's :class:`repro.service.RetryPolicy` — the operator's
   ``stats`` view shows the faults that fired.

Run with::

    PYTHONPATH=src python examples/service_client.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import expand, get_preset, unit_task_payload
from repro.service import (
    DiskScoreCache,
    EvaluationEngine,
    FaultInjector,
    RetryPolicy,
    ServiceClient,
    serve_in_thread,
)


def start_server(cache_path: Path):
    engine = EvaluationEngine(disk=DiskScoreCache(cache_path), max_entries=1024)
    server, thread = serve_in_thread(engine)
    return engine, server, thread


def stop_server(engine, server, thread) -> None:
    server.shutdown()
    server.server_close()
    engine.close()
    thread.join(timeout=5)


def main() -> None:
    tasks = [unit_task_payload(u) for u in expand(get_preset("smoke"))]
    with tempfile.TemporaryDirectory() as td:
        cache_path = Path(td) / "service_scores.jsonl"

        engine, server, thread = start_server(cache_path)
        host, port = server.endpoint
        print(f"server listening on {host}:{port}")
        with ServiceClient(host, port) as client:
            info = client.ping()
            print(f"ping: version {info['version']}")

            rho = client.solve("example_a", solver="deterministic")
            print(f"solve example_a (deterministic): {rho:.6g}")

            values, failures, stats = client.evaluate_batch(tasks)
            print(
                f"smoke batch #1: values={values} "
                f"(executed={stats['executed']})"
            )
            _values, _failures, stats = client.evaluate_batch(tasks)
            print(
                f"smoke batch #2: executed={stats['executed']}, "
                f"disk hits={stats['disk_hits']}, "
                f"memo hits={stats['memo_hits']}"
            )

            # One poisoned request never kills the daemon.
            poison = {
                "system": {"kind": "named", "params": {"name": "atlantis"}},
                "solver": "deterministic",
            }
            _vals, failures, _stats = client.evaluate_batch([poison])
            print(f"poisoned request -> failure record: {failures[0]}")
            print(f"server still alive: {bool(client.ping()['version'])}")
        stop_server(engine, server, thread)

        # A *restarted* server on the same disk cache: still 0 runs.
        engine, server, thread = start_server(cache_path)
        with ServiceClient(*server.endpoint) as client:
            _values, _failures, stats = client.evaluate_batch(tasks)
            print(
                f"after restart: executed={stats['executed']}, "
                f"disk hits={stats['disk_hits']}"
            )
        stop_server(engine, server, thread)

        # A faulty server: the first two replies are dropped on the
        # floor, and the retrying client never notices (the retried
        # work is absorbed by the caches, not recomputed).
        faults = FaultInjector({"drop": 2})
        # One shared budget: the server consumes drop/delay faults, the
        # engine crash/torn_tail — exactly how `repro.cli serve` wires it.
        engine = EvaluationEngine(disk=DiskScoreCache(cache_path), faults=faults)
        server, thread = serve_in_thread(engine, faults=faults)
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, seed=0)
        with ServiceClient(*server.endpoint, retry=policy) as client:
            rho = client.solve("example_a", solver="deterministic")
            stats = client.stats()
            print(
                f"under faults: solve example_a = {rho:.6g} "
                f"after {client.retries} retries "
                f"(faults fired: {stats['counters']['faults']['fired']})"
            )
        stop_server(engine, server, thread)


if __name__ == "__main__":
    main()
