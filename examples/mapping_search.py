#!/usr/bin/env python3
"""Using the evaluators inside a mapping-search heuristic (future work §8).

The paper's conclusion motivates exactly this: "designing polynomial time
heuristics for the NP-complete [mapping] problem ... compute the
throughput of heuristics and compare them together." The library ships
that layer in :mod:`repro.mapping.heuristics`; this example compares

* a work-proportional *balanced replication* baseline,
* greedy hill climbing,
* multi-start search,

scored either deterministically or by the exponential evaluator (which
optimizes the Theorem 7 floor — the throughput guaranteed under any
N.B.U.E. variability).

Run: ``python examples/mapping_search.py``
"""

from __future__ import annotations

import numpy as np

from repro import Application, Platform, StructureCache
from repro.mapping.heuristics import (
    balanced_replication,
    greedy_hill_climb,
    random_restart_search,
)


def main() -> None:
    rng = np.random.default_rng(3)
    app = Application.from_work(
        work=[1e9, 6e9, 4e9, 8e9],
        files=[80e6, 160e6, 80e6],
    )
    platform = Platform.from_speeds(
        rng.choice([1e9, 2e9, 4e9], size=12).tolist(), bandwidth=1e9
    )

    print("mapping heuristics, scored through the repro.evaluate registry\n")
    for mode in ("deterministic", "exponential"):
        # One shared structure cache: candidates revisited by any of the
        # three heuristics (or isomorphic relabellings of one) are scored
        # exactly once across the whole block.
        cache = StructureCache()
        base = balanced_replication(app, platform, mode=mode, cache=cache)
        climb = greedy_hill_climb(app, platform, mode=mode, seed=0, cache=cache)
        multi = random_restart_search(
            app, platform, mode=mode, n_restarts=4, seed=0, cache=cache
        )
        print(f"scoring solver = {mode}:")
        print(
            f"  balanced baseline : {base.throughput:.4f}  "
            f"R = {base.mapping.replication}"
        )
        print(
            f"  hill climb        : {climb.throughput:.4f}  "
            f"R = {climb.mapping.replication}  ({climb.evaluations} requests)"
        )
        print(
            f"  multi-start       : {multi.throughput:.4f}  "
            f"R = {multi.mapping.replication}  ({multi.evaluations} requests)"
        )
        stats = cache.stats()
        print(
            f"  evaluator traffic : {stats['requests']} requests -> "
            f"{stats['misses']} solver runs ({stats['hits']} memo hits)\n"
        )
    print(
        "note: scoring by the exponential evaluator hedges against "
        "variability — the selected mapping maximizes the Theorem 7 floor."
    )


if __name__ == "__main__":
    main()
