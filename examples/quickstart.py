#!/usr/bin/env python3
"""Quickstart: model a replicated pipeline and compute its throughput.

Walks through the library's whole surface on a small system:

1. describe a 3-stage application and a 6-processor platform;
2. map it one-to-many (the middle stage is replicated on 3 processors);
3. compute the deterministic throughput (paper Section 4);
4. compute the exponential-times throughput (Section 5);
5. bound the throughput for any N.B.U.E. law (Section 6, Theorem 7);
6. check everything by simulation (Section 7).

Run: ``python examples/quickstart.py``
"""

from repro import Application, Mapping, Platform, StreamingSystem


def main() -> None:
    # A video-ish pipeline: decode (2 Gflop) -> filter (6 Gflop) ->
    # encode (4 Gflop); the filter emits a heavy high-bitrate
    # intermediate stream (2 GB per batch), so the second communication
    # matters as much as the computations.
    app = Application.from_work(
        work=[2e9, 6e9, 4e9],
        files=[1e8, 2e9],
    )
    # Six 2-Gflop/s processors on a 1 GB/s switched network.
    platform = Platform.homogeneous(n=6, speed=2e9, bandwidth=1e9)

    # One-to-many mapping: the heavy middle stage is replicated x3, the
    # encoder x2. The team order is the round-robin order.
    mapping = Mapping(app, platform, teams=[[0], [1, 2, 3], [4, 5]])
    print(f"mapping: {mapping}")
    print(f"round-robin paths (Proposition 1): {mapping.n_rows}")
    for j, path in enumerate(mapping.paths()):
        print(f"  path {j}: data sets {j}, {j + mapping.n_rows}, ... -> {path}")

    system = StreamingSystem(mapping, model="overlap")

    det = system.deterministic_throughput()
    exp = system.exponential_throughput()
    print(f"\ndeterministic throughput : {det:.4f} data sets/s")
    print(f"exponential throughput   : {exp:.4f} data sets/s")

    bounds = system.throughput_bounds()
    print(
        f"N.B.U.E. sandwich        : [{bounds.lower:.4f}, {bounds.upper:.4f}] "
        "(Theorem 7)"
    )

    # Simulate with a realistic N.B.U.E. law (Erlang-3 = mildly variable).
    sim = system.simulate(
        n_datasets=20_000, law="erlang", law_params={"k": 3}, seed=42
    )
    measured = sim.steady_state_throughput()
    print(f"Erlang-3 simulation      : {measured:.4f} data sets/s")
    print(f"inside the sandwich?     : {bounds.contains(measured, rel_slack=0.02)}")

    # The critical-resource view (Section 2.3).
    report = system.critical_resource_report()
    print(
        f"\ncritical resource        : P{report.critical_proc} "
        f"(stage T{report.critical_stage + 1}), Mct = {report.mct:.3f}s, "
        f"gap = {100 * report.relative_gap:.2f}%"
    )


if __name__ == "__main__":
    main()
