#!/usr/bin/env python3
"""Finite buffers: what the paper's unbounded model costs in practice.

The paper's Overlap event graph is feed-forward, i.e. it assumes
unbounded inter-stage buffers. Real deployments bound them. This example
uses the library's capacitated extension (capacity places + the exact
marking CTMC of Theorem 2) to answer:

* how much throughput does a B-slot buffer retain vs the unbounded ideal?
* how does that interact with execution-time variability?

The punchline: with constant times B=2 already retains 100 % (there is no
jitter to absorb); with exponential times a balanced pipeline converges
only like 1 − O(1/B), so provisioning buffers is a *variability* question
— one the Theorem 7 machinery quantifies before any deployment.

Run: ``python examples/finite_buffers.py``
"""

from repro import Application, Mapping, Platform
from repro.core import exponential_throughput, overlap_throughput
from repro.petri import build_overlap_tpn
from repro.sim.tpn_sim import simulate_tpn


def main() -> None:
    app = Application.from_work([1e9, 1e9, 1e9], files=[1e8, 1e8])
    platform = Platform.homogeneous(n=3, speed=1e9, bandwidth=1e9)
    mapping = Mapping(app, platform, teams=[[0], [1], [2]])

    unbounded_exp = overlap_throughput(mapping, "exponential")
    unbounded_det = overlap_throughput(mapping, "deterministic")
    print("3-stage balanced pipeline, Overlap model")
    print(f"unbounded throughput: det = {unbounded_det:.4f}, "
          f"exp = {unbounded_exp:.4f}\n")

    print("buffer B | exp (exact CTMC) | retained | det (DES) | retained")
    for cap in (1, 2, 4, 8):
        rho_exp = exponential_throughput(
            mapping, "overlap", method="full", buffer_capacity=cap,
            max_states=500_000,
        )
        tpn = build_overlap_tpn(mapping, buffer_capacity=cap)
        rho_det = simulate_tpn(
            tpn, n_datasets=4000, law="deterministic", seed=0, throttle=None
        ).steady_state_throughput()
        print(
            f"{cap:8d} | {rho_exp:16.4f} | {100 * rho_exp / unbounded_exp:7.1f}% "
            f"| {rho_det:9.4f} | {100 * rho_det / unbounded_det:7.1f}%"
        )

    print(
        "\nconstant times reach 100% from B = 2 (B = 1 still serializes "
        "each computation with its transfer); exponential times converge "
        "like 1 - O(1/B) to the unbounded value."
    )


if __name__ == "__main__":
    main()
