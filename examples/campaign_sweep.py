#!/usr/bin/env python3
"""A declarative throughput campaign: spec → sweep → resumable store.

Instead of hand-coding an experiment loop, describe it as data: a
:class:`~repro.campaign.CampaignSpec` names the system, the solvers and
the parameter axes; the sweep engine expands the grid into
fingerprint-keyed units; the runner scores them through the
:mod:`repro.evaluate` registry into a crash-safe JSONL store that can
be resumed at any time.

This example sweeps the paper's single-communication pattern system
(Section 7.4) over senders × receivers × solver, shows that re-running
with ``resume=True`` executes nothing, and renders the report tables.

Run: ``python examples/campaign_sweep.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    SystemSpec,
    campaign_report,
    run_campaign,
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="sweep-demo",
        description="pattern system: theory across the (u, v, solver) grid",
        seed=7,
        scenarios=[
            ScenarioSpec(
                name="demo/pattern",
                description="u senders -> v receivers, unit link times",
                system=SystemSpec("single_communication", {"comm_time": 1.0}),
                axes={
                    "system.u": [2, 3, 4],
                    "system.v": [2, 3, 4],
                    "solver": ["deterministic", "exponential"],
                },
            ),
            ScenarioSpec(
                name="demo/simulated",
                description="Monte-Carlo check on the 3x3 pattern",
                system=SystemSpec(
                    "single_communication", {"u": 3, "v": 3, "comm_time": 1.0}
                ),
                solver="simulation",
                axes={"solver.n_datasets": [500, 2000]},
            ),
        ],
    )


def main() -> None:
    spec = build_spec()

    # The spec is plain data — it round-trips through JSON, so it can be
    # committed, diffed and re-run bit-identically.
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "campaign.json"
        spec_path.write_text(spec.to_json())
        spec = CampaignSpec.from_json(spec_path.read_text())

        store = ResultStore(Path(tmp) / "results.jsonl")
        summary = run_campaign(spec, store, n_jobs=2)
        print(summary.render())

        # Resuming a completed campaign executes nothing: every unit's
        # fingerprint is already in the store.
        resumed = run_campaign(
            spec, ResultStore(store.path), resume=True
        )
        print(f"\nresume     : executed {resumed.executed}, "
              f"skipped {resumed.skipped} (all already stored)\n")

        for result in campaign_report(ResultStore(store.path)):
            print(result.render())
            print()

    print(
        "note: unit seeds derive from content fingerprints, so the store "
        "is byte-identical for any worker count or execution order."
    )


if __name__ == "__main__":
    main()
