#!/usr/bin/env python3
"""Sizing a video-encoding farm: how much replication is enough?

The paper's motivating workloads are streaming media pipelines. This
example models a 5-stage transcoding chain (demux → decode → scale →
encode → mux) on a heterogeneous cluster and answers two capacity
questions with the library's exact evaluators:

* how does throughput grow as the encode stage gets more replicas?
* when does the interconnect (not the CPUs) become the bottleneck?

It also shows the Overlap vs Strict gap: single-threaded workers
(Strict) waste the overlap between I/O and computation.

Run: ``python examples/video_encoding_farm.py``
"""

import numpy as np

from repro import Application, Mapping, Platform, StreamingSystem
from repro.core import overlap_component_dag


def build_platform(n: int, *, bandwidth: float) -> Platform:
    """A cluster of mixed-generation nodes: 2, 3 or 4 Gflop/s."""
    rng = np.random.default_rng(7)
    speeds = rng.choice([2e9, 3e9, 4e9], size=n).tolist()
    return Platform.from_speeds(speeds, bandwidth)


def transcoding_chain() -> Application:
    # flop per frame-batch and bytes shipped between stages.
    return Application.from_work(
        work=[0.5e9, 6e9, 2e9, 12e9, 0.5e9],
        files=[50e6, 400e6, 400e6, 25e6],
    )


def farm(encode_replicas: int, *, bandwidth: float = 1e9) -> Mapping:
    """demux | decode x2 | scale x2 | encode xK | mux."""
    app = transcoding_chain()
    n_procs = 1 + 2 + 2 + encode_replicas + 1
    platform = build_platform(n_procs, bandwidth=bandwidth)
    k = 0
    teams = []
    for size in (1, 2, 2, encode_replicas, 1):
        teams.append(list(range(k, k + size)))
        k += size
    return Mapping(app, platform, teams)


def main() -> None:
    print("=== replication sweep (Overlap model, 1 GB/s network) ===")
    print("encoders | throughput (det) | throughput (exp) | bottleneck")
    for k in range(1, 8):
        mp = farm(k)
        dag = overlap_component_dag(mp, "deterministic")
        sys_ = StreamingSystem(mp, "overlap")
        det = sys_.deterministic_throughput()
        exp = sys_.exponential_throughput()
        print(
            f"{k:8d} | {det:16.4f} | {exp:16.4f} | {dag.bottleneck().label}"
        )

    print("\n=== network sweep (4 encoders) ===")
    print("bandwidth | throughput (det) | bottleneck")
    for bw in (4e9, 1e9, 0.25e9, 0.1e9, 0.05e9):
        mp = farm(4, bandwidth=bw)
        dag = overlap_component_dag(mp, "deterministic")
        print(
            f"{bw / 1e9:6.2f} GB/s | {dag.throughput:14.4f} | "
            f"{dag.bottleneck().label}"
        )

    print("\n=== Overlap vs Strict (4 encoders, 1 GB/s) ===")
    mp = farm(4)
    for model in ("overlap", "strict"):
        sys_ = StreamingSystem(mp, model)
        sim = sys_.simulate(n_datasets=5000, law="deterministic", seed=1)
        print(f"{model:8s}: {sim.steady_state_throughput():.4f} data sets/s")


if __name__ == "__main__":
    main()
