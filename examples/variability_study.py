#!/usr/bin/env python3
"""How much does execution-time variability cost? (Sections 6-7)

A practitioner question the paper answers precisely: given a mapped
pipeline, how far can random execution times push the throughput below
its deterministic design point?

* For any N.B.U.E. law the answer is bounded by Theorem 7: never below
  the same-means exponential system.
* For heavy-tailed (non-N.B.U.E.) noise all bets are off — we measure
  gamma(shape<1) and hyperexponential laws crossing the floor.

The example sweeps a realistic grid of laws on a replicated pipeline and
prints the throughput retained vs the deterministic value.

Run: ``python examples/variability_study.py``
"""

from repro import Application, Mapping, Platform, StreamingSystem
from repro.distributions import make_distribution


LAWS = [
    ("deterministic", {}),
    ("erlang", {"k": 8}),
    ("truncnorm", {"sigma": 0.3}),
    ("beta", {"shape": 2.0}),
    ("uniform", {}),
    ("gamma", {"shape": 2.0}),
    ("exponential", {}),
    ("gamma", {"shape": 0.5}),
    ("hyperexponential", {"cv2": 6.0}),
    ("lognormal", {"sigma": 1.2}),
]


def main() -> None:
    # Light computations around a heavy shuffle: the 3→4 replicated
    # communication is the bottleneck, which is where randomness hurts the
    # most (the Theorem 7 sandwich is widest on communication patterns).
    app = Application.from_work(
        work=[1e9, 3e9, 3e9, 1e9],
        files=[120e6, 2.5e9, 120e6],
    )
    platform = Platform.homogeneous(n=9, speed=3e9, bandwidth=1.5e9)
    mapping = Mapping(
        app, platform, teams=[[0], [1, 2, 3], [4, 5, 6, 7], [8]]
    )
    system = StreamingSystem(mapping, "overlap")

    bounds = system.throughput_bounds()
    det = bounds.upper
    print(f"pipeline: {mapping}")
    print(f"deterministic design point : {det:.4f} data sets/s")
    print(
        f"Theorem 7 floor (N.B.U.E.) : {bounds.lower:.4f} "
        f"({100 * bounds.lower / det:.1f}% retained)\n"
    )
    print(f"{'law':28s} {'cv²':>6s} {'NBUE':>5s} {'throughput':>11s} {'retained':>9s}")
    for family, params in LAWS:
        dist = make_distribution(family, 1.0, **params)
        sim = system.simulate(
            n_datasets=15_000, law=family, law_params=params, seed=101
        )
        rho = sim.steady_state_throughput()
        label = f"{family}({', '.join(f'{k}={v}' for k, v in params.items())})"
        flag = "*" if rho < bounds.lower * 0.98 else ""
        print(
            f"{label:28s} {dist.cv2:6.2f} {str(dist.is_nbue):>5s} "
            f"{rho:11.4f} {100 * rho / det:8.1f}%{flag}"
        )
    print("\n* = below the Theorem 7 floor (only possible for non-N.B.U.E. laws)")

    # How trustworthy is one simulated estimate? Section 7.3's answer:
    # replicate it. The vectorized engine batches all replications
    # through one recurrence pass, so this costs little more than a
    # single run.
    from repro.sim import ReplicationSpec, replicate

    summary = replicate(
        ReplicationSpec(mapping, "overlap", n_datasets=5_000, law="exponential"),
        n_replications=200,
        seed=101,
    )
    print(
        f"\nexponential estimator over {summary.n_replications} replications "
        f"(vectorized engine): mean {summary.mean:.4f}, "
        f"std {100 * summary.relative_std:.2f}% of mean, "
        f"range [{summary.min:.4f}, {summary.max:.4f}]"
    )


if __name__ == "__main__":
    main()
