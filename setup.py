"""Legacy shim so editable installs work without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (and ``python setup.py develop``) on
minimal offline environments.
"""

from setuptools import setup

setup()
