"""Cross-module integration tests: every layer against every other.

The philosophy of this suite: the library ships *four* independent ways
to evaluate a system (symbolic decomposition, unrolled SCC analysis,
marking CTMC, and two unrelated simulators). Any disagreement beyond
sampling noise is a bug somewhere; these tests pit them against each
other on non-trivial systems.
"""

from __future__ import annotations

import pytest

from repro import StreamingSystem
from repro.core import (
    overlap_throughput,
    strict_exponential_throughput,
    throughput_bounds,
    tpn_exponential_throughput_scc,
    tpn_throughput_classic,
    tpn_throughput_deterministic,
)
from repro.mapping.examples import example_a
from repro.petri import build_overlap_tpn, build_strict_tpn
from repro.sim.system_sim import simulate_system
from repro.sim.tpn_sim import simulate_tpn

from tests.conftest import make_mapping


class TestFourWayAgreementOverlap:
    """Symbolic == SCC CTMC == TPN DES == system DES, exponential Overlap."""

    @pytest.mark.parametrize(
        "teams",
        [
            [[0], [1]],
            [[0, 1], [2, 3, 4]],
            [[0], [1, 2], [3]],
            [[0, 1], [2, 3], [4]],
        ],
        ids=str,
    )
    def test_agreement(self, teams):
        mp = make_mapping(teams, seed=hash(str(teams)) % 1000)
        symbolic = overlap_throughput(mp, "exponential")
        tpn = build_overlap_tpn(mp)
        scc = tpn_exponential_throughput_scc(tpn, max_states=400_000)
        assert scc == pytest.approx(symbolic, rel=1e-9)
        sim = simulate_system(
            mp, "overlap", n_datasets=120_000, law="exponential", seed=3
        )
        assert sim.windowed_throughput(0.1, 0.45) == pytest.approx(
            symbolic, rel=0.04
        )


class TestStrictConsistency:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_theory_vs_two_simulators(self, seed):
        mp = make_mapping([[0], [1, 2]], seed=seed)
        rho = strict_exponential_throughput(mp, max_states=400_000)
        a = simulate_system(
            mp, "strict", n_datasets=80_000, law="exponential", seed=seed
        ).steady_state_throughput()
        b = simulate_tpn(
            build_strict_tpn(mp), n_datasets=40_000, law="exponential",
            seed=seed + 100,
        ).steady_state_throughput()
        assert a == pytest.approx(rho, rel=0.03)
        assert b == pytest.approx(rho, rel=0.03)

    def test_deterministic_strict_period(self):
        """Paper Section 4.2: Strict cycles mix resources across columns."""
        mp = example_a()
        tpn = build_strict_tpn(mp)
        rho_comp = tpn_throughput_deterministic(tpn)
        rho_classic = tpn_throughput_classic(tpn)
        # Example A's strict net is strongly connected: both agree.
        assert rho_comp == pytest.approx(rho_classic, rel=1e-9)


class TestModelOrdering:
    """Overlap dominates Strict; deterministic dominates exponential."""

    @pytest.mark.parametrize("seed", [4, 5, 6, 7])
    def test_full_ordering(self, seed):
        mp = make_mapping([[0], [1, 2]], seed=seed)
        o_det = overlap_throughput(mp, "deterministic", semantics="bottleneck")
        o_exp = overlap_throughput(mp, "exponential", semantics="bottleneck")
        s_det = tpn_throughput_deterministic(build_strict_tpn(mp))
        s_exp = strict_exponential_throughput(mp, max_states=400_000)
        assert s_exp <= s_det * (1 + 1e-9)
        assert o_exp <= o_det * (1 + 1e-9)
        assert s_det <= o_det * (1 + 1e-9)
        assert s_exp <= o_exp * (1 + 1e-9)


class TestBoundsEndToEnd:
    def test_erlang_sandwich_on_pipeline(self):
        """A full pipeline (not just one comm) honours Theorem 7."""
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=9)
        b = throughput_bounds(mp, "overlap")
        sim = StreamingSystem(mp, "overlap").simulate(
            n_datasets=100_000, law="erlang", law_params={"k": 3}, seed=11
        )
        assert b.contains(sim.windowed_throughput(0.1, 0.45), rel_slack=0.04)

    def test_example_a_bounds(self):
        b = throughput_bounds(example_a(), "overlap")
        assert 0 < b.lower <= b.upper


class TestProposition1EndToEnd:
    def test_paths_appear_in_simulation_order(self):
        """Data set n is served at stage i by team slot (n mod R_i)."""
        mp = make_mapping(
            [[0], [1, 2]], works=[1.0, 10.0], files=[1e-9],
            speeds=[1.0, 1.0, 10.0],
        )
        # P1 (slow, slot 0) serves even data sets, P2 (fast) odd ones: the
        # completion times must interleave accordingly: odd data sets (on
        # the 10x faster P2) finish earlier within each pair.
        sim = simulate_system(
            mp, "overlap", n_datasets=2000, law="deterministic", seed=0
        )
        # Per-branch rates: z1 = 2·(1/10) = 0.2 (slow P1); the fast P2
        # branch is capped by the stage-1 producer (z = 1), so
        # ρ = (0.2 + min(2, 1)) / 2 = 0.6.
        expected = 0.5 * (2 * 1.0 / 10.0 + 1.0)
        assert sim.windowed_throughput(0.1, 0.45) == pytest.approx(
            expected, rel=0.02
        )


class TestExampleCScale:
    def test_symbolic_methods_handle_huge_lcm(self):
        """Example C (m = 10395) is tractable symbolically only."""
        from repro.mapping.examples import example_c
        from repro.core import pattern_throughput_homogeneous

        mp = example_c(work=1.0, file_size=1.0)
        rho_det = overlap_throughput(mp, "deterministic")
        rho_exp = overlap_throughput(mp, "exponential")
        assert 0 < rho_exp <= rho_det
        # The bottleneck communication: 21→27 with g=3, pattern 7×9.
        # Inner z = 3·(7·9·λ/(7+9-1)) with λ = 1.
        z2 = 3 * pattern_throughput_homogeneous(7, 9, 1.0)
        # Other comms: 5→21 (g=1, 5×21), 27→11 (g=1, 27×11); cpu z = R_i.
        z1 = pattern_throughput_homogeneous(5, 21, 1.0)
        z3 = pattern_throughput_homogeneous(27, 11, 1.0)
        assert rho_exp == pytest.approx(min(5.0, z1, z2, z3, 11.0), rel=1e-9)
