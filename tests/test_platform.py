"""Unit tests for the platform model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Platform, Processor
from repro.exceptions import InvalidPlatformError
from repro.platform import random_platform


class TestProcessor:
    def test_compute_time(self):
        assert Processor(speed=2.0).compute_time(10.0) == 5.0

    def test_rejects_zero_speed(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speed=0.0)

    def test_rejects_negative_speed(self):
        with pytest.raises(InvalidPlatformError):
            Processor(speed=-1.0)


class TestPlatform:
    def test_homogeneous(self):
        p = Platform.homogeneous(4, speed=2.0, bandwidth=8.0)
        assert p.n_processors == 4
        assert np.allclose(p.speeds, 2.0)
        assert p.bandwidth(0, 3) == 8.0

    def test_from_speeds_scalar_bandwidth(self):
        p = Platform.from_speeds([1.0, 2.0], 4.0)
        assert p.bandwidth(0, 1) == 4.0

    def test_from_speeds_matrix(self):
        bw = [[1.0, 2.0], [3.0, 1.0]]
        p = Platform.from_speeds([1.0, 2.0], bw)
        assert p.bandwidth(0, 1) == 2.0
        assert p.bandwidth(1, 0) == 3.0

    def test_transfer_time(self):
        p = Platform.from_speeds([1.0, 1.0], 4.0)
        assert p.transfer_time(8.0, 0, 1) == 2.0

    def test_transfer_zero_size_free(self):
        p = Platform.from_speeds([1.0, 1.0], 4.0)
        assert p.transfer_time(0.0, 0, 1) == 0.0

    def test_self_transfer_free(self):
        p = Platform.from_speeds([1.0, 1.0], 4.0)
        assert p.transfer_time(100.0, 1, 1) == 0.0

    def test_compute_time(self):
        p = Platform.from_speeds([1.0, 4.0], 1.0)
        assert p.compute_time(8.0, 1) == 2.0

    def test_bad_matrix_shape(self):
        with pytest.raises(InvalidPlatformError):
            Platform.from_speeds([1.0, 2.0], np.ones((3, 3)))

    def test_non_positive_bandwidth_rejected(self):
        bw = np.ones((2, 2))
        bw[0, 1] = 0.0
        with pytest.raises(InvalidPlatformError):
            Platform.from_speeds([1.0, 1.0], bw)

    def test_empty_platform_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Platform([], np.empty((0, 0)))

    def test_bandwidth_matrix_read_only(self):
        p = Platform.homogeneous(2, 1.0, 1.0)
        with pytest.raises(ValueError):
            p.bandwidth_matrix[0, 1] = 3.0

    def test_default_names(self):
        p = Platform.homogeneous(2, 1.0, 1.0)
        assert [q.name for q in p.processors] == ["P1", "P2"]

    def test_indexing(self):
        p = Platform.from_speeds([1.0, 2.0], 1.0)
        assert p[1].speed == 2.0
        assert len(p) == 2


class TestRandomPlatform:
    def test_ranges(self, rng):
        p = random_platform(
            6, rng, speed_range=(1.0, 2.0), bandwidth_range=(3.0, 4.0)
        )
        assert ((p.speeds >= 1.0) & (p.speeds <= 2.0)).all()
        bw = p.bandwidth_matrix
        off = bw[~np.eye(6, dtype=bool)]
        assert ((off >= 3.0) & (off <= 4.0)).all()

    def test_symmetric(self, rng):
        p = random_platform(5, rng)
        bw = p.bandwidth_matrix
        assert np.allclose(bw, bw.T)

    def test_asymmetric(self, rng):
        p = random_platform(5, rng, symmetric=False)
        bw = p.bandwidth_matrix
        assert not np.allclose(bw, bw.T)

    def test_invalid_args(self, rng):
        with pytest.raises(InvalidPlatformError):
            random_platform(0, rng)
        with pytest.raises(InvalidPlatformError):
            random_platform(3, rng, speed_range=(0.0, 1.0))
