"""Tests for the CTMC engine and the TPN → CTMC bridge (Theorem 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StructuralError
from repro.markov import CTMC, ctmc_from_tpn, tpn_throughput_exponential
from repro.petri import build_overlap_tpn, build_strict_tpn

from tests.conftest import make_mapping


class TestCTMC:
    def test_two_state_birth_death(self):
        """π = (μ, λ)/(λ+μ) for the 0↔1 chain."""
        lam, mu = 2.0, 3.0
        chain = CTMC(2, [0, 1], [1, 0], [lam, mu])
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(mu / (lam + mu))
        assert pi[1] == pytest.approx(lam / (lam + mu))

    def test_methods_agree(self):
        rng = np.random.default_rng(3)
        n = 12
        rows, cols, rates = [], [], []
        # Random strongly connected chain: a ring plus random extras.
        for i in range(n):
            rows.append(i)
            cols.append((i + 1) % n)
            rates.append(float(rng.uniform(0.5, 2.0)))
        for _ in range(20):
            i, j = rng.integers(n, size=2)
            if i != j:
                rows.append(int(i))
                cols.append(int(j))
                rates.append(float(rng.uniform(0.1, 1.0)))
        chain = CTMC(n, rows, cols, rates)
        direct = chain.stationary_distribution("direct")
        power = chain.stationary_distribution("power")
        dense = chain.stationary_distribution("dense")
        assert np.allclose(direct, power, atol=1e-8)
        assert np.allclose(direct, dense, atol=1e-8)

    def test_balance_equations_hold(self):
        chain = CTMC(3, [0, 1, 2, 0], [1, 2, 0, 2], [1.0, 2.0, 3.0, 0.5])
        pi = chain.stationary_distribution()
        q = chain.generator().toarray()
        assert np.allclose(pi @ q, 0.0, atol=1e-10)
        assert pi.sum() == pytest.approx(1.0)

    def test_duplicate_arcs_summed(self):
        a = CTMC(2, [0, 0, 1], [1, 1, 0], [1.0, 1.0, 2.0])
        b = CTMC(2, [0, 1], [1, 0], [2.0, 2.0])
        assert np.allclose(
            a.stationary_distribution(), b.stationary_distribution()
        )

    def test_transient_states_get_zero_mass(self):
        # 0 -> 1 <-> 2 : state 0 is transient.
        chain = CTMC(3, [0, 1, 2], [1, 2, 1], [1.0, 1.0, 1.0])
        pi = chain.stationary_distribution("power")
        assert pi[0] == pytest.approx(0.0, abs=1e-9)
        assert pi[1] == pytest.approx(0.5, abs=1e-6)

    def test_single_state(self):
        chain = CTMC(1, [], [], [])
        assert chain.stationary_distribution()[0] == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(StructuralError):
            CTMC(0, [], [], [])
        with pytest.raises(StructuralError):
            CTMC(2, [0], [1], [-1.0])
        with pytest.raises(StructuralError):
            CTMC(2, [0, 1], [1], [1.0, 1.0])

    def test_flow(self):
        lam, mu = 2.0, 3.0
        chain = CTMC(2, [0, 1], [1, 0], [lam, mu])
        pi = chain.stationary_distribution()
        # Long-run rate of 0->1 jumps = π0·λ = flow with all weights.
        assert chain.flow(pi) == pytest.approx(2.0 * pi[0] * lam)


class TestTpnBridge:
    def test_single_processor_rate(self):
        """One stage on one processor: ρ = λ = 1/c (self-loop chain)."""
        mp = make_mapping([[0]], works=[2.0])
        tpn = build_overlap_tpn(mp)
        rho = tpn_throughput_exponential(tpn)
        assert rho == pytest.approx(0.5)

    def test_replicated_single_stage(self):
        """R identical processors: ρ = R·λ."""
        mp = make_mapping([[0, 1, 2]], works=[2.0])
        tpn = build_overlap_tpn(mp)
        rho = tpn_throughput_exponential(tpn)
        assert rho == pytest.approx(1.5)

    def test_strict_tandem_two_stages(self):
        """Strict 2-stage tandem: alternating cycle, ρ by direct analysis.

        The strict chain P0: comp(c) → send(d) → comp…, P1: recv(d) →
        comp(c') → recv…, with the transfer shared. The marking chain is
        small; compare against an independent hand-built CTMC.
        """
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[3.0])
        tpn = build_strict_tpn(mp)
        rho = tpn_throughput_exponential(tpn)
        # Hand-check: cycle comp0 -> comm -> comp1 where comp1 and comp0
        # can overlap (different processors) but comm is shared.
        # Validate against the DES instead of re-deriving.
        from repro.sim.tpn_sim import simulate_tpn

        sim = simulate_tpn(tpn, n_datasets=40_000, law="exponential", seed=9)
        assert rho == pytest.approx(sim.steady_state_throughput(), rel=0.03)

    def test_zero_mean_rejected(self):
        mp = make_mapping([[0], [1]], works=[0.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        with pytest.raises(StructuralError, match="positive mean"):
            tpn_throughput_exponential(tpn)

    def test_counted_subset(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        # Counting the first column instead: same long-run rate (every
        # data set traverses every column exactly once).
        first_col = tpn.column_transitions(0)
        rho_first = tpn_throughput_exponential(tpn, counted=first_col)
        rho_last = tpn_throughput_exponential(tpn)
        assert rho_first == pytest.approx(rho_last, rel=1e-9)

    def test_ctmc_from_tpn_shapes(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        chain, reach = ctmc_from_tpn(tpn)
        assert chain.n_states == reach.n_states
        assert reach.n_states >= 3

    def test_overlap_capacity_approaches_decomposition(self):
        """Finite-buffer CTMC → decomposition value as capacity grows.

        A symmetric tandem, so bottleneck and unbounded semantics coincide
        and the capacitated chain must converge to the decomposition value.
        """
        from repro.core import overlap_throughput

        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        target = overlap_throughput(mp, "exponential")
        values = []
        for cap in (1, 2, 6):
            tpn = build_overlap_tpn(mp, buffer_capacity=cap)
            values.append(tpn_throughput_exponential(tpn, max_states=200_000))
        # Monotone increase, strictly below the unbounded value: a
        # balanced tandem converges only like 1 - O(1/B).
        assert values[0] < values[1] < values[2] < target

    def test_capacitated_ctmc_matches_des(self):
        """The finite-buffer marking chain is exact: DES agrees."""
        from repro.sim.tpn_sim import simulate_tpn

        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_overlap_tpn(mp, buffer_capacity=2)
        exact = tpn_throughput_exponential(tpn)
        sim = simulate_tpn(
            tpn, n_datasets=60_000, law="exponential", seed=8, throttle=None
        )
        assert sim.steady_state_throughput() == pytest.approx(exact, rel=0.03)
