"""Tests for the exponential-case evaluators (paper Section 5)."""

from __future__ import annotations

import pytest

from repro.core import (
    exponential_throughput,
    overlap_exponential_throughput,
    overlap_throughput,
    pattern_throughput_homogeneous,
    strict_exponential_throughput,
    tpn_exponential_throughput_scc,
)
from repro.exceptions import StructuralError, UnsupportedModelError
from repro.mapping.examples import single_communication
from repro.petri import build_overlap_tpn

from tests.conftest import make_mapping


class TestOverlapDecomposition:
    def test_single_processor(self):
        mp = make_mapping([[0]], works=[2.0])
        assert overlap_exponential_throughput(mp) == pytest.approx(0.5)

    def test_replicated_stage_sums_rates(self):
        mp = make_mapping([[0, 1, 2]], works=[2.0])
        assert overlap_exponential_throughput(mp) == pytest.approx(1.5)

    @pytest.mark.parametrize("u,v", [(1, 2), (2, 3), (3, 4), (4, 5)])
    def test_single_comm_homogeneous(self, u, v):
        """Theorem 4 end to end: ρ = uvλ/(u+v-1)."""
        mp = single_communication(u, v, comm_time=1.0)
        assert overlap_exponential_throughput(mp) == pytest.approx(
            pattern_throughput_homogeneous(u, v, 1.0), rel=1e-6
        )

    def test_exponential_below_deterministic(self):
        """Theorem 7's two extreme systems, ordered."""
        for seed in range(6):
            mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
            exp = overlap_throughput(mp, "exponential")
            det = overlap_throughput(mp, "deterministic")
            assert exp <= det * (1 + 1e-9)

    def test_semantics_ordering(self):
        for seed in range(4):
            mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
            unb = overlap_throughput(mp, "exponential")
            bot = overlap_throughput(mp, "exponential", semantics="bottleneck")
            assert unb >= bot * (1 - 1e-12)

    def test_unknown_semantics(self):
        mp = make_mapping([[0]])
        with pytest.raises(UnsupportedModelError):
            overlap_throughput(mp, "exponential", semantics="???")

    def test_unknown_mode(self):
        mp = make_mapping([[0]])
        with pytest.raises(UnsupportedModelError):
            overlap_throughput(mp, "poisson")


class TestSccCrossValidation:
    """The symbolic pattern quotient vs the exact unrolled SCC chains.

    These tests validate the paper's "component = c copies of one
    pattern" reduction: the quotient pattern's per-row rate must equal the
    per-transition rate of the full c-copy component.
    """

    @pytest.mark.parametrize("seed", range(4))
    def test_c_copies_quotient_exact(self, seed):
        # R = (1, 2, 4): the first communication has c = 2 copies.
        mp = make_mapping([[0], [1, 2], [3, 4, 5, 6]], seed=seed)
        tpn = build_overlap_tpn(mp)
        scc = tpn_exponential_throughput_scc(tpn, max_states=400_000)
        sym = overlap_exponential_throughput(mp)
        assert scc == pytest.approx(sym, rel=1e-9)

    def test_heterogeneous_single_comm(self):
        mp = make_mapping([[0, 1], [2, 3, 4]], works=[1e-3, 1e-3], seed=None)
        # Heterogenize the links through the platform seed variant:
        mp = make_mapping([[0, 1], [2, 3, 4]], works=[1e-3, 1e-3], seed=11)
        tpn = build_overlap_tpn(mp)
        scc = tpn_exponential_throughput_scc(tpn)
        sym = overlap_exponential_throughput(mp)
        assert scc == pytest.approx(sym, rel=1e-9)

    def test_three_replicated_stages(self):
        mp = make_mapping([[0, 1], [2, 3, 4], [5, 6]], seed=21)
        tpn = build_overlap_tpn(mp)
        scc = tpn_exponential_throughput_scc(tpn, max_states=400_000)
        sym = overlap_exponential_throughput(mp)
        assert scc == pytest.approx(sym, rel=1e-9)


class TestStrictFullChain:
    def test_two_stage_tandem_vs_des(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5], seed=None)
        rho = strict_exponential_throughput(mp)
        from repro.sim.system_sim import simulate_system

        sim = simulate_system(
            mp, "strict", n_datasets=150_000, law="exponential", seed=6
        )
        assert rho == pytest.approx(sim.steady_state_throughput(), rel=0.02)

    def test_replicated_strict_vs_des(self):
        mp = make_mapping([[0], [1, 2]], works=[1.0, 2.0], files=[0.5])
        rho = strict_exponential_throughput(mp, max_states=400_000)
        from repro.sim.system_sim import simulate_system

        sim = simulate_system(
            mp, "strict", n_datasets=150_000, law="exponential", seed=7
        )
        assert rho == pytest.approx(sim.steady_state_throughput(), rel=0.02)

    def test_strict_below_overlap(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        s = strict_exponential_throughput(mp)
        o = overlap_exponential_throughput(mp)
        assert s < o


class TestFrontDoor:
    def test_auto_dispatch(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        assert exponential_throughput(mp, "overlap") == pytest.approx(
            overlap_exponential_throughput(mp)
        )
        assert exponential_throughput(mp, "strict") == pytest.approx(
            strict_exponential_throughput(mp)
        )

    def test_full_requires_capacity_for_overlap(self):
        mp = make_mapping([[0], [1]])
        with pytest.raises(StructuralError, match="buffer_capacity"):
            exponential_throughput(mp, "overlap", method="full")

    def test_full_with_capacity_below_unbounded(self):
        mp = make_mapping([[0], [1]])
        capped = exponential_throughput(
            mp, "overlap", method="full", buffer_capacity=2
        )
        unbounded = exponential_throughput(mp, "overlap")
        assert capped <= unbounded * (1 + 1e-9)

    def test_scc_method(self):
        mp = make_mapping([[0], [1, 2]])
        assert exponential_throughput(mp, "overlap", method="scc") == pytest.approx(
            exponential_throughput(mp, "overlap"), rel=1e-9
        )

    def test_bad_method_rejected(self):
        mp = make_mapping([[0]])
        with pytest.raises(UnsupportedModelError):
            exponential_throughput(mp, "strict", method="decomposition")
        with pytest.raises(UnsupportedModelError):
            exponential_throughput(mp, "overlap", method="???")


class TestAgainstSimulation:
    @pytest.mark.parametrize("seed", range(3))
    def test_overlap_vs_system_sim(self, seed):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
        rho = overlap_exponential_throughput(mp)
        from repro.sim.system_sim import simulate_system

        sim = simulate_system(
            mp, "overlap", n_datasets=120_000, law="exponential", seed=seed + 50
        )
        assert sim.windowed_throughput(0.1, 0.45) == pytest.approx(rho, rel=0.03)

    def test_example_c_second_comm_inner_throughput(self):
        """Example C's 7×9 pattern: closed form sanity at scale."""
        lam = 1.0
        inner = pattern_throughput_homogeneous(7, 9, lam)
        assert inner == pytest.approx(63.0 / 15.0)
