"""Unit tests for the application model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Application, Stage
from repro.application import random_application
from repro.exceptions import InvalidApplicationError


class TestStage:
    def test_basic_fields(self):
        s = Stage(work=10.0, output_size=3.0, name="enc")
        assert s.work == 10.0
        assert s.output_size == 3.0
        assert s.name == "enc"

    def test_zero_work_allowed(self):
        assert Stage(work=0.0).work == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Stage(work=-1.0)

    def test_negative_output_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Stage(work=1.0, output_size=-0.5)

    def test_renamed_copies(self):
        s = Stage(1.0, 2.0).renamed("x")
        assert s.name == "x" and s.work == 1.0 and s.output_size == 2.0


class TestApplication:
    def test_from_work_defaults(self):
        app = Application.from_work([1.0, 2.0, 3.0])
        assert app.n_stages == 3
        assert np.allclose(app.file_sizes, [0.0, 0.0])

    def test_from_work_with_files(self):
        app = Application.from_work([1.0, 2.0], files=[5.0])
        assert app.file_size(0) == 5.0

    def test_last_stage_has_no_output(self):
        app = Application.from_work([1.0, 2.0], files=[5.0])
        assert app[-1].output_size == 0.0

    def test_direct_construction_rejects_trailing_output(self):
        with pytest.raises(InvalidApplicationError):
            Application([Stage(1.0, output_size=2.0)])

    def test_wrong_file_count(self):
        with pytest.raises(InvalidApplicationError):
            Application.from_work([1.0, 2.0], files=[1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidApplicationError):
            Application([])

    def test_default_names(self):
        app = Application.from_work([1.0, 2.0])
        assert [s.name for s in app] == ["T1", "T2"]

    def test_uniform(self):
        app = Application.uniform(4, work=2.0, file_size=3.0)
        assert np.allclose(app.works, 2.0)
        assert np.allclose(app.file_sizes, 3.0)

    def test_uniform_single_stage(self):
        app = Application.uniform(1, work=2.0, file_size=3.0)
        assert app.n_stages == 1
        assert app.file_sizes.size == 0

    def test_uniform_rejects_zero_stages(self):
        with pytest.raises(InvalidApplicationError):
            Application.uniform(0, 1.0, 1.0)

    def test_sequence_protocol(self):
        app = Application.from_work([1.0, 2.0, 3.0])
        assert len(app) == 3
        assert app[1].work == 2.0
        assert [s.work for s in app] == [1.0, 2.0, 3.0]

    def test_equality_and_hash(self):
        a = Application.from_work([1.0, 2.0], files=[3.0])
        b = Application.from_work([1.0, 2.0], files=[3.0])
        assert a == b
        assert hash(a) == hash(b)

    def test_file_size_out_of_range(self):
        app = Application.from_work([1.0, 2.0], files=[3.0])
        with pytest.raises(IndexError):
            app.file_size(1)
        with pytest.raises(IndexError):
            app.file_size(-1)

    def test_works_vector(self):
        app = Application.from_work([1.5, 2.5])
        assert app.works.dtype == float
        assert np.allclose(app.works, [1.5, 2.5])


class TestRandomApplication:
    def test_sizes_within_ranges(self, rng):
        app = random_application(
            8, rng, work_range=(5.0, 15.0), file_range=(2.0, 4.0)
        )
        assert app.n_stages == 8
        assert ((app.works >= 5.0) & (app.works <= 15.0)).all()
        assert ((app.file_sizes >= 2.0) & (app.file_sizes <= 4.0)).all()

    def test_single_stage(self, rng):
        app = random_application(1, rng)
        assert app.n_stages == 1

    def test_rejects_bad_ranges(self, rng):
        with pytest.raises(InvalidApplicationError):
            random_application(3, rng, work_range=(10.0, 5.0))
        with pytest.raises(InvalidApplicationError):
            random_application(0, rng)

    def test_reproducible(self):
        a = random_application(5, np.random.default_rng(1))
        b = random_application(5, np.random.default_rng(1))
        assert np.allclose(a.works, b.works)
