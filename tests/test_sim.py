"""Tests for the two simulators and the replication runner (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    deterministic_throughput,
    overlap_exponential_throughput,
    strict_exponential_throughput,
)
from repro.mapping.examples import single_communication
from repro.petri import build_overlap_tpn, build_strict_tpn
from repro.sim import (
    OnlineStats,
    ReplicationSummary,
    normal_confidence_interval,
    replicate,
    simulate_system,
    simulate_tpn,
    throughput_vs_datasets,
)
from repro.sim.results import SimulationResult
from repro.sim.sampling import LawSpec, SampleBuffer, as_factory

from tests.conftest import make_mapping


class TestSimulationResult:
    def _result(self, times):
        return SimulationResult(
            completion_times=np.asarray(times, dtype=float),
            n_events=len(times),
            wall_time=0.0,
        )

    def test_throughput(self):
        r = self._result([1.0, 2.0, 4.0])
        assert r.throughput == pytest.approx(3 / 4.0)
        assert r.makespan == 4.0
        assert r.n_processed == 3

    def test_throughput_after(self):
        r = self._result([1.0, 2.0, 4.0])
        assert r.throughput_after(2) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            r.throughput_after(0)
        with pytest.raises(ValueError):
            r.throughput_after(4)

    def test_steady_state_discards_warmup(self):
        # Slow start then steady rate 1: total rate underestimates.
        times = [10.0] + [10.0 + k for k in range(1, 100)]
        r = self._result(times)
        assert r.steady_state_throughput() == pytest.approx(1.0, rel=0.01)
        assert r.throughput < 1.0

    def test_windowed(self):
        times = np.arange(1.0, 101.0)
        r = self._result(times)
        assert r.windowed_throughput(0.1, 0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            r.windowed_throughput(0.5, 0.5)

    def test_empty(self):
        r = self._result([])
        assert r.throughput == 0.0
        assert r.makespan == 0.0


class TestSampling:
    def test_law_spec_label(self):
        assert LawSpec.of("gamma", shape=0.5).label == "gamma(shape=0.5)"
        assert LawSpec.of("exponential").label == "exponential"

    def test_as_factory_accepts_string(self):
        f = as_factory("exponential")
        assert f(2.0).mean == pytest.approx(2.0)

    def test_as_factory_accepts_callable(self):
        from repro.distributions import Deterministic

        f = as_factory(lambda mean: Deterministic(mean))
        assert f(3.0).sample(np.random.default_rng(0)) == 3.0

    def test_as_factory_rejects_junk(self):
        with pytest.raises(TypeError):
            as_factory(42)

    def test_sample_buffer_refills(self, rng):
        from repro.distributions import Exponential

        buf = SampleBuffer(Exponential(1.0), rng, block=8)
        draws = [buf.draw() for _ in range(20)]
        assert len(set(draws)) == 20  # all distinct, buffer refilled twice


class TestTpnSimulator:
    def test_deterministic_exact(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[0.5])
        tpn = build_overlap_tpn(mp)
        sim = simulate_tpn(tpn, n_datasets=5000, law="deterministic", seed=0)
        assert sim.steady_state_throughput() == pytest.approx(0.5, rel=0.01)

    def test_reproducible_with_seed(self):
        mp = make_mapping([[0], [1, 2]])
        tpn = build_overlap_tpn(mp)
        a = simulate_tpn(tpn, n_datasets=500, law="exponential", seed=42)
        b = simulate_tpn(tpn, n_datasets=500, law="exponential", seed=42)
        assert np.array_equal(a.completion_times, b.completion_times)

    def test_throttle_bounds_events(self):
        """A fast source must not flood the calendar (throttled run-ahead)."""
        mp = single_communication(2, 3)
        tpn = build_overlap_tpn(mp)
        sim = simulate_tpn(
            tpn, n_datasets=2000, law="exponential", seed=1, throttle=16
        )
        assert sim.n_events < 50 * 2000

    def test_throttle_validation(self):
        mp = make_mapping([[0]])
        tpn = build_overlap_tpn(mp)
        with pytest.raises(ValueError):
            simulate_tpn(tpn, n_datasets=10, throttle=0)

    def test_strict_net(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        sim = simulate_tpn(tpn, n_datasets=20_000, law="exponential", seed=3)
        assert sim.steady_state_throughput() == pytest.approx(
            strict_exponential_throughput(mp), rel=0.03
        )

    def test_event_budget_guard(self):
        mp = make_mapping([[0]])
        tpn = build_overlap_tpn(mp)
        from repro.exceptions import StructuralError

        with pytest.raises(StructuralError, match="exceeded"):
            simulate_tpn(tpn, n_datasets=100, max_events=5, seed=0)


class TestSystemSimulator:
    def test_deterministic_unreplicated(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[0.5])
        for model in ("overlap", "strict"):
            sim = simulate_system(
                mp, model, n_datasets=5000, law="deterministic", seed=0
            )
            assert sim.steady_state_throughput() == pytest.approx(
                deterministic_throughput(mp, model), rel=0.01
            )

    def test_exponential_overlap(self):
        mp = single_communication(3, 4)
        sim = simulate_system(
            mp, "overlap", n_datasets=120_000, law="exponential", seed=1
        )
        assert sim.steady_state_throughput() == pytest.approx(
            overlap_exponential_throughput(mp), rel=0.03
        )

    def test_bandwidth_efficiency_slows_comms(self):
        mp = single_communication(2, 3)
        full = simulate_system(
            mp, "overlap", n_datasets=20_000, law="deterministic", seed=2
        )
        derated = simulate_system(
            mp,
            "overlap",
            n_datasets=20_000,
            law="deterministic",
            seed=2,
            bandwidth_efficiency=0.92,
        )
        assert derated.steady_state_throughput() == pytest.approx(
            full.steady_state_throughput() * 0.92, rel=0.01
        )

    def test_bandwidth_efficiency_validation(self):
        mp = make_mapping([[0], [1]])
        with pytest.raises(ValueError):
            simulate_system(mp, "overlap", n_datasets=10, bandwidth_efficiency=0.0)

    def test_associated_mode_runs_and_orders(self):
        """Theorem 8's ordering: ρ_det >= ρ_associated (sampled)."""
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        det = deterministic_throughput(mp, "overlap")
        assoc = simulate_system(
            mp,
            "overlap",
            n_datasets=80_000,
            law="exponential",
            seed=3,
            correlation="associated",
        )
        assert assoc.steady_state_throughput() <= det * 1.02

    def test_associated_differs_from_independent(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        a = simulate_system(
            mp, "overlap", n_datasets=2000, law="exponential", seed=3,
            correlation="associated",
        )
        b = simulate_system(
            mp, "overlap", n_datasets=2000, law="exponential", seed=3,
            correlation="independent",
        )
        assert not np.array_equal(a.completion_times, b.completion_times)

    def test_theorem8_association_helps(self):
        """Theorem 8 ordering: ρ_det >= ρ_assoc >= ρ_iid (averaged).

        Positively correlated computation/transfer times synchronize the
        pipeline, so association can only raise the expected throughput
        relative to the fully independent case with the same marginals.
        """
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        import numpy as np

        a_vals, i_vals = [], []
        for seed in range(10):
            a_vals.append(
                simulate_system(
                    mp, "overlap", n_datasets=20_000, law="exponential",
                    seed=seed, correlation="associated",
                ).steady_state_throughput()
            )
            i_vals.append(
                simulate_system(
                    mp, "overlap", n_datasets=20_000, law="exponential",
                    seed=seed, correlation="independent",
                ).steady_state_throughput()
            )
        from repro.core import deterministic_throughput

        det = deterministic_throughput(mp, "overlap")
        assert float(np.mean(a_vals)) >= float(np.mean(i_vals)) - 0.005
        assert float(np.mean(a_vals)) <= det * 1.01

    def test_correlation_validation(self):
        mp = make_mapping([[0]])
        with pytest.raises(ValueError):
            simulate_system(mp, "overlap", n_datasets=10, correlation="???")

    def test_sorted_completions(self):
        mp = make_mapping(
            [[0], [1, 2]], works=[0.01, 2.0], files=[0.01],
            speeds=[100.0, 10.0, 0.5],
        )
        sim = simulate_system(
            mp, "overlap", n_datasets=5000, law="deterministic", seed=0
        )
        assert (np.diff(sim.completion_times) >= 0).all()

    def test_agreement_between_engines(self):
        """The two independent simulators agree (model fidelity, §7.4)."""
        mp = make_mapping([[0], [1, 2], [3]], seed=5)
        a = simulate_system(
            mp, "strict", n_datasets=30_000, law="exponential", seed=9
        )
        b = simulate_tpn(
            build_strict_tpn(mp), n_datasets=30_000, law="exponential", seed=10
        )
        assert a.steady_state_throughput() == pytest.approx(
            b.steady_state_throughput(), rel=0.03
        )


class TestStatsAndRunner:
    def test_online_stats(self, rng):
        xs = rng.normal(5.0, 2.0, 5000)
        st = OnlineStats()
        for x in xs:
            st.push(float(x))
        assert st.mean == pytest.approx(xs.mean())
        assert st.std == pytest.approx(xs.std(ddof=1), rel=1e-9)
        assert st.min == xs.min() and st.max == xs.max()

    def test_confidence_interval(self):
        lo, hi = normal_confidence_interval(10.0, 2.0, 100)
        assert lo < 10.0 < hi
        assert hi - lo == pytest.approx(2 * 1.959964 * 2.0 / 10.0, rel=1e-4)

    def test_replicate_summary(self):
        mp = single_communication(2, 3)

        def run(rng):
            return simulate_system(
                mp, "overlap", n_datasets=2000, law="exponential", rng=rng
            )

        summary = replicate(run, n_replications=16, seed=0)
        assert isinstance(summary, ReplicationSummary)
        assert summary.min <= summary.mean <= summary.max
        assert summary.ci95[0] <= summary.mean <= summary.ci95[1]
        assert 0 < summary.relative_std < 0.2

    def test_replicate_independent_streams(self):
        mp = single_communication(2, 3)
        seen = []

        def run(rng):
            r = simulate_system(
                mp, "overlap", n_datasets=200, law="exponential", rng=rng
            )
            seen.append(r.makespan)
            return r

        replicate(run, n_replications=5, seed=1)
        assert len(set(seen)) == 5

    def test_throughput_vs_datasets_prefix(self):
        mp = single_communication(2, 3)

        def run(rng, n):
            return simulate_system(
                mp, "overlap", n_datasets=n, law="exponential", rng=rng
            )

        series = throughput_vs_datasets(run, [10, 100, 1000], seed=0)
        assert [k for k, _ in series] == [10, 100, 1000]
        # Converges towards the theoretical value 1.5.
        assert series[-1][1] == pytest.approx(1.5, rel=0.1)

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            replicate(lambda rng: None, n_replications=0)
        with pytest.raises(ValueError):
            throughput_vs_datasets(lambda rng, n: None, [])
