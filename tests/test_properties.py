"""Hypothesis property-based tests on the core structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    overlap_throughput,
    pattern_enabling_count,
    pattern_state_count,
    pattern_throughput_homogeneous,
)
from repro.core.pattern import CommPattern, build_pattern_tpn
from repro.distributions import make_distribution
from repro.mapping.roundrobin import all_paths, lcm_all
from repro.maxplus import TokenGraph, max_cycle_ratio, max_cycle_ratio_brute_force
from repro.petri import build_overlap_tpn, build_strict_tpn, is_feed_forward, is_live

from tests.conftest import make_mapping

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coprime_sides = st.tuples(
    st.integers(1, 6), st.integers(1, 6)
).filter(lambda t: math.gcd(*t) == 1)

replications = st.lists(st.integers(1, 4), min_size=1, max_size=4).filter(
    lambda r: lcm_all(r) <= 24
)


def mapping_from_replication(reps: list[int]):
    teams, k = [], 0
    for r in reps:
        teams.append(list(range(k, k + r)))
        k += r
    return make_mapping(teams)


# ----------------------------------------------------------------------
# Round-robin structure (Proposition 1)
# ----------------------------------------------------------------------
class TestRoundRobinProperties:
    @given(replications)
    def test_path_count_is_lcm(self, reps):
        teams = []
        k = 0
        for r in reps:
            teams.append(list(range(k, k + r)))
            k += r
        paths = all_paths(teams)
        assert len(paths) == lcm_all(reps)
        assert len(set(paths)) == len(paths)

    @given(replications)
    def test_each_processor_serves_fair_share(self, reps):
        """Round-robin fairness: processor p of stage i serves m/R_i rows."""
        mp = mapping_from_replication(reps)
        m = mp.n_rows
        for i, team in enumerate(mp.teams):
            for p in team:
                assert len(mp.rows_of(i, p)) == m // len(team)


# ----------------------------------------------------------------------
# Pattern combinatorics (Theorems 3/4)
# ----------------------------------------------------------------------
class TestPatternProperties:
    @given(coprime_sides)
    def test_state_count_symmetry(self, sides):
        u, v = sides
        assert pattern_state_count(u, v) == pattern_state_count(v, u)

    @given(coprime_sides)
    def test_enabling_fraction(self, sides):
        u, v = sides
        s, sp = pattern_state_count(u, v), pattern_enabling_count(u, v)
        assert sp * (u + v - 1) == s

    @given(coprime_sides, st.floats(0.1, 10.0))
    def test_homogeneous_throughput_bounds(self, sides, lam):
        """min(u,v)λ/2 < ρ_exp <= min(u,v)λ (Fig. 15's ratio range)."""
        u, v = sides
        rho = pattern_throughput_homogeneous(u, v, lam)
        det = min(u, v) * lam
        assert det / 2 < rho <= det * (1 + 1e-12)

    @given(coprime_sides)
    @settings(max_examples=15, deadline=None)
    def test_pattern_net_is_live(self, sides):
        u, v = sides
        tpn = build_pattern_tpn(CommPattern.homogeneous(u, v, 1.0))
        assert is_live(tpn)
        assert int(tpn.initial_marking().sum()) == u + v

    @given(coprime_sides, st.lists(st.floats(0.2, 5.0), min_size=36, max_size=36))
    @settings(max_examples=10, deadline=None)
    def test_heterogeneous_det_below_fastest_hom(self, sides, raw):
        from repro.core.pattern import pattern_throughput_deterministic

        u, v = sides
        means = tuple(raw[: u * v])
        assume(len(means) == u * v)
        rho = pattern_throughput_deterministic(CommPattern(u, v, means))
        fastest = min(u, v) / min(means)
        slowest = min(u, v) / max(means)
        assert slowest * (1 - 1e-9) <= rho <= fastest * (1 + 1e-9)


# ----------------------------------------------------------------------
# Max-plus solver vs oracle
# ----------------------------------------------------------------------
class TestMaxPlusProperties:
    @given(
        st.integers(2, 5),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_cycle_ratio_matches_oracle(self, n, data):
        g = TokenGraph(n)
        perm = data.draw(st.permutations(range(n)))
        for i in range(n):
            g.add_arc(
                perm[i],
                perm[(i + 1) % n],
                weight=data.draw(st.floats(0.0, 10.0)),
                tokens=data.draw(st.integers(1, 3)),
            )
        extra = data.draw(st.integers(0, 4))
        for _ in range(extra):
            g.add_arc(
                data.draw(st.integers(0, n - 1)),
                data.draw(st.integers(0, n - 1)),
                weight=data.draw(st.floats(0.0, 10.0)),
                tokens=data.draw(st.integers(1, 2)),
            )
        res = max_cycle_ratio(g)
        oracle = max_cycle_ratio_brute_force(g)
        assert res is not None and oracle is not None
        assert res.ratio == pytest.approx(oracle.ratio, rel=1e-9, abs=1e-9)

    @given(st.floats(0.1, 10.0), st.integers(1, 5))
    def test_scaling_law(self, scale, tokens):
        """Scaling weights scales the ratio; scaling tokens divides it."""
        g1 = TokenGraph(2)
        g1.add_arc(0, 1, weight=2.0, tokens=1)
        g1.add_arc(1, 0, weight=3.0, tokens=tokens)
        g2 = TokenGraph(2)
        g2.add_arc(0, 1, weight=2.0 * scale, tokens=1)
        g2.add_arc(1, 0, weight=3.0 * scale, tokens=tokens)
        r1, r2 = max_cycle_ratio(g1), max_cycle_ratio(g2)
        assert r2.ratio == pytest.approx(r1.ratio * scale, rel=1e-9)


# ----------------------------------------------------------------------
# TPN invariants under random mappings
# ----------------------------------------------------------------------
class TestTpnProperties:
    @given(replications)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_overlap_net_invariants(self, reps):
        mp = mapping_from_replication(reps)
        tpn = build_overlap_tpn(mp)
        assert is_feed_forward(tpn)
        assert is_live(tpn)
        assert tpn.n_transitions == mp.n_rows * (2 * len(reps) - 1)

    @given(replications)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_strict_net_invariants(self, reps):
        mp = mapping_from_replication(reps)
        tpn = build_strict_tpn(mp)
        assert is_live(tpn)
        # Same transition grid as Overlap; only the places change.
        assert tpn.n_transitions == mp.n_rows * (2 * len(reps) - 1)

    @given(replications)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_throughput_orderings(self, reps):
        """det >= exp (Theorem 7) and unbounded >= bottleneck, per mapping."""
        mp = mapping_from_replication(reps)
        det = overlap_throughput(mp, "deterministic")
        exp = overlap_throughput(mp, "exponential")
        bot = overlap_throughput(mp, "exponential", semantics="bottleneck")
        assert exp <= det * (1 + 1e-9)
        assert bot <= exp * (1 + 1e-9)


# ----------------------------------------------------------------------
# Distribution invariants
# ----------------------------------------------------------------------
class TestDistributionProperties:
    FAMILIES = [
        ("deterministic", {}),
        ("exponential", {}),
        ("uniform", {}),
        ("gamma", {"shape": 2.0}),
        ("gamma", {"shape": 0.5}),
        ("beta", {"shape": 2.0}),
        ("weibull", {"shape": 1.5}),
        ("hyperexponential", {"cv2": 3.0}),
        ("lognormal", {"sigma": 0.7}),
        ("erlang", {"k": 3}),
    ]

    @given(st.floats(0.01, 1000.0), st.sampled_from(FAMILIES))
    @settings(max_examples=60, deadline=None)
    def test_mean_is_exact(self, mean, fam):
        family, params = fam
        d = make_distribution(family, mean, **params)
        assert d.mean == pytest.approx(mean, rel=1e-6)

    @given(
        st.floats(0.01, 100.0),
        st.floats(0.01, 100.0),
        st.sampled_from(FAMILIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_with_mean_is_scale_family(self, m1, m2, fam):
        family, params = fam
        d = make_distribution(family, m1, **params)
        d2 = d.with_mean(m2)
        assert d2.mean == pytest.approx(m2, rel=1e-6)
        assert d2.cv2 == pytest.approx(d.cv2, rel=1e-6, abs=1e-12)
        assert d2.is_nbue == d.is_nbue

    @given(st.floats(0.1, 10.0), st.sampled_from(FAMILIES), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_sampling_deterministic_under_seed(self, mean, fam, seed):
        family, params = fam
        d = make_distribution(family, mean, **params)
        a = d.sample(np.random.default_rng(seed), 16)
        b = d.sample(np.random.default_rng(seed), 16)
        assert np.array_equal(np.asarray(a), np.asarray(b))
