"""Tests for transient CTMC analysis and latency metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov import CTMC, ctmc_from_tpn
from repro.petri import build_strict_tpn
from repro.sim.system_sim import simulate_system

from tests.conftest import make_mapping


class TestTransient:
    def test_matches_matrix_exponential(self):
        """Uniformization vs scipy expm on a small random chain."""
        from scipy.linalg import expm

        rng = np.random.default_rng(0)
        n = 6
        rows, cols, rates = [], [], []
        for i in range(n):
            rows.append(i)
            cols.append((i + 1) % n)
            rates.append(float(rng.uniform(0.5, 2.0)))
        for _ in range(8):
            i, j = rng.integers(n, size=2)
            if i != j:
                rows.append(int(i)); cols.append(int(j))
                rates.append(float(rng.uniform(0.1, 1.0)))
        chain = CTMC(n, rows, cols, rates)
        p0 = np.zeros(n)
        p0[0] = 1.0
        q = chain.generator().toarray()
        for t in (0.0, 0.3, 1.7, 6.0):
            exact = p0 @ expm(q * t)
            approx = chain.transient_distribution(p0, t)
            assert np.allclose(approx, exact, atol=1e-9)

    def test_converges_to_stationary(self):
        chain = CTMC(2, [0, 1], [1, 0], [2.0, 3.0])
        p0 = np.array([1.0, 0.0])
        pt = chain.transient_distribution(p0, 50.0)
        assert np.allclose(pt, chain.stationary_distribution(), atol=1e-10)

    def test_zero_time_identity(self):
        chain = CTMC(2, [0, 1], [1, 0], [1.0, 1.0])
        p0 = np.array([0.25, 0.75])
        assert np.allclose(chain.transient_distribution(p0, 0.0), p0)

    def test_input_validation(self):
        from repro.exceptions import StructuralError

        chain = CTMC(2, [0, 1], [1, 0], [1.0, 1.0])
        with pytest.raises(StructuralError):
            chain.transient_distribution(np.array([1.0, 0.0, 0.0]), 1.0)
        with pytest.raises(ValueError):
            chain.transient_distribution(np.array([1.0, 0.0]), -1.0)

    def test_warmup_rate_rises_to_throughput(self):
        """The transient counted rate climbs to the stationary value.

        This is the analytical counterpart of Fig. 10's convergence: at
        t=0 only the first resources are busy, so the completion rate is
        below its stationary limit and increases with t.
        """
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        chain, reach = ctmc_from_tpn(tpn)
        rates = 1.0 / tpn.mean_times()
        counted = set(tpn.last_column_transitions())
        state_rates = np.zeros(reach.n_states)
        for s, moves in enumerate(reach.arcs):
            state_rates[s] = sum(rates[t] for t, _ in moves if t in counted)
        p0 = np.zeros(reach.n_states)
        p0[reach.initial] = 1.0
        series = [
            chain.expected_counted_rate_at(p0, t, state_rates)
            for t in (0.5, 2.0, 8.0, 40.0)
        ]
        chain.flow(chain.stationary_distribution())
        # Monotone-ish rise towards the stationary counted rate.
        assert series[0] < series[-1]
        pi = chain.stationary_distribution()
        limit = float(pi @ state_rates)
        assert series[-1] == pytest.approx(limit, rel=1e-6)


class TestLatency:
    def test_latency_recorded_and_positive(self):
        mp = make_mapping([[0], [1, 2]], works=[1.0, 2.0], files=[0.5])
        sim = simulate_system(
            mp, "overlap", n_datasets=2000, law="deterministic", seed=0
        )
        stats = sim.latency_stats()
        assert 0 < stats["p50"] <= stats["p95"] <= stats["max"]
        assert stats["mean"] > 0

    def test_balanced_deterministic_latency_is_flat(self):
        """No queueing in a balanced constant pipeline: latency = path time."""
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        sim = simulate_system(
            mp, "overlap", n_datasets=500, law="deterministic", seed=0
        )
        stats = sim.latency_stats()
        # comp1 + comm + comp2 = 3.0 for every data set after warm-up.
        assert stats["p50"] == pytest.approx(3.0)
        assert stats["max"] == pytest.approx(3.0)

    def test_bottleneck_grows_latency(self):
        """A slow last stage builds backlog: latency grows over the run."""
        mp = make_mapping([[0], [1]], works=[1.0, 3.0], files=[0.1])
        sim = simulate_system(
            mp, "overlap", n_datasets=3000, law="deterministic", seed=0
        )
        lat = sim.latencies
        assert lat is not None
        assert lat[-1] > lat[100] * 5

    def test_tpn_engine_has_no_latency(self):
        from repro.petri import build_overlap_tpn
        from repro.sim.tpn_sim import simulate_tpn

        mp = make_mapping([[0]])
        sim = simulate_tpn(
            build_overlap_tpn(mp), n_datasets=50, law="deterministic", seed=0
        )
        with pytest.raises(ValueError):
            sim.latency_stats()
