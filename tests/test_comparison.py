"""Tests for quantiles and the coupled comparisons (Theorems 5/6/7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import strict_exponential_throughput
from repro.core.comparison import (
    coupled_throughputs,
    coupled_times,
    verify_st_dominance,
)
from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    ScaledBeta,
    TruncatedNormal,
    Uniform,
    Weibull,
)
from repro.petri import build_overlap_tpn, build_strict_tpn
from repro.sim.sampling import LawSpec

from tests.conftest import make_mapping

ALL_LAWS = [
    Deterministic(2.0),
    Exponential(2.0),
    Uniform.from_mean(2.0, 0.5),
    Gamma.from_mean(2.0, shape=3.0),
    Erlang.from_mean(2.0, k=4),
    ScaledBeta.from_mean(2.0, shape=2.0),
    TruncatedNormal.from_mean(2.0, sigma=0.5),
    Weibull.from_mean(2.0, shape=2.0),
    LogNormal.from_mean(2.0, sigma=0.8),
    HyperExponential.from_mean(2.0, cv2=4.0),
]


@pytest.mark.parametrize("dist", ALL_LAWS, ids=lambda d: d.name)
class TestQuantiles:
    def test_inverse_of_cdf_empirically(self, dist, rng):
        """P(X <= quantile(q)) ≈ q on a grid (atoms excluded)."""
        if isinstance(dist, Deterministic):
            pytest.skip("point mass: the CDF has a jump at the atom")
        x = np.sort(np.asarray(dist.sample(rng, 120_000)))
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            cut = dist.quantile(q)
            frac = np.searchsorted(x, cut) / x.size
            assert frac == pytest.approx(q, abs=0.01)

    def test_monotone(self, dist):
        grid = np.linspace(0.01, 0.99, 64)
        vals = np.asarray(dist.quantile(grid))
        assert (np.diff(vals) >= -1e-12).all()

    def test_median_scale(self, dist):
        med = dist.quantile(0.5)
        assert 0 < med < 10 * dist.mean

    def test_quantile_transform_samples(self, dist, rng):
        """Uniform draws through quantile() reproduce mean and variance."""
        u = rng.random(150_000)
        x = np.asarray(dist.quantile(u))
        assert x.mean() == pytest.approx(dist.mean, rel=0.03)
        if np.isfinite(dist.variance) and dist.variance > 0:
            assert x.var() == pytest.approx(dist.variance, rel=0.15)

    def test_rejects_bad_levels(self, dist):
        with pytest.raises(Exception):
            dist.quantile(np.array([-0.1]))


class TestCoupledComparisons:
    def test_coupled_times_shares_uniforms(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5])
        tpn = build_strict_tpn(mp)
        u = np.random.default_rng(0).random((tpn.n_transitions, 10))
        a = coupled_times(tpn, "deterministic", u)
        b = coupled_times(tpn, LawSpec.of("uniform", rel_half_width=0.5), u)
        assert a.shape == b.shape == u.shape
        # Same means row-wise by construction.
        assert np.allclose(a.mean(axis=1), [t.mean_time for t in tpn.transitions])

    def test_theorem5_st_sample_path(self):
        """Scaled laws are ≤st-ordered → daters ordered pointwise."""
        mp = make_mapping([[0], [1, 2]], seed=3)
        def fast(mean):
            return Uniform.from_mean(0.8 * mean, 0.5)

        def slow(mean):
            return Uniform.from_mean(mean, 0.5)

        for build in (build_overlap_tpn, build_strict_tpn):
            tpn = build(mp)
            assert verify_st_dominance(tpn, fast, slow, n_firings=150, seed=1)

    def test_theorem5_violated_without_order(self):
        """Same-mean laws are not ≤st-ordered: dominance check fails."""
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[1.0])
        tpn = build_strict_tpn(mp)

        def a(mean):
            return Exponential(mean)

        def b(mean):
            return Deterministic(mean)

        assert not verify_st_dominance(tpn, a, b, n_firings=300, seed=2)
        assert not verify_st_dominance(tpn, b, a, n_firings=300, seed=2)

    def test_theorem6_icx_ordering_in_expectation(self):
        """det >= Erlang-4 >= exp throughput, via common random numbers."""
        mp = make_mapping([[0], [1, 2]], works=[1.0, 2.0], files=[1.0])
        tpn = build_strict_tpn(mp)
        rhos = coupled_throughputs(
            tpn,
            {
                "det": "deterministic",
                "erlang4": LawSpec.of("erlang", k=4),
                "exp": "exponential",
            },
            n_firings=6000,
            seed=4,
        )
        assert rhos["det"] >= rhos["erlang4"] >= rhos["exp"]

    def test_theorem7_sandwich_via_daters(self):
        """The dater estimates of the extreme laws match the exact values."""
        from repro.core import tpn_throughput_deterministic

        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5])
        tpn = build_strict_tpn(mp)
        rhos = coupled_throughputs(
            tpn, {"det": "deterministic", "exp": "exponential"},
            n_firings=15_000, seed=5,
        )
        assert rhos["det"] == pytest.approx(
            tpn_throughput_deterministic(tpn), rel=0.02
        )
        assert rhos["exp"] == pytest.approx(
            strict_exponential_throughput(mp), rel=0.03
        )

    def test_non_nbue_below_exponential(self):
        """Theorem 7's converse face: DFR laws drop below the exp value."""
        mp = make_mapping([[0, 1], [2, 3, 4]], works=[1e-3, 1e-3])
        tpn = build_overlap_tpn(mp)
        rhos = coupled_throughputs(
            tpn,
            {
                "exp": "exponential",
                "dfr": LawSpec.of("gamma", shape=0.3),
            },
            n_firings=4000,
            seed=6,
        )
        assert rhos["dfr"] < rhos["exp"]
