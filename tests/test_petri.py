"""Tests for the timed event graph builders and structural analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StateSpaceLimitError, StructuralError
from repro.mapping.examples import example_a
from repro.petri import (
    build_overlap_tpn,
    build_strict_tpn,
    build_tpn,
    explore,
    is_feed_forward,
    is_live,
    is_strongly_connected,
    resource_token_invariant,
    strongly_connected_components,
    subnet,
    validate,
)
from repro.petri.net import TimedEventGraph
from repro.types import PlaceKind, TransitionKind

from tests.conftest import make_mapping


class TestNetStructure:
    def test_grid_shape(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        assert tpn.n_rows == 4
        assert tpn.n_columns == 5  # 2N - 1
        assert (tpn.grid >= 0).all()
        assert tpn.n_transitions == 4 * 5

    def test_transition_metadata(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        t = tpn.transitions[int(tpn.grid[2, 1])]  # compute of stage 2, row 1
        assert t.kind is TransitionKind.COMPUTE
        assert t.stage == 1
        assert t.resource == ("cpu", three_stage_mixed.processor(1, 1))

    def test_comm_resources_follow_roundrobin(self, three_stage_mixed):
        mp = three_stage_mixed
        tpn = build_overlap_tpn(mp)
        for j in range(mp.n_rows):
            t = tpn.transitions[int(tpn.grid[1, j])]
            assert t.resource == ("link", mp.processor(0, j), mp.processor(1, j))

    def test_mean_times_from_mapping(self):
        mp = make_mapping([[0], [1]], works=[2.0, 3.0], files=[4.0])
        tpn = build_overlap_tpn(mp)
        means = {t.label: t.mean_time for t in tpn.transitions}
        assert means["T1^(0)@P0"] == 2.0
        assert means["T2^(0)@P1"] == 3.0
        assert means["F1^(0)@P0->P1"] == 4.0

    def test_last_column(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        last = tpn.last_column_transitions()
        assert len(last) == 4
        assert all(tpn.transitions[t].column == 4 for t in last)

    def test_place_endpoint_validation(self):
        tpn = TimedEventGraph(n_rows=1, n_columns=1)
        tpn.add_transition(TransitionKind.COMPUTE, 0, 0, 0, ("cpu", 0), 1.0)
        with pytest.raises(StructuralError):
            tpn.add_place(0, 3, 0, PlaceKind.FLOW)

    def test_size_guard(self):
        from repro.mapping.examples import example_c

        with pytest.raises(StateSpaceLimitError):
            build_overlap_tpn(example_c(), max_transitions=1000)


class TestOverlapBuilder:
    def test_feed_forward(self, three_stage_mixed):
        """Overlap nets never point backwards (Theorem 3's hypothesis)."""
        assert is_feed_forward(build_overlap_tpn(three_stage_mixed))

    def test_live_and_valid(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        assert is_live(tpn)
        validate(tpn)

    def test_one_token_per_resource_cycle(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        counts = resource_token_invariant(tpn)
        assert counts and all(v == 1 for v in counts.values())

    def test_not_strongly_connected(self, three_stage_mixed):
        assert not is_strongly_connected(build_overlap_tpn(three_stage_mixed))

    def test_place_count(self):
        """Count the four place families of Section 3.2 explicitly."""
        mp = make_mapping([[0], [1, 2], [3, 4, 5, 6]])
        tpn = build_overlap_tpn(mp)
        m, n = 4, 3
        flow = sum(1 for p in tpn.places if p.kind is PlaceKind.FLOW)
        proc = sum(1 for p in tpn.places if p.kind is PlaceKind.PROC_CYCLE)
        outp = sum(1 for p in tpn.places if p.kind is PlaceKind.OUT_PORT)
        inp = sum(1 for p in tpn.places if p.kind is PlaceKind.IN_PORT)
        assert flow == m * (2 * n - 2)
        assert proc == m * n  # one place per compute transition
        assert outp == m * (n - 1)
        assert inp == m * (n - 1)

    def test_scc_structure_matches_columns(self, three_stage_mixed):
        """Overlap SCCs live inside single columns (proof of Theorem 3)."""
        tpn = build_overlap_tpn(three_stage_mixed)
        for comp in strongly_connected_components(tpn):
            cols = {tpn.transitions[t].column for t in comp}
            assert len(cols) == 1

    def test_comm_column_component_count(self):
        """gcd(R_i, R_{i+1}) connected components per communication."""
        mp = make_mapping([list(range(4)), list(range(4, 10))])
        tpn = build_overlap_tpn(mp)
        comm_comps = [
            c
            for c in strongly_connected_components(tpn)
            if tpn.transitions[c[0]].column == 1 and len(c) > 1
        ]
        assert len(comm_comps) == 2  # gcd(4, 6)

    def test_buffer_capacity_places(self, two_stage_2x3):
        plain = build_overlap_tpn(two_stage_2x3)
        capped = build_overlap_tpn(two_stage_2x3, buffer_capacity=3)
        caps = [p for p in capped.places if p.kind is PlaceKind.CAPACITY]
        flows = [p for p in plain.places if p.kind is PlaceKind.FLOW]
        assert len(caps) == len(flows)
        assert all(p.tokens == 3 for p in caps)

    def test_buffer_capacity_validation(self, two_stage_2x3):
        with pytest.raises(ValueError):
            build_overlap_tpn(two_stage_2x3, buffer_capacity=0)

    def test_example_a_grid(self):
        tpn = build_overlap_tpn(example_a())
        assert tpn.n_rows == 6
        assert tpn.n_columns == 7


class TestStrictBuilder:
    def test_not_feed_forward(self, three_stage_mixed):
        """Strict nets have the backward edges of Section 3.3."""
        assert not is_feed_forward(build_strict_tpn(three_stage_mixed))

    def test_live_and_valid(self, three_stage_mixed):
        tpn = build_strict_tpn(three_stage_mixed)
        assert is_live(tpn)
        validate(tpn)

    def test_strongly_connected(self, three_stage_mixed):
        """Connected mappings yield strongly connected Strict nets."""
        assert is_strongly_connected(build_strict_tpn(three_stage_mixed))

    def test_single_stage_equals_overlap(self):
        """With one stage there is nothing to overlap: same net shape."""
        mp = make_mapping([[0, 1, 2]])
        o = build_overlap_tpn(mp)
        s = build_strict_tpn(mp)
        assert o.n_transitions == s.n_transitions
        assert len(o.places) == len(s.places)

    def test_one_token_per_processor_chain(self, three_stage_mixed):
        tpn = build_strict_tpn(three_stage_mixed)
        counts = resource_token_invariant(tpn)
        strict_counts = {
            k: v for k, v in counts.items() if k[0] is PlaceKind.STRICT_CYCLE
        }
        assert strict_counts and all(v == 1 for v in strict_counts.values())

    def test_grid_same_as_overlap(self, three_stage_mixed):
        o = build_overlap_tpn(three_stage_mixed)
        s = build_strict_tpn(three_stage_mixed)
        assert np.array_equal(o.grid, s.grid)

    def test_build_tpn_dispatch(self, two_stage_2x3):
        assert is_feed_forward(build_tpn(two_stage_2x3, "overlap"))
        assert not is_feed_forward(build_tpn(two_stage_2x3, "strict"))


class TestSubnet:
    def test_saturation_drops_boundary_places(self, three_stage_mixed):
        tpn = build_overlap_tpn(three_stage_mixed)
        comps = strongly_connected_components(tpn)
        comm = next(
            c for c in comps if tpn.transitions[c[0]].column == 1 and len(c) > 1
        )
        sub, relabel = subnet(tpn, comm)
        assert sub.n_transitions == len(comm)
        # Every remaining place connects transitions inside the component.
        assert all(0 <= p.src < sub.n_transitions for p in sub.places)
        # Flow places from column 0 were dropped (saturated inputs).
        assert all(p.kind is not PlaceKind.FLOW for p in sub.places)


class TestReachability:
    def test_single_processor_cycle(self):
        """A 1-stage, 1-processor net has exactly one marking."""
        mp = make_mapping([[0]])
        tpn = build_overlap_tpn(mp)
        reach = explore(tpn)
        assert reach.n_states == 1
        assert reach.arcs[0] == [(0, 0)]  # self-loop firing

    def test_strict_two_stage_state_count(self):
        mp = make_mapping([[0], [1]])
        tpn = build_strict_tpn(mp)
        reach = explore(tpn)
        # Three serialized operations, one circulating token each plus the
        # chain structure: the marking graph is a small cycle.
        assert reach.n_states >= 3
        for s, moves in enumerate(reach.arcs):
            for _, s2 in moves:
                assert 0 <= s2 < reach.n_states

    def test_unbounded_net_detected(self, two_stage_2x3):
        tpn = build_overlap_tpn(two_stage_2x3)
        with pytest.raises(StructuralError, match="unbounded"):
            explore(tpn, place_bound=8)

    def test_capacity_makes_bounded(self, two_stage_2x3):
        tpn = build_overlap_tpn(two_stage_2x3, buffer_capacity=1)
        reach = explore(tpn)
        assert reach.n_states > 1
        # 1-safe with capacity 1: marking entries are 0/1.
        for s in range(reach.n_states):
            assert reach.marking(s).max() <= 1

    def test_max_states_guard(self):
        mp = make_mapping([[0, 1, 2], [3, 4, 5, 6]])
        tpn = build_overlap_tpn(mp, buffer_capacity=2)
        with pytest.raises(StateSpaceLimitError):
            explore(tpn, max_states=10)

    def test_marking_roundtrip(self, two_stage_2x3):
        tpn = build_overlap_tpn(two_stage_2x3, buffer_capacity=1)
        reach = explore(tpn)
        m0 = reach.marking(reach.initial)
        assert np.array_equal(m0, tpn.initial_marking())
