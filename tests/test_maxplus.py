"""Tests for the (max,+) algebra and the cycle-ratio solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StructuralError
from repro.maxplus import (
    NEG_INF,
    Arc,
    MaxPlusMatrix,
    TokenGraph,
    max_cycle_ratio,
    max_cycle_ratio_brute_force,
    max_mean_cycle_karp,
    oplus,
    otimes,
)


class TestSemiring:
    def test_oplus_is_max(self):
        assert oplus(3.0, 5.0) == 5.0
        assert oplus(NEG_INF, 2.0) == 2.0

    def test_otimes_is_add(self):
        assert otimes(3.0, 5.0) == 8.0
        assert otimes(NEG_INF, 5.0) == NEG_INF

    def test_vectorized(self):
        a = np.array([1.0, NEG_INF])
        assert np.array_equal(oplus(a, 0.0), [1.0, 0.0])


class TestMaxPlusMatrix:
    def test_identity_neutral(self):
        a = MaxPlusMatrix(np.array([[1.0, 2.0], [NEG_INF, 3.0]]))
        i = MaxPlusMatrix.identity(2)
        assert (a @ i) == a
        assert (i @ a) == a

    def test_zeros_absorbing(self):
        a = MaxPlusMatrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        z = MaxPlusMatrix.zeros(2)
        assert (a @ z) == z

    def test_matmul_definition(self):
        a = MaxPlusMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = MaxPlusMatrix(np.array([[5.0, 6.0], [7.0, 8.0]]))
        c = (a @ b).array
        # c[0,0] = max(1+5, 2+7) = 9
        assert c[0, 0] == 9.0
        assert c[1, 1] == 12.0

    def test_power(self):
        a = MaxPlusMatrix(np.array([[NEG_INF, 1.0], [2.0, NEG_INF]]))
        p2 = a.power(2).array
        assert p2[0, 0] == 3.0  # 0 -> 1 -> 0
        assert a.power(0) == MaxPlusMatrix.identity(2)

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            MaxPlusMatrix.identity(2).power(-1)

    def test_vecmul_is_dater_update(self):
        a = MaxPlusMatrix(np.array([[1.0, NEG_INF], [0.0, 2.0]]))
        v = np.array([0.0, 5.0])
        out = a.vecmul(v)
        assert out[0] == 5.0  # max(0+1, 5+0)
        assert out[1] == 7.0

    def test_eigenvalue_is_max_mean_cycle(self):
        # Two loops: self-loop of weight 2 at node 0, 2-cycle of mean 2.5.
        a = np.full((2, 2), NEG_INF)
        a[0, 0] = 2.0
        a[0, 1] = 3.0
        a[1, 0] = 2.0
        m = MaxPlusMatrix(a)
        assert m.eigenvalue() == pytest.approx(2.5)

    def test_eigenvalue_requires_irreducible(self):
        a = np.full((2, 2), NEG_INF)
        a[0, 1] = 1.0
        with pytest.raises(StructuralError):
            MaxPlusMatrix(a).eigenvalue()

    def test_non_square_rejected(self):
        with pytest.raises(StructuralError):
            MaxPlusMatrix(np.zeros((2, 3)))


class TestTokenGraph:
    def test_add_and_iterate(self):
        g = TokenGraph(3)
        g.add_arc(0, 1, weight=1.0, tokens=0)
        g.add_arc(1, 0, weight=2.0, tokens=1)
        assert g.n_arcs == 2
        assert [a.src for a in g] == [0, 1]

    def test_out_of_range_rejected(self):
        g = TokenGraph(2)
        with pytest.raises(StructuralError):
            g.add_arc(0, 5, weight=1.0, tokens=0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(StructuralError):
            Arc(0, 1, 1.0, -1)

    def test_zero_token_cycle_detection(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=0)
        g.add_arc(1, 0, weight=1.0, tokens=0)
        assert g.has_zero_token_cycle()
        g2 = TokenGraph(2)
        g2.add_arc(0, 1, weight=1.0, tokens=0)
        g2.add_arc(1, 0, weight=1.0, tokens=1)
        assert not g2.has_zero_token_cycle()

    def test_sccs(self):
        g = TokenGraph(4)
        g.add_arc(0, 1, weight=0.0, tokens=1)
        g.add_arc(1, 0, weight=0.0, tokens=1)
        g.add_arc(1, 2, weight=0.0, tokens=0)
        comps = g.strongly_connected_components()
        assert sorted(map(tuple, comps)) == [(0, 1), (2,), (3,)]

    def test_subgraph_relabels(self):
        g = TokenGraph(4)
        g.add_arc(2, 3, weight=5.0, tokens=1)
        sub, relabel = g.subgraph([2, 3])
        assert sub.n_nodes == 2
        assert sub.arcs[0].src == relabel[2]


def _simple_cycle_graph() -> TokenGraph:
    """Two nested cycles with known ratios 3.0 and 2.0."""
    g = TokenGraph(3)
    g.add_arc(0, 1, weight=2.0, tokens=1)
    g.add_arc(1, 0, weight=4.0, tokens=1)  # ratio (2+4)/2 = 3
    g.add_arc(1, 2, weight=1.0, tokens=0)
    g.add_arc(2, 1, weight=3.0, tokens=2)  # ratio (1+3)/2 = 2
    return g


class TestMaxCycleRatio:
    def test_simple(self):
        res = max_cycle_ratio(_simple_cycle_graph())
        assert res is not None
        assert res.ratio == pytest.approx(3.0)
        assert set(res.nodes) == {0, 1}

    def test_matches_brute_force(self):
        res = max_cycle_ratio(_simple_cycle_graph())
        oracle = max_cycle_ratio_brute_force(_simple_cycle_graph())
        assert res.ratio == pytest.approx(oracle.ratio)

    def test_acyclic_returns_none(self):
        g = TokenGraph(3)
        g.add_arc(0, 1, weight=1.0, tokens=1)
        g.add_arc(1, 2, weight=1.0, tokens=0)
        assert max_cycle_ratio(g) is None

    def test_zero_token_cycle_raises(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=0)
        g.add_arc(1, 0, weight=1.0, tokens=0)
        with pytest.raises(StructuralError):
            max_cycle_ratio(g)

    def test_self_loop(self):
        g = TokenGraph(1)
        g.add_arc(0, 0, weight=7.0, tokens=2)
        res = max_cycle_ratio(g)
        assert res.ratio == pytest.approx(3.5)

    def test_parallel_arcs(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=1)
        g.add_arc(0, 1, weight=9.0, tokens=1)  # heavier parallel arc
        g.add_arc(1, 0, weight=1.0, tokens=1)
        res = max_cycle_ratio(g)
        assert res.ratio == pytest.approx(5.0)

    def test_zero_weights(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=0.0, tokens=1)
        g.add_arc(1, 0, weight=0.0, tokens=1)
        res = max_cycle_ratio(g)
        assert res.ratio == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_graphs_match_brute_force(self, seed):
        """Fuzz the solver against the exponential oracle on small graphs."""
        r = np.random.default_rng(seed)
        n = int(r.integers(2, 7))
        g = TokenGraph(n)
        # Ensure a Hamiltonian token cycle so the graph is live and cyclic.
        perm = r.permutation(n)
        for i in range(n):
            g.add_arc(
                int(perm[i]), int(perm[(i + 1) % n]),
                weight=float(r.uniform(0, 10)), tokens=1,
            )
        for _ in range(int(r.integers(1, 2 * n))):
            u, v = int(r.integers(n)), int(r.integers(n))
            g.add_arc(u, v, weight=float(r.uniform(0, 10)),
                      tokens=int(r.integers(1, 3)))
        res = max_cycle_ratio(g)
        oracle = max_cycle_ratio_brute_force(g)
        assert res is not None and oracle is not None
        assert res.ratio == pytest.approx(oracle.ratio, rel=1e-9)


class TestKarp:
    def test_max_mean_cycle(self):
        g = TokenGraph(3)
        g.add_arc(0, 1, weight=2.0, tokens=1)
        g.add_arc(1, 0, weight=4.0, tokens=1)
        g.add_arc(2, 2, weight=5.0, tokens=1)
        assert max_mean_cycle_karp(g) == pytest.approx(5.0)

    def test_agrees_with_ratio_solver_on_unit_tokens(self):
        for seed in range(10):
            r = np.random.default_rng(100 + seed)
            n = int(r.integers(2, 6))
            g = TokenGraph(n)
            perm = r.permutation(n)
            for i in range(n):
                g.add_arc(
                    int(perm[i]), int(perm[(i + 1) % n]),
                    weight=float(r.uniform(0, 5)), tokens=1,
                )
            for _ in range(n):
                g.add_arc(
                    int(r.integers(n)), int(r.integers(n)),
                    weight=float(r.uniform(0, 5)), tokens=1,
                )
            assert max_mean_cycle_karp(g) == pytest.approx(
                max_cycle_ratio(g).ratio, rel=1e-9
            )

    def test_acyclic_raises(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=1)
        with pytest.raises(StructuralError):
            max_mean_cycle_karp(g)
