"""The batched replication engine and its equivalence contract (PR 5).

The vectorized engine evaluates every replication of the Section 2
recurrences in one numpy pass; these tests pin its bit-identity to the
per-replication loop across models, laws, correlation modes and
degenerate shapes, plus the runner/solver plumbing around it.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.evaluate import evaluate, get_solver
from repro.mapping.examples import single_communication, uniform_chain
from repro.sim import (
    ReplicationSpec,
    replicate,
    replication_values,
    simulate_system,
    simulate_system_batch,
    throughput_vs_datasets,
)
from repro.sim.sampling import LawSpec, SampleBuffer

from tests.conftest import make_mapping


def _paper_like():
    """A small replicated pipeline in the shape of the Fig. 10 system."""
    return uniform_chain([1, 3, 2], work=4.0, file_size=2.0)


class TestBatchKernelBitIdentity:
    @pytest.mark.parametrize("model", ["overlap", "strict"])
    @pytest.mark.parametrize(
        "law,correlation",
        [
            ("deterministic", "independent"),
            ("exponential", "independent"),
            ("exponential", "associated"),
            (LawSpec.of("gamma", shape=2.0), "independent"),
        ],
    )
    def test_rows_match_serial(self, model, law, correlation):
        mp = _paper_like()
        streams = np.random.default_rng(7).spawn(6)
        batch = simulate_system_batch(
            mp, model, n_datasets=40, rngs=streams, law=law,
            correlation=correlation,
        )
        for r, rng in enumerate(np.random.default_rng(7).spawn(6)):
            serial = simulate_system(
                mp, model, n_datasets=40, law=law, rng=rng,
                correlation=correlation,
            )
            assert (
                serial.completion_times.tobytes()
                == batch.completion_times[r].tobytes()
            )
            assert serial.latencies.tobytes() == batch.latencies[r].tobytes()
            assert serial.n_events == batch.n_events
            assert serial.throughput == batch.throughput()[r]
            assert (
                serial.steady_state_throughput()
                == batch.steady_state_throughput()[r]
            )

    @pytest.mark.parametrize("model", ["overlap", "strict"])
    def test_degenerate_shapes(self, model):
        # R=1 batches and a single-stage pipeline (no transfers at all).
        for mp, n_reps in [
            (make_mapping([[0]]), 1),
            (make_mapping([[0], [1, 2]]), 1),
            (make_mapping([[0]], works=[2.0]), 4),
        ]:
            streams = np.random.default_rng(1).spawn(n_reps)
            batch = simulate_system_batch(
                mp, model, n_datasets=5, rngs=streams, law="exponential"
            )
            assert batch.n_replications == n_reps
            assert batch.n_datasets == 5
            for r, rng in enumerate(np.random.default_rng(1).spawn(n_reps)):
                serial = simulate_system(
                    mp, model, n_datasets=5, law="exponential", rng=rng
                )
                assert np.array_equal(
                    serial.completion_times, batch.completion_times[r]
                )

    def test_result_view_roundtrip(self):
        mp = _paper_like()
        streams = np.random.default_rng(2).spawn(3)
        batch = simulate_system_batch(
            mp, "overlap", n_datasets=20, rngs=streams, law="exponential"
        )
        one = batch.result(1)
        ref = simulate_system(
            mp, "overlap", n_datasets=20, law="exponential",
            rng=np.random.default_rng(2).spawn(3)[1],
        )
        assert np.array_equal(one.completion_times, ref.completion_times)
        assert one.throughput == ref.throughput

    def test_validation(self):
        mp = make_mapping([[0]])
        with pytest.raises(ValueError, match="at least one"):
            simulate_system_batch(mp, "overlap", n_datasets=5, rngs=[])
        with pytest.raises(ValueError, match="n_datasets"):
            simulate_system_batch(
                mp, "overlap", n_datasets=0,
                rngs=[np.random.default_rng(0)],
            )


class TestReplicationValues:
    @pytest.mark.parametrize("model", ["overlap", "strict"])
    @pytest.mark.parametrize("estimator", ["total", "steady"])
    def test_engines_byte_identical(self, model, estimator):
        spec = ReplicationSpec(
            _paper_like(), model, n_datasets=60, law="exponential"
        )
        loop = replication_values(
            spec, n_replications=9, seed=3, estimator=estimator, engine="loop"
        )
        vec = replication_values(
            spec, n_replications=9, seed=3, estimator=estimator,
            engine="vectorized",
        )
        assert loop.tobytes() == vec.tobytes()

    def test_auto_prefers_vectorized_for_spec(self):
        spec = ReplicationSpec(
            single_communication(2, 3), n_datasets=50, law="exponential"
        )
        auto = replication_values(spec, n_replications=4, seed=0)
        vec = replication_values(
            spec, n_replications=4, seed=0, engine="vectorized"
        )
        assert auto.tobytes() == vec.tobytes()

    def test_engine_validation(self):
        spec = ReplicationSpec(make_mapping([[0]]), n_datasets=5)
        with pytest.raises(ValueError, match="unknown engine"):
            replication_values(spec, n_replications=2, engine="warp")
        with pytest.raises(ValueError, match="ReplicationSpec"):
            replication_values(
                lambda rng: None, n_replications=2, engine="vectorized"
            )
        with pytest.raises(ValueError, match="unknown estimator"):
            replication_values(spec, n_replications=2, estimator="median")


class TestReplicateEngines:
    def test_summary_identical_across_engines(self):
        spec = ReplicationSpec(
            _paper_like(), "overlap", n_datasets=80, law="exponential"
        )
        loop = replicate(spec, n_replications=12, seed=4, engine="loop")
        vec = replicate(spec, n_replications=12, seed=4, engine="vectorized")
        auto = replicate(spec, n_replications=12, seed=4)
        assert loop == vec == auto

    def test_callable_still_works_via_auto(self):
        mp = single_communication(2, 3)

        def run(rng):
            return simulate_system(
                mp, "overlap", n_datasets=50, law="exponential", rng=rng
            )

        summary = replicate(run, n_replications=4, seed=0)
        spec_summary = replicate(
            ReplicationSpec(mp, "overlap", n_datasets=50, law="exponential"),
            n_replications=4,
            seed=0,
        )
        assert summary == spec_summary

    def test_spec_is_picklable_callable(self):
        import pickle

        spec = ReplicationSpec(
            single_communication(2, 2), n_datasets=10, law="exponential"
        )
        clone = pickle.loads(pickle.dumps(spec))
        a = spec(np.random.default_rng(5))
        b = clone(np.random.default_rng(5))
        assert np.array_equal(a.completion_times, b.completion_times)

    def test_no_pickle_probe_when_serial(self):
        """The picklability probe must only run on the n_jobs > 1 path."""
        mp = single_communication(2, 2)

        class Unpicklable:
            def __call__(self, rng):
                return simulate_system(
                    mp, "overlap", n_datasets=10, law="exponential", rng=rng
                )

            def __reduce__(self):
                raise AssertionError("pickled on the serial path")

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the fallback warning = failure
            summary = replicate(Unpicklable(), n_replications=2, seed=0)
        assert summary.n_replications == 2

    def test_unpicklable_parallel_falls_back_with_warning(self):
        mp = single_communication(2, 2)
        run = lambda rng: simulate_system(  # noqa: E731 - deliberately local
            mp, "overlap", n_datasets=10, law="exponential", rng=rng
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            parallel = replicate(run, n_replications=3, seed=1, n_jobs=2)
        serial = replicate(run, n_replications=3, seed=1)
        assert parallel == serial

    def test_engine_loop_forces_loop_for_spec(self):
        spec = ReplicationSpec(
            single_communication(2, 3), n_datasets=30, law="exponential"
        )
        assert replicate(spec, n_replications=3, seed=2, engine="loop") == \
            replicate(spec, n_replications=3, seed=2, engine="vectorized")


class TestSpecAndSweep:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReplicationSpec(make_mapping([[0]]), n_datasets=0)

    def test_with_datasets(self):
        spec = ReplicationSpec(make_mapping([[0]]), n_datasets=10)
        assert spec.with_datasets(25).n_datasets == 25
        assert spec.with_datasets(25).mapping is spec.mapping

    def test_throughput_vs_datasets_accepts_numpy_ints(self):
        spec = ReplicationSpec(
            single_communication(2, 3), n_datasets=1, law="exponential"
        )
        series = throughput_vs_datasets(
            spec, np.array([10, 100], dtype=np.int64), seed=0
        )
        assert [k for k, _ in series] == [10, 100]
        assert all(isinstance(k, int) for k, _ in series)

    def test_throughput_vs_datasets_rejects_floats_before_run(self):
        def bomb(rng, n):  # pragma: no cover - must never be called
            raise AssertionError("run invoked despite invalid counts")

        with pytest.raises(TypeError, match="integers"):
            throughput_vs_datasets(bomb, [10, 2.5])
        with pytest.raises(TypeError, match="integers"):
            throughput_vs_datasets(bomb, [True, 10])
        with pytest.raises(ValueError, match="positive"):
            throughput_vs_datasets(bomb, [0, 10])

    def test_throughput_vs_datasets_spec_matches_callable(self):
        mp = single_communication(2, 3)
        spec = ReplicationSpec(mp, "overlap", n_datasets=1, law="exponential")

        def run(rng, n):
            return simulate_system(
                mp, "overlap", n_datasets=n, law="exponential", rng=rng
            )

        assert throughput_vs_datasets(spec, [10, 50], seed=3) == \
            throughput_vs_datasets(run, [10, 50], seed=3)


class TestSampleBufferBlocks:
    def test_draw_blocks_matches_flat_stream(self):
        from repro.distributions import Exponential

        a = SampleBuffer(Exponential(1.0), np.random.default_rng(9))
        b = SampleBuffer(Exponential(1.0), np.random.default_rng(9))
        blocks = a.draw_blocks(4, 6)
        flat = b.draw_block(24)
        assert blocks.shape == (4, 6)
        assert np.array_equal(blocks.ravel(), flat)


class TestSimulationSolverReplication:
    def test_engines_agree_and_mean_matches_manual(self):
        mp = single_communication(3, 4)
        loop = evaluate(
            mp, solver="simulation", n_datasets=60, n_replications=5,
            engine="loop",
        )
        vec = evaluate(
            mp, solver="simulation", n_datasets=60, n_replications=5,
            engine="vectorized",
        )
        assert loop == vec
        solver = get_solver("simulation", n_datasets=60, n_replications=5)
        assert solver.solve(mp) == loop

    def test_single_run_unchanged(self):
        mp = single_communication(3, 4)
        baseline = evaluate(mp, solver="simulation", n_datasets=80)
        spec = get_solver("simulation", n_datasets=80)
        result = simulate_system(
            mp, "overlap", n_datasets=80,
            law=LawSpec.of("exponential"),
            rng=spec.rng_for(mp, "overlap"),
        )
        assert baseline == result.throughput

    def test_replication_study_differs_from_single_run(self):
        mp = single_communication(3, 4)
        single = evaluate(mp, solver="simulation", n_datasets=60)
        study = evaluate(
            mp, solver="simulation", n_datasets=60, n_replications=8
        )
        assert single != study

    def test_validation(self):
        with pytest.raises(ValueError):
            get_solver("simulation", n_replications=0)
