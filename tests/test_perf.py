"""Tests for :mod:`repro.perf` and the ``cli bench`` subcommands.

Covers meta normalization across the report schema generations the
repo accumulated, the regression-gate comparison (tolerance boundary
behavior, scale-mismatch skipping, missing/added engines), trajectory
loading over the committed ``BENCH_PR*.json`` baselines, and the CLI
surface: ``bench --list-workloads``, ``bench --output -`` streaming,
``bench trajectory`` and ``bench compare`` exit codes (the doctored-2x
acceptance check rides here).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import WORKLOAD_ENGINES, available_workloads
from repro.cli import main
from repro.perf import (
    META_KEYS,
    SCALE_KEYS,
    compare_reports,
    load_report,
    load_trajectory,
    normalize_meta,
    render_comparison,
    render_trajectory,
    report_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def report(engines: dict, meta: dict | None = None) -> dict:
    return {"engines": engines, "meta": meta or {}, "speedups": {}}


# ----------------------------------------------------------------------
# Meta normalization across schema generations
# ----------------------------------------------------------------------
class TestNormalizeMeta:
    def test_oldest_generation_fills_gaps(self):
        # The PR 1-4 vintage: no workloads, no interpreter provenance.
        meta = normalize_meta({
            "bench": "engine microbenchmarks", "cpu_count": 1,
            "numpy": "2.4.6", "quick": False, "repeats": 5,
        })
        assert set(META_KEYS) <= set(meta)
        assert meta["workloads"] == []
        assert meta["python"] is None
        assert meta["git_revision"] is None
        assert meta["repeats"] == 5

    def test_none_meta_normalizes(self):
        meta = normalize_meta(None)
        assert meta["workloads"] == []
        assert meta["bench"] is None

    def test_unknown_future_keys_ride_along(self):
        meta = normalize_meta({"bench": "x", "hypothetical": 7})
        assert meta["hypothetical"] == 7

    def test_committed_reports_all_normalize(self):
        for path in report_paths(REPO_ROOT):
            meta = load_report(path)["meta"]
            assert isinstance(meta["workloads"], list)
            assert set(META_KEYS) <= set(meta)


# ----------------------------------------------------------------------
# Report loading
# ----------------------------------------------------------------------
class TestLoadReport:
    def test_rejects_non_report_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"foo": 1}')
        with pytest.raises(ValueError, match="no 'engines' table"):
            load_report(bogus)

    def test_rejects_invalid_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(bogus)

    def test_report_paths_sort_numerically(self, tmp_path):
        for n in (10, 2, 1):
            (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
        (tmp_path / "BENCH_QUICK_BASELINE.json").write_text("{}")
        names = [p.name for p in report_paths(tmp_path)]
        assert names == [
            "BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR10.json",
        ]


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
class TestCompareReports:
    def test_identical_reports_pass(self):
        r = report({"a": {"median_s": 1.0, "n_states": 100}})
        result = compare_reports(r, r, tolerance=0.5)
        assert result["ok"] is True
        assert result["engines"]["a"]["status"] == "ok"
        assert result["engines"]["a"]["ratio"] == 1.0

    def test_tolerance_boundary(self):
        base = report({"a": {"median_s": 1.0}})
        assert compare_reports(
            base, report({"a": {"median_s": 1.4}}), tolerance=0.5
        )["ok"] is True
        result = compare_reports(
            base, report({"a": {"median_s": 1.6}}), tolerance=0.5
        )
        assert result["ok"] is False
        assert result["regressions"] == ["a"]
        assert result["engines"]["a"]["status"] == "regression"

    def test_improvement_is_labelled_not_failed(self):
        result = compare_reports(
            report({"a": {"median_s": 1.0}}),
            report({"a": {"median_s": 0.2}}),
            tolerance=0.5,
        )
        assert result["ok"] is True
        assert result["engines"]["a"]["status"] == "improved"

    def test_scale_mismatch_skips_instead_of_misjudging(self):
        # A quick-mode run against a full-size baseline: the 10x "slowdown"
        # is a size change, not a regression.
        result = compare_reports(
            report({"a": {"median_s": 0.1, "n_states": 1000}}),
            report({"a": {"median_s": 1.0, "n_states": 10368}}),
            tolerance=0.5,
        )
        assert result["ok"] is True
        assert result["skipped"] == ["a"]
        assert result["engines"]["a"] == {
            "status": "skipped", "mismatched": ["n_states"],
        }

    def test_machine_facts_are_not_scale_keys(self):
        assert "n_jobs" not in SCALE_KEYS
        assert "n_states" in SCALE_KEYS

    def test_missing_and_added_engines_reported(self):
        result = compare_reports(
            report({"old": {"median_s": 1.0}}),
            report({"new": {"median_s": 1.0}}),
        )
        assert result["missing"] == ["old"]
        assert result["added"] == ["new"]
        assert result["ok"] is True  # nothing comparable regressed

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(report({}), report({}), tolerance=-0.1)

    def test_render_comparison_verdict_lines(self):
        result = compare_reports(
            report({"a": {"median_s": 1.0}, "b": {"median_s": 1.0, "n": 4}}),
            report({"a": {"median_s": 9.0}, "b": {"median_s": 1.0, "n": 8}}),
            tolerance=0.5,
        )
        text = render_comparison(result)
        assert "FAIL (1 regression(s))" in text
        assert "skipped (scale mismatch: n)" in text


# ----------------------------------------------------------------------
# Trajectory over the committed baselines
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_loads_every_committed_baseline(self):
        entries = load_trajectory(REPO_ROOT)
        assert len(entries) >= 7
        labels = [e["label"] for e in entries]
        assert labels[0] == "PR1"
        assert labels == sorted(
            labels, key=lambda s: int(s.removeprefix("PR"))
        )

    def test_render_covers_workloads_and_speedups(self):
        text = render_trajectory(load_trajectory(REPO_ROOT))
        assert "reachability.vectorized" in text
        assert "PR1" in text and "PR7" in text
        assert "speedup ratios" in text
        # An engine absent from a vintage renders as '-', not a crash.
        assert " -" in text

    def test_extra_reports_append_with_stem_labels(self, tmp_path):
        extra = tmp_path / "candidate.json"
        extra.write_text(json.dumps(report({"a": {"median_s": 1.0}})))
        entries = load_trajectory(tmp_path, extra=(str(extra),))
        assert [e["label"] for e in entries] == ["candidate"]

    def test_empty_directory_yields_no_entries(self, tmp_path):
        assert load_trajectory(tmp_path) == []
        assert render_trajectory([]) == "no benchmark reports"


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliBench:
    def test_list_workloads(self, capsys):
        assert main(["bench", "--list-workloads"]) == 0
        names = capsys.readouterr().out.split()
        assert tuple(names) == WORKLOAD_ENGINES == available_workloads()

    def test_compare_unchanged_baseline_exits_0(self, capsys):
        rc = main([
            "bench", "compare",
            str(REPO_ROOT / "BENCH_PR7.json"),
            str(REPO_ROOT / "BENCH_PR7.json"),
            "--tolerance", "0.5",
        ])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_doctored_2x_slowdown_exits_1(self, tmp_path, capsys):
        baseline = REPO_ROOT / "BENCH_PR7.json"
        doctored = json.loads(baseline.read_text())
        for row in doctored["engines"].values():
            row["median_s"] *= 2.0
        doctored_path = tmp_path / "doctored.json"
        doctored_path.write_text(json.dumps(doctored))
        rc = main([
            "bench", "compare", str(baseline), str(doctored_path),
            "--tolerance", "0.5",
        ])
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_json_mode(self, capsys):
        rc = main([
            "bench", "compare",
            str(REPO_ROOT / "BENCH_PR7.json"),
            str(REPO_ROOT / "BENCH_PR7.json"),
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["engines"]

    def test_compare_rejects_bad_inputs(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "compare", "/nonexistent.json",
                  str(REPO_ROOT / "BENCH_PR7.json")])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["bench", "compare", str(REPO_ROOT / "BENCH_PR7.json"),
                  str(REPO_ROOT / "BENCH_PR7.json"), "--tolerance", "-1"])

    def test_trajectory_table_and_json(self, capsys):
        assert main(["bench", "trajectory", "--dir", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "median seconds per workload" in out
        assert main([
            "bench", "trajectory", "--dir", str(REPO_ROOT), "--json",
        ]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries[0]["label"] == "PR1"

    def test_trajectory_empty_dir_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "trajectory", "--dir", str(tmp_path)])

    def test_output_dash_streams_pure_json_and_writes_no_file(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        rc = main([
            "bench", "--quick", "--workloads", "maxplus", "--output", "-",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)  # pure JSON stream
        assert "maxplus.matmul" in payload["engines"]
        assert payload["meta"]["quick"] is True
        assert list(tmp_path.iterdir()) == []  # nothing touched disk

    def test_output_dash_bypasses_overwrite_guard(
        self, tmp_path, monkeypatch, capsys
    ):
        # '-' is a stream, not a path: an existing file named '-' (or any
        # committed baseline) must not trip the --force guard.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "-").write_text("sentinel")
        rc = main([
            "bench", "--quick", "--workloads", "maxplus", "--output", "-",
        ])
        assert rc == 0
        capsys.readouterr()
        assert (tmp_path / "-").read_text() == "sentinel"
