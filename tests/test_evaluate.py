"""Tests for the unified throughput-solver subsystem (repro.evaluate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Application, Mapping, Platform, StreamingSystem
from repro.core.components import overlap_throughput
from repro.core.deterministic import tpn_throughput_deterministic
from repro.core.exponential import exponential_throughput
from repro.core.bounds import throughput_bounds
from repro.evaluate import (
    StructureCache,
    TaskFailure,
    available_solvers,
    evaluate,
    evaluate_many,
    evaluate_tasks,
    get_solver,
    mapping_fingerprint,
    structure_fingerprint,
)
from repro.exceptions import UnsupportedModelError
from repro.mapping.examples import example_a, single_communication
from repro.mapping.generators import random_mapping
from repro.markov.builder import tpn_throughput_exponential
from repro.petri.builder_strict import build_strict_tpn

from tests.conftest import make_mapping


def _instance(seed: int = 0, n: int = 3, m: int = 9):
    rng = np.random.default_rng(seed)
    app = Application.from_work(
        rng.uniform(1.0, 8.0, n).tolist(), rng.uniform(0.1, 0.5, n - 1).tolist()
    )
    platform = Platform.from_speeds(
        rng.uniform(1.0, 3.0, m).tolist(), bandwidth=5.0
    )
    return app, platform


class TestRegistry:
    def test_all_backends_registered(self):
        names = available_solvers()
        for expected in ("bounds", "deterministic", "exponential", "simulation"):
            assert expected in names

    def test_unknown_solver_raises(self):
        with pytest.raises(UnsupportedModelError, match="unknown solver"):
            get_solver("quantum")

    def test_options_configure_the_instance(self):
        solver = get_solver("deterministic", semantics="bottleneck")
        assert solver.semantics == "bottleneck"


class TestSolverAgreement:
    """Every registered solver agrees with its pre-refactor call path."""

    @pytest.fixture(scope="class")
    def systems(self):
        return {
            "example_a": example_a(),
            "single_comm": single_communication(3, 2, comm_time=1.0),
            "small": make_mapping([[0], [1, 2]], seed=4),
        }

    def test_deterministic_overlap(self, systems):
        for mp in systems.values():
            assert evaluate(mp, solver="deterministic") == overlap_throughput(
                mp, "deterministic"
            )

    def test_deterministic_strict(self, systems):
        for name in ("example_a", "small"):
            mp = systems[name]
            legacy = tpn_throughput_deterministic(build_strict_tpn(mp))
            assert (
                evaluate(mp, solver="deterministic", model="strict") == legacy
            )

    def test_exponential_overlap(self, systems):
        for mp in systems.values():
            assert evaluate(mp, solver="exponential") == overlap_throughput(
                mp, "exponential"
            )

    def test_exponential_strict(self, systems):
        mp = systems["small"]
        legacy = exponential_throughput(mp, "strict")
        assert evaluate(mp, solver="exponential", model="strict") == legacy
        # And with a cache (shared net + reachability): still identical.
        assert (
            evaluate(
                mp, solver="exponential", model="strict", cache=StructureCache()
            )
            == legacy
        )

    def test_bounds_solver_matches_legacy_formulas(self, systems):
        for model in ("overlap", "strict"):
            mp = systems["small"]
            b = get_solver("bounds").bounds(mp, model)
            if model == "overlap":
                assert b.upper == overlap_throughput(mp, "deterministic")
                assert b.lower == overlap_throughput(mp, "exponential")
            else:
                assert b.upper == tpn_throughput_deterministic(
                    build_strict_tpn(mp)
                )
                assert b.lower == tpn_throughput_exponential(
                    build_strict_tpn(mp)
                )
            assert throughput_bounds(mp, model).lower == b.lower

    def test_streaming_system_delegates(self, systems):
        mp = systems["example_a"]
        sys_ = StreamingSystem(mp, "overlap")
        assert sys_.deterministic_throughput() == overlap_throughput(
            mp, "deterministic"
        )
        assert sys_.exponential_throughput() == overlap_throughput(
            mp, "exponential"
        )
        assert sys_.solve("deterministic") == sys_.deterministic_throughput()
        # Repeated calls are memo hits on the system's own cache.
        assert sys_.cache.hits > 0

    def test_simulation_solver_is_deterministic(self, systems):
        mp = systems["single_comm"]
        a = evaluate(mp, solver="simulation", n_datasets=200, seed=9)
        b = evaluate(mp, solver="simulation", n_datasets=200, seed=9)
        assert a == b
        c = evaluate(mp, solver="simulation", n_datasets=200, seed=10)
        assert a != c


class TestFingerprint:
    def test_isomorphic_relabelling_collapses(self):
        app = Application.from_work([1.0, 2.0], [0.5])
        plat = Platform.homogeneous(6, 2.0, 1.0)
        m1 = Mapping(app, plat, [[0, 1], [2, 3]])
        m2 = Mapping(app, plat, [[4, 5], [0, 2]])
        assert mapping_fingerprint(m1) == mapping_fingerprint(m2)

    def test_different_times_differ(self):
        app = Application.from_work([1.0, 2.0], [0.5])
        plat = Platform.from_speeds([1.0, 2.0, 1.0, 1.0], bandwidth=1.0)
        m1 = Mapping(app, plat, [[0], [2]])
        m2 = Mapping(app, plat, [[1], [2]])  # faster P1 on stage 0
        assert mapping_fingerprint(m1) != mapping_fingerprint(m2)

    def test_model_is_part_of_the_key(self):
        mp = make_mapping([[0], [1]])
        assert mapping_fingerprint(mp, "overlap") != mapping_fingerprint(
            mp, "strict"
        )

    def test_structure_fingerprint_ignores_times(self):
        m1 = make_mapping([[0], [1, 2]], works=[1.0, 2.0], files=[0.5])
        m2 = make_mapping([[0], [1, 2]], works=[3.0, 7.0], files=[2.5])
        assert structure_fingerprint(m1, "strict") == structure_fingerprint(
            m2, "strict"
        )


class TestEvaluateMany:
    def test_parallel_bit_identical_to_serial(self):
        app, platform = _instance(0)
        batch = [
            random_mapping(app, platform, np.random.default_rng(k),
                           max_replication=3)
            for k in range(8)
        ]
        serial = evaluate_many(batch, solver="deterministic", n_jobs=1)
        parallel = evaluate_many(batch, solver="deterministic", n_jobs=2)
        assert serial == parallel

    def test_parallel_bit_identical_simulation(self):
        app, platform = _instance(1)
        batch = [
            random_mapping(app, platform, np.random.default_rng(k),
                           max_replication=3)
            for k in range(4)
        ]
        kwargs = dict(solver="simulation", n_datasets=100, seed=3)
        assert evaluate_many(batch, n_jobs=1, **kwargs) == evaluate_many(
            batch, n_jobs=2, **kwargs
        )

    def test_duplicates_are_evaluated_once(self):
        mp = make_mapping([[0], [1, 2]], seed=2)
        cache = StructureCache()
        values = evaluate_many([mp, mp, mp], solver="deterministic", cache=cache)
        assert values[0] == values[1] == values[2]
        assert cache.misses == 1 and cache.hits == 2

    def test_memo_persists_across_calls(self):
        mp = make_mapping([[0], [1, 2]], seed=2)
        cache = StructureCache()
        [first] = evaluate_many([mp], solver="deterministic", cache=cache)
        [again] = evaluate_many([mp], solver="deterministic", cache=cache)
        assert first == again
        assert cache.stats()["hits"] == 1

    def test_disabled_cache_reevaluates(self):
        mp = make_mapping([[0], [1, 2]], seed=2)
        cache = StructureCache(enabled=False)
        evaluate_many([mp, mp], solver="deterministic", cache=cache)
        assert cache.misses == 2 and cache.hits == 0

    def test_solver_options_partition_the_memo(self):
        mp = make_mapping([[0], [1, 2]], seed=5)
        cache = StructureCache()
        a = evaluate(mp, solver="deterministic", cache=cache)
        b = evaluate(
            mp, solver="deterministic", semantics="bottleneck", cache=cache
        )
        assert cache.misses == 2  # different options, different entries
        assert a >= b  # unbounded >= bottleneck composition


class TestStructureSharing:
    def test_strict_reachability_shared_across_same_topology(self):
        cache = StructureCache()
        batch = [
            make_mapping([[0], [1, 2]], seed=s) for s in range(4)
        ]  # same replication, different speeds
        values = evaluate_many(
            batch, solver="exponential", model="strict", cache=cache
        )
        assert cache.stats()["reachability"] == 1
        assert cache.stats()["nets"] == 4
        uncached = [
            exponential_throughput(mp, "strict") for mp in batch
        ]
        assert values == uncached

    def test_bounds_share_one_net(self):
        mp = make_mapping([[0], [1, 2]], seed=3)
        cache = StructureCache()
        get_solver("bounds").bounds(mp, "strict", cache=cache)
        assert cache.stats()["nets"] == 1
        assert cache.stats()["reachability"] == 1


# ----------------------------------------------------------------------
# Structured failure records (evaluate_tasks on_error="record")
# ----------------------------------------------------------------------
class _ExplodingSolver:
    """A picklable solver whose solve always raises (worker-safe)."""

    name = "exploding"

    def solve(self, mapping, model="overlap", *, cache=None):
        raise RuntimeError("kaboom")


class TestTaskFailureRecords:
    def test_default_mode_still_raises(self):
        mp = single_communication(2, 2)
        with pytest.raises(RuntimeError, match="kaboom"):
            evaluate_tasks([(_ExplodingSolver(), mp, "overlap")])

    def test_record_mode_isolates_the_poisoned_task(self):
        mp = single_communication(2, 2)
        tasks = [
            ("deterministic", mp, "overlap"),
            (_ExplodingSolver(), mp, "overlap"),
            ("deterministic", single_communication(2, 3), "overlap"),
        ]
        values = evaluate_tasks(tasks, on_error="record")
        assert values[0] == evaluate(mp, solver="deterministic")
        assert isinstance(values[1], TaskFailure)
        assert (values[1].error, values[1].message) == ("RuntimeError", "kaboom")
        assert values[2] == evaluate(
            single_communication(2, 3), solver="deterministic"
        )

    def test_record_mode_covers_solver_resolution(self):
        mp = single_communication(2, 2)
        values = evaluate_tasks(
            [("warp_drive", mp, "overlap"), ("deterministic", mp, "overlap")],
            on_error="record",
        )
        assert isinstance(values[0], TaskFailure)
        assert values[0].error == "UnsupportedModelError"
        assert values[1] == evaluate(mp, solver="deterministic")
        with pytest.raises(UnsupportedModelError):
            evaluate_tasks([("warp_drive", mp, "overlap")])

    def test_failures_are_not_memoized(self):
        mp = single_communication(2, 2)
        cache = StructureCache()
        first = evaluate_tasks(
            [(_ExplodingSolver(), mp, "overlap")], cache=cache, on_error="record"
        )
        assert isinstance(first[0], TaskFailure)
        assert cache.misses == 0  # a failure is not a score
        # The same cache retries the computation instead of replaying it.
        again = evaluate_tasks(
            [(_ExplodingSolver(), mp, "overlap")], cache=cache, on_error="record"
        )
        assert isinstance(again[0], TaskFailure)
        assert cache.hits == 0

    def test_in_batch_duplicates_share_the_failure_without_hit_counts(self):
        mp = single_communication(2, 2)
        cache = StructureCache()
        values = evaluate_tasks(
            [(_ExplodingSolver(), mp, "overlap")] * 3,
            cache=cache,
            on_error="record",
        )
        assert all(isinstance(v, TaskFailure) for v in values)
        assert cache.hits == 0 and cache.misses == 0

    def test_record_mode_parallel_matches_serial(self):
        mappings = [single_communication(u, 2) for u in (2, 3, 4)]
        tasks = [
            ("deterministic", mappings[0], "overlap"),
            (_ExplodingSolver(), mappings[1], "overlap"),
            ("deterministic", mappings[2], "overlap"),
        ]
        serial = evaluate_tasks(tasks, n_jobs=1, on_error="record")
        parallel = evaluate_tasks(tasks, n_jobs=2, on_error="record")
        assert serial == parallel

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            evaluate_tasks([], on_error="ignore")

    def test_to_dict_round_trip(self):
        failure = TaskFailure(error="ValueError", message="nope")
        assert failure.to_dict() == {"error": "ValueError", "message": "nope"}


# ----------------------------------------------------------------------
# LRU-bounded structure cache
# ----------------------------------------------------------------------
class TestStructureCacheLRU:
    def test_scores_evict_least_recently_used(self):
        cache = StructureCache(max_entries=2)
        cache.store(("a",), 1.0)
        cache.store(("b",), 2.0)
        assert cache.lookup(("a",)) == 1.0  # refresh a: b is now LRU
        cache.store(("c",), 3.0)  # evicts b
        assert cache.evictions == 1
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 1.0
        assert cache.lookup(("c",)) == 3.0
        assert cache.stats()["scores"] == 2

    def test_nets_and_reachability_bounded(self):
        cache = StructureCache(max_entries=2)
        batch = [make_mapping([[0], [1, 2]], seed=s) for s in range(4)]
        evaluate_many(batch, solver="exponential", model="strict", cache=cache)
        stats = cache.stats()
        assert stats["nets"] <= 2
        assert stats["reachability"] <= 2
        assert stats["evictions"] >= 2  # 4 distinct nets through a 2-slot map

    def test_eviction_changes_no_values(self):
        batch = [make_mapping([[0], [1, 2]], seed=s) for s in range(4)]
        bounded = evaluate_many(
            batch,
            solver="exponential",
            model="strict",
            cache=StructureCache(max_entries=1),
        )
        unbounded = evaluate_many(
            batch, solver="exponential", model="strict", cache=StructureCache()
        )
        assert bounded == unbounded

    def test_unbounded_default_never_evicts(self):
        cache = StructureCache()
        for i in range(100):
            cache.store((i,), float(i))
        assert cache.evictions == 0
        assert cache.stats()["scores"] == 100

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            StructureCache(max_entries=0)
