"""Smoke tests for the command-line driver (`python -m repro.cli`).

Every subcommand is exercised through ``main(argv)``, asserting exit
codes and — for the campaign family — the files it leaves behind.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import get_preset
from repro.cli import main


class TestList:
    def test_lists_experiments_and_presets(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "campaign presets" in out
        assert "smoke" in out


class TestSolve:
    def test_deterministic(self, capsys):
        assert main(["solve", "example_a", "--solver", "deterministic"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["solve", "example_a", "--solver", "bounds"]) == 0
        out = capsys.readouterr().out
        assert "lower (exp)" in out and "upper (cst)" in out

    def test_unknown_system_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["solve", "atlantis"])
        assert exc.value.code == 2


class TestSearch:
    def test_small_search(self, capsys):
        assert main(
            ["search", "--stages", "2", "--processors", "3",
             "--restarts", "1", "--seed", "0"]
        ) == 0
        assert "best" in capsys.readouterr().out


class TestBenchGuard:
    def test_refuses_existing_output_without_force(self, tmp_path):
        target = tmp_path / "BENCH.json"
        target.write_text("{}\n")
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--quick", "--output", str(target)])
        assert exc.value.code == 2

    def test_workloads_filter_runs_subset(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        assert main(
            ["bench", "--quick", "--workloads", "maxplus",
             "--output", str(target)]
        ) == 0
        capsys.readouterr()
        report = json.loads(target.read_text())
        assert list(report["engines"]) == ["maxplus.matmul"]
        assert report["speedups"] == {}
        assert report["meta"]["workloads"] == ["maxplus"]

    def test_workloads_filter_rejects_no_match(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                ["bench", "--quick", "--workloads", "nonesuch",
                 "--output", str(tmp_path / "b.json")]
            )
        assert exc.value.code == 2


class TestCampaign:
    def test_run_status_report_resume(self, tmp_path, capsys):
        store = tmp_path / "campaign.jsonl"

        # status before any run: everything remaining, exit code 1.
        assert main(
            ["campaign", "status", "--preset", "smoke", "--store", str(store)]
        ) == 1
        capsys.readouterr()

        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "executed   : 4" in out
        assert store.exists()
        assert len(store.read_text().splitlines()) == 4

        # complete: status exits 0.
        assert main(
            ["campaign", "status", "--preset", "smoke", "--store", str(store)]
        ) == 0
        assert "remaining  : 0" in capsys.readouterr().out

        # re-run without --resume is refused with exit code 2.
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "run", "--preset", "smoke", "--store", str(store)])
        assert exc.value.code == 2
        capsys.readouterr()

        # --resume executes nothing.
        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(store),
             "--resume"]
        ) == 0
        assert "executed   : 0" in capsys.readouterr().out

        # report renders a table and writes the JSON dump.
        report_json = tmp_path / "report.json"
        assert main(
            ["campaign", "report", "--store", str(store),
             "--json", str(report_json)]
        ) == 0
        assert "smoke/pattern" in capsys.readouterr().out
        payload = json.loads(report_json.read_text())
        assert payload[0]["name"] == "smoke/pattern"
        assert len(payload[0]["rows"]) == 4

    def test_report_json_stdout_is_pure_json(self, tmp_path, capsys):
        store = tmp_path / "c.jsonl"
        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "report", "--store", str(store), "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # nothing but JSON on stdout
        assert payload[0]["name"] == "smoke/pattern"

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(get_preset("smoke").to_json())
        store = tmp_path / "from_file.jsonl"
        assert main(
            ["campaign", "run", "--spec", str(spec_file),
             "--store", str(store), "--n-jobs", "2"]
        ) == 0
        assert "executed   : 4" in capsys.readouterr().out
        assert len(store.read_text().splitlines()) == 4

    def test_requires_exactly_one_of_preset_or_spec(self, tmp_path):
        store = str(tmp_path / "s.jsonl")
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "run", "--store", store])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", "--preset", "smoke", "--spec", "x.json",
                 "--store", store]
            )
        assert exc.value.code == 2

    def test_bad_spec_file_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", "--spec", str(bad),
                 "--store", str(tmp_path / "s.jsonl")]
            )
        assert exc.value.code == 2

    def test_report_on_empty_store(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        out_json = tmp_path / "empty_report.json"
        assert main(
            ["campaign", "report", "--store", str(empty),
             "--json", str(out_json)]
        ) == 0
        assert "no campaign results" in capsys.readouterr().out
        # The JSON artifact exists even for an empty store.
        assert json.loads(out_json.read_text()) == []

    def test_report_on_missing_store_exits_2(self, tmp_path):
        # A nonexistent path can only be a typo for `report`.
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "report",
                 "--store", str(tmp_path / "nothing.jsonl")]
            )
        assert exc.value.code == 2

    def test_store_path_is_directory_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "report", "--store", str(tmp_path)])
        assert exc.value.code == 2

    def test_invalid_n_jobs_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", "--preset", "smoke",
                 "--store", str(tmp_path / "s.jsonl"), "--n-jobs", "0"]
            )
        assert exc.value.code == 2

    def test_unknown_named_system_in_spec_exits_2(self, tmp_path):
        from repro.campaign import get_preset

        data = get_preset("smoke").to_dict()
        data["scenarios"][0]["system"] = {
            "kind": "named", "params": {"name": "atlantis"},
        }
        bad = tmp_path / "bad_system.json"
        bad.write_text(json.dumps(data))
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", "--spec", str(bad),
                 "--store", str(tmp_path / "s.jsonl")]
            )
        assert exc.value.code == 2

    def test_seed_override_changes_simulation_values(self, tmp_path):
        spec_file = tmp_path / "sim.json"
        from repro.campaign import CampaignSpec, ScenarioSpec, SystemSpec

        spec = CampaignSpec(
            name="sim",
            seed=1,
            scenarios=[
                ScenarioSpec(
                    name="sim/one",
                    system=SystemSpec(
                        "uniform_chain", {"replication": [1, 2], "work": 1.0}
                    ),
                    solver="simulation",
                    options={"n_datasets": 30},
                ),
            ],
        )
        spec_file.write_text(spec.to_json())
        s1, s2 = tmp_path / "s1.jsonl", tmp_path / "s2.jsonl"
        assert main(
            ["campaign", "run", "--spec", str(spec_file), "--store", str(s1)]
        ) == 0
        assert main(
            ["campaign", "run", "--spec", str(spec_file), "--store", str(s2),
             "--seed", "99"]
        ) == 0
        (r1,) = [json.loads(line) for line in s1.read_text().splitlines()]
        (r2,) = [json.loads(line) for line in s2.read_text().splitlines()]
        # Stochastic units are seed-keyed: a different base seed is a
        # different unit (so stores from different seeds never conflate).
        assert r1["fingerprint"] != r2["fingerprint"]
        assert r1["seed"] != r2["seed"]


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestServiceCommands:
    @pytest.fixture
    def served_cli(self, tmp_path):
        """`repro.cli serve` running on a background thread.

        Serves with an ephemeral port, a disk cache and a ready-file —
        exactly the operator setup the CI smoke job scripts — and
        yields the bound port.
        """
        import json as json_mod
        import threading
        import time

        ready = tmp_path / "ready.json"
        args = [
            "serve", "--port", "0",
            "--cache", str(tmp_path / "svc_cache.jsonl"),
            "--ready-file", str(ready),
            "--max-entries", "64",
        ]
        thread = threading.Thread(target=main, args=(args,), daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "server never wrote its ready file"
        port = json_mod.loads(ready.read_text())["port"]
        yield port
        from repro.exceptions import ServiceError
        from repro.service import ServiceClient

        try:
            with ServiceClient(port=port, timeout=2.0) as client:
                client.shutdown()
        except ServiceError:
            pass  # the test already shut it down
        thread.join(timeout=5)

    def test_ping_exit_codes(self, served_cli, capsys):
        port = served_cli
        assert main(["ping", "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "version" in out and "evaluator" in out
        # Contract: 1 (not a usage error) when nothing listens.
        assert main(["ping", "--port", "1", "--timeout", "0.5"]) == 1

    def test_ping_json_stdout_is_pure_json(self, served_cli, capsys):
        port = served_cli
        assert main(["ping", "--port", str(port), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)  # nothing but JSON
        assert payload["counters"]["structure_cache"]["evictions"] == 0
        assert payload["counters"]["requests"]["units"] == 0
        assert payload["version"]

    def test_submit_twice_second_pass_all_cache_hits(self, served_cli, capsys):
        port = served_cli
        assert main(["submit", "--port", str(port), "--preset", "smoke"]) == 0
        first = capsys.readouterr().out
        assert "executed   : 4" in first
        assert main(["submit", "--port", str(port), "--preset", "smoke"]) == 0
        second = capsys.readouterr().out
        assert "executed   : 0" in second
        assert "cache hits : 4" in second
        assert "failures   : 0" in second

    def test_submit_single_system(self, served_cli, capsys):
        port = served_cli
        assert main(
            ["submit", "--port", str(port), "--system", "example_a"]
        ) == 0
        assert "example_a" in capsys.readouterr().out

    def test_submit_needs_exactly_one_work_source(self, served_cli, tmp_path):
        port = served_cli
        with pytest.raises(SystemExit) as exc:
            main(["submit", "--port", str(port)])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(
                ["submit", "--port", str(port), "--preset", "smoke",
                 "--system", "example_a"]
            )
        assert exc.value.code == 2

    def test_submit_unreachable_exits_1(self, capsys):
        assert main(
            ["submit", "--port", "1", "--preset", "smoke",
             "--timeout", "0.5"]
        ) == 1
        assert "submit failed" in capsys.readouterr().err

    def test_campaign_run_via_service(self, served_cli, tmp_path, capsys):
        port = served_cli
        local = tmp_path / "local.jsonl"
        via = tmp_path / "via.jsonl"
        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(local)]
        ) == 0
        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(via),
             "--via-service", f"127.0.0.1:{port}"]
        ) == 0
        assert via.read_bytes() == local.read_bytes()

    def test_campaign_run_via_bad_endpoint_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                ["campaign", "run", "--preset", "smoke",
                 "--store", str(tmp_path / "s.jsonl"),
                 "--via-service", "not-an-endpoint"]
            )
        assert exc.value.code == 2

    def test_shutdown_exit_codes(self, served_cli, capsys):
        port = served_cli
        assert main(["shutdown", "--port", str(port)]) == 0
        assert "stopped" in capsys.readouterr().out
        assert main(
            ["shutdown", "--port", "1", "--timeout", "0.5"]
        ) == 1

    def test_submit_seed_with_system_rejected(self, served_cli):
        port = served_cli
        with pytest.raises(SystemExit) as exc:
            main(
                ["submit", "--port", str(port), "--system", "example_a",
                 "--seed", "42"]
            )
        assert exc.value.code == 2

    def test_submit_chunks_large_batches(self, served_cli, capsys, monkeypatch):
        # A spec bigger than one submit chunk still scores every unit,
        # with the printed stats aggregated across the chunked frames.
        import repro.cli as cli_mod

        port = served_cli
        monkeypatch.setattr(cli_mod, "_SUBMIT_CHUNK", 3)
        assert main(["submit", "--port", str(port), "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "units      : 4" in out
        assert "executed   : 4" in out
        assert "failures   : 0" in out
        assert out.count(" : ") >= 4  # every unit's value line printed

    def test_submit_solver_with_preset_rejected(self, served_cli):
        port = served_cli
        with pytest.raises(SystemExit) as exc:
            main(
                ["submit", "--port", str(port), "--preset", "smoke",
                 "--solver", "exponential"]
            )
        assert exc.value.code == 2
