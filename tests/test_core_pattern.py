"""Tests for the u×v pattern analysis (Theorems 3/4 machinery)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    build_pattern_tpn,
    exponential_to_deterministic_ratio,
    pattern_enabling_count,
    pattern_state_count,
    pattern_throughput_deterministic,
    pattern_throughput_exponential,
    pattern_throughput_homogeneous,
)
from repro.exceptions import StructuralError
from repro.markov import tpn_throughput_exponential
from repro.petri import explore, is_live, validate
from repro.petri.analysis import is_strongly_connected


class TestCounts:
    @pytest.mark.parametrize(
        "u,v", [(1, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 5), (3, 8), (7, 9)]
    )
    def test_state_count_formula(self, u, v):
        """S(u,v) = C(u+v-1, u-1)·v (paper, proof of Theorem 3)."""
        expected = math.comb(u + v - 1, u - 1) * v
        assert pattern_state_count(u, v) == expected

    @pytest.mark.parametrize("u,v", [(1, 2), (2, 3), (3, 4), (2, 5)])
    def test_reachable_markings_match_formula(self, u, v):
        """The Young-diagram count is the *actual* reachable state count."""
        pattern = CommPattern.homogeneous(u, v, 1.0)
        tpn = build_pattern_tpn(pattern)
        reach = explore(tpn)
        assert reach.n_states == pattern_state_count(u, v)

    @pytest.mark.parametrize("u,v", [(1, 2), (2, 3), (3, 4)])
    def test_enabling_count(self, u, v):
        """S'(u,v) markings enable each fixed transition (Theorem 4)."""
        pattern = CommPattern.homogeneous(u, v, 1.0)
        tpn = build_pattern_tpn(pattern)
        reach = explore(tpn)
        for t in range(tpn.n_transitions):
            enabling = sum(
                1
                for moves in reach.arcs
                if any(tt == t for tt, _ in moves)
            )
            assert enabling == pattern_enabling_count(u, v)

    def test_sprime_relation(self):
        """S'(u,v) = S(u,v) / (u+v-1) (paper, proof of Theorem 4)."""
        for u, v in [(2, 3), (3, 4), (4, 5), (5, 6)]:
            assert pattern_enabling_count(u, v) * (u + v - 1) == pattern_state_count(
                u, v
            )

    def test_non_coprime_rejected(self):
        with pytest.raises(StructuralError):
            pattern_state_count(2, 4)

    def test_example_c_pattern(self):
        """Example C's second communication: 7×9 pattern."""
        assert pattern_state_count(7, 9) == math.comb(15, 6) * 9


class TestPatternNet:
    def test_structure(self):
        tpn = build_pattern_tpn(CommPattern.homogeneous(2, 3, 1.0))
        assert tpn.n_transitions == 6
        validate(tpn)
        assert is_live(tpn)
        assert is_strongly_connected(tpn)

    def test_tokens(self):
        tpn = build_pattern_tpn(CommPattern.homogeneous(3, 4, 1.0))
        assert int(tpn.initial_marking().sum()) == 3 + 4

    def test_heterogeneous_means_assigned(self):
        means = tuple(float(i + 1) for i in range(6))
        tpn = build_pattern_tpn(CommPattern(2, 3, means))
        assert tuple(t.mean_time for t in tpn.transitions) == means

    def test_pattern_validation(self):
        with pytest.raises(StructuralError):
            CommPattern(2, 3, (1.0,) * 5)  # wrong count
        with pytest.raises(StructuralError):
            CommPattern(2, 3, (1.0,) * 5 + (0.0,))  # non-positive
        with pytest.raises(StructuralError):
            CommPattern.homogeneous(2, 4, 1.0)  # not coprime


class TestHomogeneousThroughput:
    @pytest.mark.parametrize("u,v", [(1, 1), (1, 3), (2, 3), (3, 4), (4, 5)])
    def test_closed_form_matches_ctmc(self, u, v):
        """Theorem 4's formula equals the exact pattern CTMC value."""
        lam = 0.8
        closed = pattern_throughput_homogeneous(u, v, lam)
        tpn = build_pattern_tpn(CommPattern.homogeneous(u, v, 1.0 / lam))
        ctmc = tpn_throughput_exponential(
            tpn, counted=list(range(tpn.n_transitions))
        )
        assert closed == pytest.approx(ctmc, rel=1e-9)

    def test_formula_values(self):
        assert pattern_throughput_homogeneous(1, 1, 2.0) == pytest.approx(2.0)
        assert pattern_throughput_homogeneous(2, 3, 1.0) == pytest.approx(1.5)
        assert pattern_throughput_homogeneous(5, 7, 1.0) == pytest.approx(35 / 11)

    @pytest.mark.parametrize("u,v", [(2, 3), (3, 5), (4, 7)])
    def test_deterministic_is_min_uv(self, u, v):
        """Constant times: inner throughput = min(u,v)·λ (Section 6 remark)."""
        d = 2.0
        got = pattern_throughput_deterministic(CommPattern.homogeneous(u, v, d))
        assert got == pytest.approx(min(u, v) / d)

    @pytest.mark.parametrize("u,v", [(2, 3), (3, 4), (2, 7), (5, 6)])
    def test_fig15_ratio(self, u, v):
        """ρ_exp/ρ_det = max(u,v)/(u+v-1) ∈ (1/2, 1]."""
        lam = 1.0
        exp = pattern_throughput_homogeneous(u, v, lam)
        det = min(u, v) * lam
        ratio = exponential_to_deterministic_ratio(u, v)
        assert exp / det == pytest.approx(ratio)
        assert 0.5 < ratio <= 1.0

    def test_uniform_stationary_distribution(self):
        """Homogeneous rates ⇒ uniform stationary law (Theorem 4 proof)."""
        from repro.markov import ctmc_from_tpn

        tpn = build_pattern_tpn(CommPattern.homogeneous(2, 3, 1.0))
        chain, reach = ctmc_from_tpn(tpn)
        pi = chain.stationary_distribution()
        assert np.allclose(pi, 1.0 / reach.n_states, atol=1e-10)


class TestHeterogeneousThroughput:
    def test_dispatches_to_closed_form_when_homogeneous(self):
        p = CommPattern.homogeneous(2, 3, 0.5)
        assert pattern_throughput_exponential(p) == pytest.approx(
            pattern_throughput_homogeneous(2, 3, 2.0)
        )

    def test_heterogeneous_below_best_homogeneous(self):
        """Slower links can only hurt: ρ_het <= ρ_hom(fastest)."""
        means = (1.0, 1.0, 1.0, 1.0, 1.0, 4.0)
        het = pattern_throughput_exponential(CommPattern(2, 3, means))
        hom_fast = pattern_throughput_homogeneous(2, 3, 1.0)
        hom_slow = pattern_throughput_homogeneous(2, 3, 0.25)
        assert hom_slow < het < hom_fast

    def test_heterogeneous_matches_des(self):
        """Pattern CTMC against the event-graph simulator."""
        from repro.sim.tpn_sim import simulate_tpn

        rng = np.random.default_rng(4)
        means = tuple(rng.uniform(0.5, 2.0, 6).tolist())
        pattern = CommPattern(2, 3, means)
        exact = pattern_throughput_exponential(pattern)
        tpn = build_pattern_tpn(pattern)
        sim = simulate_tpn(tpn, n_datasets=60_000, law="exponential", seed=5)
        assert sim.steady_state_throughput() * tpn.n_transitions / tpn.n_transitions
        # Completions counted on all transitions? The DES counts the last
        # column = all pattern transitions live in column 0, so the DES
        # throughput is already the total transfer rate.
        assert sim.steady_state_throughput() == pytest.approx(exact, rel=0.03)

    def test_deterministic_heterogeneous_mixed_cycles(self):
        """The pattern MCR can exceed every pure port cycle.

        This is the single-communication incarnation of "no critical
        resource": a cycle mixing sender and receiver chains dominates.
        """
        # Construct a 2x3 pattern with adversarial alternating times.
        means = (10.0, 1.0, 1.0, 1.0, 1.0, 10.0)
        pattern = CommPattern(2, 3, means)
        rho = pattern_throughput_deterministic(pattern)
        # Port-cycle-only bound:
        sender = [sum(means[r] for r in range(6) if r % 2 == s) for s in range(2)]
        receiver = [sum(means[r] for r in range(6) if r % 3 == t) for t in range(3)]
        port_period = max(sender + receiver)
        port_bound = 6 / port_period
        assert rho <= port_bound + 1e-12
