"""Tests for the StreamingSystem façade and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Application,
    ExecutionModel,
    Mapping,
    Platform,
    StreamingSystem,
)
from repro.mapping.examples import single_communication

from tests.conftest import make_mapping


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        app = Application.from_work([4e9, 8e9, 5e9], files=[1e8, 2e8])
        plat = Platform.homogeneous(6, speed=2e9, bandwidth=1e9)
        mp = Mapping(app, plat, teams=[[0], [1, 2, 3], [4, 5]])
        sys_ = StreamingSystem(mp, model="overlap")
        det = sys_.deterministic_throughput()
        exp = sys_.exponential_throughput()
        assert 0 < exp <= det


class TestFacade:
    def test_model_coercion(self):
        mp = make_mapping([[0]])
        assert StreamingSystem(mp, "strict").model is ExecutionModel.STRICT
        assert (
            StreamingSystem(mp, ExecutionModel.OVERLAP).model
            is ExecutionModel.OVERLAP
        )
        with pytest.raises(ValueError):
            StreamingSystem(mp, "bogus")

    def test_n_paths(self):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]])
        assert StreamingSystem(mp).n_paths == 6

    def test_build_tpn_respects_model(self):
        from repro.petri import is_feed_forward

        mp = make_mapping([[0], [1, 2]])
        assert is_feed_forward(StreamingSystem(mp, "overlap").build_tpn())
        assert not is_feed_forward(StreamingSystem(mp, "strict").build_tpn())

    def test_bounds_and_mct(self):
        mp = single_communication(2, 3)
        s = StreamingSystem(mp, "overlap")
        b = s.throughput_bounds()
        assert b.lower == pytest.approx(1.5) and b.upper == pytest.approx(2.0)
        assert s.max_cycle_time() > 0

    def test_critical_resource_report(self):
        mp = make_mapping([[0], [1]], works=[1.0, 9.0], files=[1.0])
        rep = StreamingSystem(mp, "overlap").critical_resource_report()
        assert rep.critical_proc == 1
        assert rep.has_critical_resource()

    def test_simulate_engines_agree(self):
        mp = single_communication(2, 3)
        s = StreamingSystem(mp, "overlap")
        a = s.simulate(n_datasets=20_000, law="exponential", seed=1)
        b = s.simulate(n_datasets=8_000, law="exponential", seed=1, engine="tpn")
        assert a.steady_state_throughput() == pytest.approx(
            b.steady_state_throughput(), rel=0.05
        )

    def test_simulate_law_params(self):
        mp = single_communication(2, 3)
        s = StreamingSystem(mp, "overlap")
        sim = s.simulate(
            n_datasets=5000, law="gamma", law_params={"shape": 4.0}, seed=2
        )
        assert sim.n_processed == 5000

    def test_simulate_bad_engine(self):
        mp = make_mapping([[0]])
        with pytest.raises(ValueError):
            StreamingSystem(mp).simulate(n_datasets=10, engine="???")

    def test_exponential_method_passthrough(self):
        mp = make_mapping([[0], [1, 2]])
        s = StreamingSystem(mp, "overlap")
        assert s.exponential_throughput(method="scc") == pytest.approx(
            s.exponential_throughput(), rel=1e-9
        )
