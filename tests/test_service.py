"""Tests for the evaluation service (`repro.service`).

Covers the protocol framing, the tier-2 disk cache's crash safety
(torn tails, duplicate fingerprints, concurrent writers — mirroring
the campaign store suite), the coalescing queue, the engine (including
the two PR acceptance proofs: N concurrent identical submissions → 1
evaluator run; a restarted server answers a repeat submit with 0
evaluator runs), the socket server/client round trip, and the campaign
runner's ``--via-service`` byte-identity.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.campaign import (
    ResultStore,
    expand,
    get_preset,
    run_campaign,
    unit_task_payload,
)
from repro.evaluate import TaskFailure, evaluate, get_solver
from repro.exceptions import ServiceError
from repro.mapping.examples import named_system, single_communication
from repro.service import (
    CoalescingQueue,
    DiskScoreCache,
    EvaluationEngine,
    ServiceClient,
    normalize_task,
    parse_endpoint,
    score_digest,
    serve_in_thread,
)
from repro.service.protocol import error_reply, recv_frame, send_frame


def smoke_tasks() -> list[dict]:
    return [unit_task_payload(u) for u in expand(get_preset("smoke"))]


def pattern_task(u: int = 2, v: int = 2, solver: str = "deterministic") -> dict:
    return {
        "system": {
            "kind": "single_communication",
            "params": {"u": u, "v": v, "comm_time": 1.0},
        },
        "solver": solver,
        "model": "overlap",
        "options": {},
    }


@pytest.fixture
def live_server(tmp_path):
    """A served engine with a disk cache; yields (engine, host, port)."""
    engine = EvaluationEngine(disk=DiskScoreCache(tmp_path / "svc.jsonl"))
    server, thread = serve_in_thread(engine)
    host, port = server.endpoint
    yield engine, host, port
    server.shutdown()
    server.server_close()
    engine.close()
    thread.join(timeout=5)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        buf = io.BytesIO()
        send_frame(buf, {"op": "ping", "x": [1, 2.5, "é"]})
        buf.seek(0)
        assert recv_frame(buf) == {"op": "ping", "x": [1, 2.5, "é"]}
        assert recv_frame(buf) is None  # clean EOF

    def test_rejects_non_object_and_garbage(self):
        assert recv_frame(io.BytesIO(b"")) is None
        with pytest.raises(ServiceError, match="JSON"):
            recv_frame(io.BytesIO(b"not json\n"))
        with pytest.raises(ServiceError, match="object"):
            recv_frame(io.BytesIO(b"[1, 2]\n"))
        with pytest.raises(ServiceError, match="mid-frame"):
            recv_frame(io.BytesIO(b'{"op": "pi'))  # peer died mid-write

    def test_error_reply_shape(self):
        reply = error_reply("boom")
        assert reply == {
            "ok": False, "error": "boom", "error_type": "ServiceError",
        }

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7781") == ("127.0.0.1", 7781)
        assert parse_endpoint("7781") == ("127.0.0.1", 7781)
        assert parse_endpoint(":7781") == ("127.0.0.1", 7781)
        assert parse_endpoint("example.org:80") == ("example.org", 80)
        with pytest.raises(ServiceError, match="endpoint"):
            parse_endpoint("nope")
        with pytest.raises(ServiceError, match="range"):
            parse_endpoint("127.0.0.1:99999")
        # IPv6 literals are rejected loudly, never misparsed.
        with pytest.raises(ServiceError, match="IPv6"):
            parse_endpoint("::1")
        with pytest.raises(ServiceError, match="IPv6"):
            parse_endpoint("[::1]:7781")


# ----------------------------------------------------------------------
# Tier-2 disk cache (crash safety mirrors the campaign store suite)
# ----------------------------------------------------------------------
class TestDiskScoreCache:
    def test_put_get_and_counters(self, tmp_path):
        cache = DiskScoreCache(tmp_path / "scores.jsonl")
        assert cache.get("aa") is None
        assert cache.put("aa", 0.25, solver="deterministic")
        assert cache.get("aa") == 0.25
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "dropped_lines": 0,
        }

    def test_values_survive_reload_bit_identical(self, tmp_path):
        path = tmp_path / "scores.jsonl"
        value = 0.1 + 0.2  # not exactly representable in decimal
        DiskScoreCache(path).put("aa", value)
        assert DiskScoreCache(path).get("aa") == value

    def test_torn_trailing_line_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "scores.jsonl"
        cache = DiskScoreCache(path)
        cache.put("aa", 1.0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "bb", "val')  # killed mid-write
        reloaded = DiskScoreCache(path)
        assert len(reloaded) == 1
        assert reloaded.dropped_lines == 1
        assert reloaded.get("bb") is None
        # Still appendable: the torn tail is truncated away on write.
        assert reloaded.put("bb", 2.0)
        final = DiskScoreCache(path)
        assert len(final) == 2
        assert final.get("bb") == 2.0

    def test_duplicate_fingerprints_first_wins(self, tmp_path):
        path = tmp_path / "scores.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "aa", "value": 1.0}\n')
            fh.write('{"fingerprint": "aa", "value": 2.0}\n')
        cache = DiskScoreCache(path)
        assert len(cache) == 1
        assert cache.dropped_lines == 1
        assert cache.get("aa") == 1.0

    def test_concurrent_writers_dedup_on_reload(self, tmp_path):
        # Two cache instances on one path (two servers racing on the
        # same file): both append the same digest, the duplicate line is
        # dropped on the next load and the first value wins.
        path = tmp_path / "scores.jsonl"
        a = DiskScoreCache(path)
        b = DiskScoreCache(path)  # loaded before a's write: empty view
        assert a.put("aa", 1.0)
        assert b.put("aa", 2.0)  # b cannot see a's record
        assert len(path.read_text().splitlines()) == 2
        merged = DiskScoreCache(path)
        assert len(merged) == 1
        assert merged.dropped_lines == 1
        assert merged.get("aa") == 1.0

    def test_put_same_digest_twice_is_noop(self, tmp_path):
        cache = DiskScoreCache(tmp_path / "scores.jsonl")
        assert cache.put("aa", 1.0)
        assert not cache.put("aa", 9.0)
        assert cache.get("aa") == 1.0
        assert len(cache) == 1


# ----------------------------------------------------------------------
# Score digests
# ----------------------------------------------------------------------
class TestScoreDigest:
    def test_digest_separates_score_relevant_differences(self):
        mp = single_communication(2, 3)
        det = get_solver("deterministic")
        base = score_digest(det, mp, "overlap")
        assert base == score_digest(det, mp, "overlap")
        assert base != score_digest(det, mp, "strict")
        assert base != score_digest(get_solver("exponential"), mp, "overlap")
        assert base != score_digest(
            get_solver("deterministic", max_states=10), mp, "overlap"
        )
        assert base != score_digest(det, single_communication(3, 2), "overlap")

    def test_digest_ignores_processor_identities(self):
        # Same canonicalization as the in-memory memo: relabelled
        # platforms are throughput-isomorphic, hence one cache line.
        from repro.application.chain import Application
        from repro.mapping.mapping import Mapping
        from repro.platform.topology import Platform

        app = Application.from_work([1.0, 2.0], [0.5])
        plat = Platform.homogeneous(4, 2.0, 1.0)
        det = get_solver("deterministic")
        a = Mapping(app, plat, [[0], [1, 2]])
        b = Mapping(app, plat, [[3], [2, 0]])
        assert score_digest(det, a, "overlap") == score_digest(det, b, "overlap")


# ----------------------------------------------------------------------
# Coalescing queue
# ----------------------------------------------------------------------
class TestCoalescingQueue:
    def test_single_flight_counters(self):
        queue = CoalescingQueue()
        fut, leads = queue.claim("k")
        assert leads
        started = threading.Event()
        follower_values = []

        def follow():
            f, lead = queue.claim("k")
            assert not lead
            started.set()
            follower_values.append(f.result(timeout=5))

        t = threading.Thread(target=follow)
        t.start()
        started.wait(timeout=5)
        queue.resolve("k", fut, 42.0)
        t.join(timeout=5)
        assert follower_values == [42.0]
        assert queue.stats() == {"leads": 1, "coalesced": 1, "in_flight": 0}

    def test_resolved_key_starts_fresh_flight(self):
        queue = CoalescingQueue()
        fut, _ = queue.claim("k")
        queue.resolve("k", fut, 1.0)
        fut2, leads = queue.claim("k")
        assert leads  # not coalesced onto the finished flight
        assert fut2 is not fut

    def test_failure_values_propagate_to_followers(self):
        queue = CoalescingQueue()
        fut, _ = queue.claim("k")
        follower, leads = queue.claim("k")
        assert not leads
        failure = TaskFailure(error="StateSpaceLimitError", message="boom")
        queue.resolve("k", fut, failure)
        assert follower.result(timeout=5) is failure


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestEngine:
    def test_values_match_direct_evaluate(self):
        engine = EvaluationEngine()
        results, stats = engine.run_batch(smoke_tasks())
        expected = [
            evaluate(
                single_communication(t["system"]["params"]["u"],
                                     t["system"]["params"]["v"],
                                     comm_time=1.0),
                solver="deterministic",
            )
            for t in smoke_tasks()
        ]
        assert results == expected
        assert stats["executed"] == 4
        assert stats["failures"] == 0

    def test_poisoned_task_is_isolated(self):
        engine = EvaluationEngine()
        poison = {
            "system": {"kind": "named", "params": {"name": "atlantis"}},
            "solver": "deterministic",
        }
        results, stats = engine.run_batch([poison, pattern_task()])
        assert isinstance(results[0], TaskFailure)
        assert results[0].error == "CampaignError"
        assert results[1] == evaluate(
            single_communication(2, 2, comm_time=1.0), solver="deterministic"
        )
        assert stats["failures"] == 1
        assert engine.failures == 1

    def test_bad_solver_options_recorded_not_raised(self):
        engine = EvaluationEngine()
        bad = dict(pattern_task(), options={"warp_speed": 9})
        (result,), stats = engine.run_batch([bad])
        assert isinstance(result, TaskFailure)
        assert "warp_speed" in result.message
        assert stats["executed"] == 0

    def test_memo_tier_answers_repeat_batches(self):
        engine = EvaluationEngine()
        first, _ = engine.run_batch(smoke_tasks())
        second, stats = engine.run_batch(smoke_tasks())
        assert second == first
        assert stats["executed"] == 0
        assert stats["memo_hits"] == 4

    def test_disk_tier_survives_engine_restart(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        first_engine = EvaluationEngine(disk=DiskScoreCache(path))
        first, _ = first_engine.run_batch(smoke_tasks())
        # A brand-new engine (fresh memo — the "restarted server") must
        # answer the repeat batch entirely from the disk tier.
        restarted = EvaluationEngine(disk=DiskScoreCache(path))
        second, stats = restarted.run_batch(smoke_tasks())
        assert second == first
        assert stats["executed"] == 0
        assert stats["disk_hits"] == 4
        assert restarted.executed == 0

    def test_concurrent_identical_submissions_one_evaluator_run(self):
        # Acceptance proof: N identical concurrent submissions produce
        # exactly 1 evaluator run, whichever mix of coalescing and memo
        # absorbs the followers.
        engine = EvaluationEngine()
        task = pattern_task(3, 3, solver="exponential")
        n_clients = 8
        barrier = threading.Barrier(n_clients)
        results: list = []
        lock = threading.Lock()

        def submit():
            barrier.wait()
            (value,), _stats = engine.run_batch([task])
            with lock:
                results.append(value)

        threads = [threading.Thread(target=submit) for _ in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == n_clients
        assert len(set(results)) == 1
        assert not isinstance(results[0], TaskFailure)
        assert engine.executed == 1  # the counter-asserted proof
        assert engine.queue.leads + engine.memo_hits >= 1

    def test_search_uses_shared_cache(self):
        engine = EvaluationEngine()
        out = engine.run_search(
            {"works": [1.0, 2.0], "speeds": [1.0, 1.0, 1.0], "restarts": 1}
        )
        assert set(out) == {
            "throughput", "teams", "evaluations", "cache_hits", "cache_misses",
        }
        assert engine.cache.misses == out["cache_misses"]

    def test_search_rejects_bad_params(self):
        engine = EvaluationEngine()
        with pytest.raises(ServiceError, match="works"):
            engine.run_search({"speeds": [1.0]})
        with pytest.raises(ServiceError, match="unknown search key"):
            engine.run_search(
                {"works": [1.0], "speeds": [1.0], "quantum": True}
            )

    def test_normalize_task_validation(self):
        with pytest.raises(ServiceError, match="JSON object"):
            normalize_task("nope")
        with pytest.raises(ServiceError, match="missing"):
            normalize_task({"solver": "deterministic"})
        with pytest.raises(ServiceError, match="unknown task key"):
            normalize_task(dict(pattern_task(), extra=1))
        with pytest.raises(ServiceError, match="registry name"):
            normalize_task(dict(pattern_task(), solver=3))
        solver, mapping, model = normalize_task(pattern_task(2, 3))
        assert solver.name == "deterministic"
        assert mapping.replication == (2, 3)
        assert model.value == "overlap"


# ----------------------------------------------------------------------
# Server / client round trip over a real socket
# ----------------------------------------------------------------------
class TestServerClient:
    def test_ping_reports_version_and_counters(self, live_server):
        _engine, host, port = live_server
        with ServiceClient(host, port) as client:
            reply = client.ping()
        from repro import __version__

        assert reply["version"] == __version__
        assert reply["counters"]["requests"]["units"] == 0
        assert reply["counters"]["disk_cache"]["entries"] == 0

    def test_evaluate_solve_batch_search(self, live_server):
        _engine, host, port = live_server
        with ServiceClient(host, port) as client:
            value = client.evaluate(pattern_task(2, 3))
            assert value == evaluate(
                single_communication(2, 3, comm_time=1.0),
                solver="deterministic",
            )
            assert client.solve("example_a") == evaluate(
                named_system("example_a"), solver="deterministic"
            )
            values, failures, stats = client.evaluate_batch(smoke_tasks())
            assert failures == []
            assert stats["units"] == 4
            searched = client.search(
                works=[1.0, 2.0], speeds=[1.0, 1.0, 1.0], restarts=1
            )
            assert searched["throughput"] > 0

    def test_per_task_failures_cross_the_wire(self, live_server):
        _engine, host, port = live_server
        poison = {
            "system": {"kind": "named", "params": {"name": "atlantis"}},
            "solver": "deterministic",
        }
        with ServiceClient(host, port) as client:
            values, failures, stats = client.evaluate_batch(
                [poison, pattern_task()]
            )
            assert values[0] is None
            assert values[1] is not None
            assert failures[0]["index"] == 0
            assert failures[0]["error"] == "CampaignError"
            assert stats["failures"] == 1
            # A single-evaluate failure raises client-side.
            with pytest.raises(ServiceError, match="atlantis"):
                client.evaluate(poison)
            # The server survived all of it.
            assert client.ping()["counters"]["requests"]["failures"] >= 2

    def test_unknown_op_is_an_error_reply(self, live_server):
        _engine, host, port = live_server
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client.request({"op": "teleport"})
            # The connection stays usable after an error reply.
            assert client.ping()["version"]

    def test_client_reports_unreachable_server(self):
        client = ServiceClient("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()

    def test_warm_restart_answers_with_zero_evaluator_runs(self, tmp_path):
        # Acceptance proof, over real sockets: a server restarted on an
        # existing disk cache answers a repeat submit with 0 runs.
        path = tmp_path / "svc.jsonl"
        tasks = smoke_tasks()

        def one_server_pass():
            engine = EvaluationEngine(disk=DiskScoreCache(path))
            server, thread = serve_in_thread(engine)
            try:
                with ServiceClient(*server.endpoint) as client:
                    return client.evaluate_batch(tasks), engine.executed
            finally:
                server.shutdown()
                server.server_close()
                engine.close()
                thread.join(timeout=5)

        (first, _failures, stats1), executed1 = one_server_pass()
        assert executed1 == 4 and stats1["executed"] == 4
        (second, _failures2, stats2), executed2 = one_server_pass()
        assert executed2 == 0 and stats2["executed"] == 0
        assert stats2["disk_hits"] == 4
        assert second == first

    def test_shutdown_stops_the_server(self, tmp_path):
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        with ServiceClient(host, port) as client:
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
        server.server_close()
        engine.close()
        with pytest.raises(ServiceError):
            ServiceClient(host, port, timeout=0.5).ping()


# ----------------------------------------------------------------------
# Campaign execution through a running service
# ----------------------------------------------------------------------
class TestCampaignViaService:
    def test_store_byte_identical_to_local_run(self, tmp_path, live_server):
        _engine, host, port = live_server
        spec = get_preset("smoke")
        local = tmp_path / "local.jsonl"
        via = tmp_path / "via.jsonl"
        run_campaign(spec, ResultStore(local))
        with ServiceClient(host, port) as client:
            summary = run_campaign(
                spec, ResultStore(via), client=client
            )
        assert summary.executed == 4
        assert via.read_bytes() == local.read_bytes()

    def test_resume_via_service_executes_nothing(self, tmp_path, live_server):
        _engine, host, port = live_server
        spec = get_preset("smoke")
        store_path = tmp_path / "c.jsonl"
        with ServiceClient(host, port) as client:
            run_campaign(spec, ResultStore(store_path), client=client)
            summary = run_campaign(
                spec, ResultStore(store_path), client=client, resume=True
            )
        assert summary.executed == 0
        assert summary.skipped == 4

    def test_service_failure_aborts_with_campaign_error(self, tmp_path):
        from repro.exceptions import CampaignError

        spec = get_preset("smoke")
        dead = ServiceClient("127.0.0.1", 1)
        with pytest.raises(CampaignError, match="service execution failed"):
            run_campaign(spec, ResultStore(tmp_path / "c.jsonl"), client=dead)


# ----------------------------------------------------------------------
# Degradation paths (review-hardened)
# ----------------------------------------------------------------------
class TestEngineDegradation:
    def test_disk_put_failure_degrades_cache_not_answers(self, tmp_path):
        # A failing tier-2 write (disk full, store error) must neither
        # change the reply nor strand coalesced followers.
        engine = EvaluationEngine(disk=DiskScoreCache(tmp_path / "svc.jsonl"))

        def exploding_put(digest, value, **meta):
            raise OSError("disk full")

        engine.disk.put = exploding_put
        results, stats = engine.run_batch(smoke_tasks())
        assert not any(isinstance(r, TaskFailure) for r in results)
        assert engine.disk_errors == 4
        assert engine.queue.in_flight() == 0  # nothing stranded
        assert engine.status()["requests"]["disk_errors"] == 4
        # The engine keeps serving afterwards (memo answers now).
        again, stats2 = engine.run_batch(smoke_tasks())
        assert again == results
        assert stats2["executed"] == 0

    def test_solve_time_failure_counts_as_evaluator_run(self):
        # `executed` counts runs that raised mid-flight too: operators
        # must see the work that was attempted, not only what succeeded.
        engine = EvaluationEngine()
        blow_up = {
            "system": {
                "kind": "single_communication",
                "params": {"u": 2, "v": 2, "comm_time": 1.0},
            },
            "solver": "exponential",
            "model": "strict",
            "options": {"max_states": 1},
        }
        (result,), stats = engine.run_batch([blow_up])
        assert isinstance(result, TaskFailure)
        assert result.error == "StateSpaceLimitError"
        assert stats["executed"] == 1
        assert engine.executed == 1
        # Failures are not cached: a retry attempts the run again.
        (_again,), stats2 = engine.run_batch([blow_up])
        assert stats2["executed"] == 1

    def test_max_entries_with_explicit_cache_rejected(self):
        from repro.evaluate import StructureCache

        with pytest.raises(ValueError, match="max_entries"):
            EvaluationEngine(cache=StructureCache(), max_entries=10)

    def test_in_batch_duplicates_accounted_in_stats(self):
        # units == executed + disk_hits + memo_hits + coalesced for a
        # healthy batch, even when duplicates ride a run this batch led.
        engine = EvaluationEngine()
        task = pattern_task(2, 3)
        results, stats = engine.run_batch([task, task, task])
        assert len(set(results)) == 1
        assert stats["executed"] == 1
        assert stats["coalesced"] == 2
        assert stats["units"] == (
            stats["executed"] + stats["disk_hits"]
            + stats["memo_hits"] + stats["coalesced"]
        )

    def test_search_reuses_persistent_pool(self):
        # The search path shares the engine's executor: identical result
        # whether the engine is serial or pooled, and the pooled engine
        # holds exactly one executor afterwards.
        params = {
            "works": [1.0, 2.0, 3.0],
            "speeds": [1.0] * 6,
            "restarts": 1,
        }
        serial = EvaluationEngine().run_search(params)
        pooled_engine = EvaluationEngine(n_jobs=2)
        try:
            pooled = pooled_engine.run_search(params)
            assert pooled["throughput"] == serial["throughput"]
            assert pooled["teams"] == serial["teams"]
            assert pooled_engine._pool is not None
        finally:
            pooled_engine.close()


class TestShutdownDrain:
    def test_shutdown_waits_for_in_flight_batches(self, tmp_path):
        # A shutdown from client B must not discard client A's
        # mid-evaluation batch: A still gets its values.
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        slow_task = pattern_task(3, 4, solver="exponential")
        slow_task["model"] = "strict"  # ~0.3 s marking chain
        outcome: dict = {}

        def submit_slow():
            try:
                with ServiceClient(host, port) as client:
                    outcome["value"] = client.evaluate(slow_task)
            except ServiceError as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        a = threading.Thread(target=submit_slow)
        a.start()
        # Let A's request reach dispatch, then shut the server down.
        deadline = time.monotonic() + 5
        while not server._inflight and time.monotonic() < deadline:
            time.sleep(0.005)
        with ServiceClient(host, port) as client:
            client.shutdown()
        # The serve loop has stopped, but the drain barrier holds until
        # A's reply went out (the CLI waits on exactly this).
        assert server.wait_for_inflight(timeout=30)
        a.join(timeout=30)
        server.server_close()
        engine.close()
        thread.join(timeout=5)
        assert "value" in outcome, outcome.get("error")
        assert not isinstance(outcome["value"], TaskFailure)
