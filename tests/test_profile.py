"""Tests for :mod:`repro.telemetry.profile` and its service wiring.

Covers the span timer arithmetic under a :class:`ManualClock` (exact
nested self/child attribution, exception-path closure), the disabled
fast path (shared no-op span, empty snapshots, zero per-call
allocation), thread-local activation (:func:`profiling` /
:func:`profile_span`), the snapshot merge algebra, the engine
integration (phase tree root reconciles *exactly* with the batch
latency histogram sum), the ``profile`` protocol op on workers and on
an orchestrator fronting a 2-worker fleet, and the ``cli profile`` /
``cli top`` surface.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ServiceOverloaded
from repro.service import (
    EvaluationEngine,
    ServiceClient,
    local_fleet,
    serve_in_thread,
)
from repro.telemetry import ManualClock
from repro.telemetry.profile import (
    NULL_SPAN,
    Profiler,
    active_profiler,
    flatten_phases,
    merge_profile_snapshots,
    profile_span,
    profiling,
    render_profile,
)


def named_task(name: str = "example_a", solver: str = "deterministic") -> dict:
    return {
        "system": {"kind": "named", "params": {"name": name}},
        "solver": solver,
        "model": "overlap",
        "options": {},
    }


# ----------------------------------------------------------------------
# Span arithmetic under a manual clock
# ----------------------------------------------------------------------
class TestSpans:
    def test_nested_spans_exact_self_time(self):
        clk = ManualClock()
        prof = Profiler(clock=clk)
        with prof.span("a"):
            clk.advance(1.0)
            with prof.span("b"):
                clk.advance(2.0)
            clk.advance(3.0)
        snap = prof.snapshot()
        a = snap["phases"]["a"]
        assert a["calls"] == 1
        assert a["total_s"] == 6.0
        assert a["self_s"] == 4.0
        b = a["children"]["b"]
        assert b["calls"] == 1
        assert b["total_s"] == 2.0
        assert b["self_s"] == 2.0

    def test_sibling_spans_accumulate(self):
        clk = ManualClock()
        prof = Profiler(clock=clk)
        for dt in (1.0, 2.5):
            with prof.span("phase"):
                clk.advance(dt)
        node = prof.snapshot()["phases"]["phase"]
        assert node["calls"] == 2
        assert node["total_s"] == 3.5

    def test_exception_still_closes_span(self):
        clk = ManualClock()
        prof = Profiler(clock=clk)
        with pytest.raises(ValueError, match="boom"):
            with prof.span("risky"):
                clk.advance(1.5)
                raise ValueError("boom")
        node = prof.snapshot()["phases"]["risky"]
        assert node["calls"] == 1
        assert node["total_s"] == 1.5
        # The path unwound: a fresh span is a root again.
        with prof.span("after"):
            clk.advance(0.5)
        assert prof.snapshot()["phases"]["after"]["total_s"] == 0.5

    def test_record_creates_structural_parents_without_calls(self):
        prof = Profiler(clock=ManualClock())
        prof.record(("batch", "route"), 2.0)
        batch = prof.snapshot()["phases"]["batch"]
        # The parent was never recorded itself: zero calls, zero total,
        # and self time floored at 0 rather than going negative.
        assert batch["calls"] == 0
        assert batch["total_s"] == 0.0
        assert batch["self_s"] == 0.0
        assert batch["children"]["route"]["total_s"] == 2.0

    def test_reset_drops_phases_keeps_enabled(self):
        clk = ManualClock()
        prof = Profiler(clock=clk)
        with prof.span("x"):
            clk.advance(1.0)
        prof.reset()
        assert prof.snapshot() == {"enabled": True, "phases": {}}


# ----------------------------------------------------------------------
# Disabled fast path
# ----------------------------------------------------------------------
class TestDisabled:
    def test_disabled_span_is_the_shared_null_span(self):
        prof = Profiler(enabled=False, clock=ManualClock())
        # Identity, not just equivalence: the hot loop allocates nothing.
        assert prof.span("anything") is NULL_SPAN
        assert prof.span("other") is NULL_SPAN

    def test_disabled_record_and_snapshot_are_empty(self):
        clk = ManualClock()
        prof = Profiler(enabled=False, clock=clk)
        prof.record(("batch",), 1.0)
        with prof.span("x"):
            clk.advance(1.0)
        assert prof.snapshot() == {"enabled": False, "phases": {}}

    def test_profile_span_without_active_profiler_is_null(self):
        assert active_profiler() is None
        assert profile_span("reachability") is NULL_SPAN

    def test_profiling_with_disabled_profiler_is_noop(self):
        prof = Profiler(enabled=False)
        with profiling(prof):
            assert active_profiler() is None
            assert profile_span("x") is NULL_SPAN
        with profiling(None):
            assert profile_span("x") is NULL_SPAN


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------
class TestActivation:
    def test_profiling_installs_and_restores(self):
        prof = Profiler(clock=ManualClock())
        assert active_profiler() is None
        with profiling(prof):
            assert active_profiler() is prof
        assert active_profiler() is None

    def test_profiling_restores_on_exception(self):
        prof = Profiler(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with profiling(prof):
                raise RuntimeError
        assert active_profiler() is None

    def test_base_path_nests_library_spans(self):
        clk = ManualClock()
        prof = Profiler(clock=clk)
        with profiling(prof, base=("batch", "execute")):
            with profile_span("reachability"):
                clk.advance(2.0)
        prof.record(("batch",), 5.0)
        prof.record(("batch", "execute"), 4.0)
        snap = prof.snapshot()
        batch = snap["phases"]["batch"]
        execute = batch["children"]["execute"]
        assert execute["children"]["reachability"]["total_s"] == 2.0
        assert execute["total_s"] == 4.0
        assert execute["self_s"] == 2.0
        assert batch["self_s"] == 1.0


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------
class TestMerge:
    def snap(self, prof_spec: dict) -> dict:
        prof = Profiler(clock=ManualClock())
        for path, (calls, seconds) in prof_spec.items():
            prof.record(path, seconds, calls=calls)
        return prof.snapshot()

    def test_merge_sums_and_recomputes_self(self):
        a = self.snap({("batch",): (1, 4.0), ("batch", "execute"): (1, 3.0)})
        b = self.snap({("batch",): (2, 6.0), ("batch", "execute"): (2, 1.0)})
        merged = merge_profile_snapshots(a, b)
        batch = merged["phases"]["batch"]
        assert batch["calls"] == 3
        assert batch["total_s"] == 10.0
        assert batch["self_s"] == 6.0
        assert batch["children"]["execute"]["total_s"] == 4.0

    def test_merge_is_commutative_and_passes_unique_paths(self):
        a = self.snap({("batch",): (1, 4.0)})
        b = self.snap({("search",): (2, 1.5)})
        ab = merge_profile_snapshots(a, b)
        ba = merge_profile_snapshots(b, a)
        assert ab == ba
        assert set(ab["phases"]) == {"batch", "search"}

    def test_merge_of_nothing_is_empty(self):
        assert merge_profile_snapshots() == {"enabled": False, "phases": {}}

    def test_flatten_and_render(self):
        snap = self.snap({
            ("batch",): (1, 4.0),
            ("batch", "execute"): (1, 3.0),
        })
        rows = dict(flatten_phases(snap["phases"]))
        assert set(rows) == {"batch", "batch/execute"}
        table = render_profile(snap["phases"])
        assert "batch" in table and "execute" in table
        assert table.splitlines()[0].split() == [
            "phase", "calls", "total_s", "self_s",
        ]


# ----------------------------------------------------------------------
# Engine integration: exact reconciliation with the latency histograms
# ----------------------------------------------------------------------
class TestEngineProfile:
    def test_batch_root_reconciles_with_histogram_sum(self):
        engine = EvaluationEngine()
        try:
            engine.run_batch([named_task(), named_task("example_c")])
            engine.run_batch([named_task(solver="simulation")])
            snap = engine.profiler.snapshot()
            hist = engine.metrics.collect()["repro_engine_batch_seconds"]
            batch = snap["phases"]["batch"]
            # Same floats, same summation order: exact, not approximate.
            assert batch["calls"] == hist["count"] == 2
            assert batch["total_s"] == hist["sum"]
            children = batch["children"]
            q = engine.metrics.collect()["repro_engine_queue_wait_seconds"]
            e = engine.metrics.collect()["repro_engine_execute_seconds"]
            assert children["queue_wait"]["total_s"] == q["sum"]
            assert children["execute"]["total_s"] == e["sum"]
        finally:
            engine.close()

    def test_solver_phases_nest_under_execute(self):
        engine = EvaluationEngine()
        try:
            engine.run_batch([named_task(), named_task(solver="simulation")])
            execute = (
                engine.profiler.snapshot()["phases"]["batch"]["children"]
                ["execute"]
            )
            phases = execute["children"]
            assert "fingerprint" in phases
            assert "cache_lookup" in phases
            assert "critical_cycle" in phases  # the deterministic engine
            assert "simulate" in phases
        finally:
            engine.close()

    def test_disabled_profiler_records_nothing_on_hot_path(self):
        engine = EvaluationEngine(profiler=Profiler(enabled=False))
        try:
            values = engine.run_batch([named_task()])[0]
            assert values[0] == pytest.approx(values[0])
            assert engine.profiler.snapshot() == {
                "enabled": False, "phases": {},
            }
        finally:
            engine.close()

    def test_manual_clock_makes_reconciliation_trivially_exact(self):
        clk = ManualClock()
        engine = EvaluationEngine(clock=clk)
        try:
            engine.run_batch([named_task()])
            snap = engine.profiler.snapshot()
            hist = engine.metrics.collect()["repro_engine_batch_seconds"]
            assert snap["phases"]["batch"]["total_s"] == 0.0
            assert hist["sum"] == 0.0
        finally:
            engine.close()


# ----------------------------------------------------------------------
# The profile op: worker and fleet
# ----------------------------------------------------------------------
class TestProfileOp:
    def test_worker_profile_op(self):
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port) as client:
                client.evaluate_batch([named_task()])
                reply = client.profile()
            assert reply["role"] == "worker"
            assert reply["profile"]["enabled"] is True
            assert "batch" in reply["profile"]["phases"]
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=5)

    def test_fleet_profile_merges_and_reconciles(self):
        with local_fleet(2, ping_interval=None) as fleet:
            with fleet.client() as client:
                tasks = [
                    named_task(), named_task("example_c"),
                    named_task(solver="exponential"),
                    named_task("paper"),
                ]
                values, failures, _stats = client.evaluate_batch(tasks)
                assert not failures
                prof = client.profile()
                mets = client.metrics()
            assert prof["role"] == "orchestrator"
            assert prof["workers_reporting"] == 2
            merged = prof["profile"]["phases"]
            hist = mets["metrics"]["repro_engine_batch_seconds"]
            # The merged tree's root total equals the fleet-merged
            # histogram sum for the same op — exactly: both sides fold
            # the same per-worker floats in the same catalog order.
            assert merged["batch"]["calls"] == hist["count"]
            assert merged["batch"]["total_s"] == hist["sum"]
            # The orchestrator's own tree reconciles with its request
            # histogram the same way.
            orch = prof["orchestrator"]["phases"]["request"]
            req_hist = mets["metrics"]["repro_orchestrator_request_seconds"]
            assert orch["total_s"] == req_hist["sum"]
            assert set(orch["children"]) == {"route", "merge"}

    def test_profile_is_a_control_op_while_draining(self):
        # Flip the admission gate directly instead of sending the
        # shutdown op: the op also stops the accept loop, and racing a
        # fresh connection against that leaves it stuck in the listen
        # backlog. begin_shutdown() puts the server in exactly the
        # draining state admission sees, with the accept loop alive.
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port, timeout=30.0) as client:
                client.evaluate_batch([named_task()])
            server.begin_shutdown()
            with ServiceClient(host, port, timeout=30.0) as client:
                # Work is shed while draining, but profile bypasses
                # admission like the other observe-plane ops.
                with pytest.raises(ServiceOverloaded):
                    client.evaluate_batch([named_task()])
                reply = client.request({"op": "profile"})
                assert reply["ok"] and "batch" in reply["profile"]["phases"]
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture
def profiled_worker():
    engine = EvaluationEngine()
    server, thread = serve_in_thread(engine)
    host, port = server.endpoint
    with ServiceClient(host, port) as client:
        client.evaluate_batch([named_task()])
    yield host, port
    server.shutdown()
    server.server_close()
    engine.close()
    thread.join(timeout=5)


class TestCliProfile:
    def test_profile_table_and_json(self, profiled_worker, capsys):
        host, port = profiled_worker
        assert main(["profile", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "batch" in out and "execute" in out
        assert main(
            ["profile", "--host", host, "--port", str(port), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "worker"
        assert "batch" in payload["profile"]["phases"]

    def test_profile_unreachable_exits_1(self, capsys):
        assert main(
            ["profile", "--host", "127.0.0.1", "--port", "1",
             "--timeout", "0.2", "--retries", "1"]
        ) == 1
        assert "profile failed" in capsys.readouterr().err

    def test_top_renders_dashboard(self, profiled_worker, capsys):
        host, port = profiled_worker
        assert main(
            ["top", "--host", host, "--port", str(port),
             "--count", "2", "--interval", "0.05", "--no-clear"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("repro top — worker") == 2
        assert "hottest phases" in out
        assert "repro_engine_batch_seconds" in out
        assert "hit rate" in out

    def test_top_validates_arguments(self, capsys):
        for argv in (
            ["top", "--interval", "0"],
            ["top", "--count", "0"],
            ["top", "--top", "0"],
        ):
            with pytest.raises(SystemExit):
                main(argv)
