"""Unit tests for the probability laws (means, variances, N.B.U.E. flags)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    ScaledBeta,
    TruncatedNormal,
    Uniform,
    Weibull,
    available_families,
    family_params_label,
    make_distribution,
    shape_factory,
)
from repro.exceptions import InvalidDistributionError

ALL_LAWS = [
    Deterministic(2.0),
    Exponential(2.0),
    Uniform.from_mean(2.0, 0.5),
    Gamma.from_mean(2.0, shape=3.0),
    Gamma.from_mean(2.0, shape=0.5),
    Erlang.from_mean(2.0, k=4),
    ScaledBeta.from_mean(2.0, shape=2.0),
    TruncatedNormal.from_mean(2.0, sigma=0.5),
    Weibull.from_mean(2.0, shape=2.0),
    LogNormal.from_mean(2.0, sigma=0.8),
    HyperExponential.from_mean(2.0, cv2=4.0),
]


@pytest.mark.parametrize("dist", ALL_LAWS, ids=lambda d: d.name + f"-{d.cv2:.2f}")
class TestCommonContract:
    def test_declared_mean_is_two(self, dist):
        assert dist.mean == pytest.approx(2.0, rel=1e-9)

    def test_sample_mean_matches(self, dist, rng):
        x = dist.sample(rng, 60_000)
        assert np.mean(x) == pytest.approx(2.0, rel=0.03)

    def test_sample_variance_matches(self, dist, rng):
        x = dist.sample(rng, 120_000)
        assert np.var(x) == pytest.approx(dist.variance, rel=0.1, abs=1e-12)

    def test_samples_non_negative(self, dist, rng):
        x = dist.sample(rng, 10_000)
        assert (np.asarray(x) >= 0).all()

    def test_scalar_sample(self, dist, rng):
        x = dist.sample(rng)
        assert np.isscalar(x) or np.ndim(x) == 0

    def test_with_mean_rescales(self, dist):
        d2 = dist.with_mean(5.0)
        assert d2.mean == pytest.approx(5.0, rel=1e-6)
        assert type(d2) is type(dist)

    def test_with_mean_preserves_cv2(self, dist):
        d2 = dist.with_mean(7.0)
        assert d2.cv2 == pytest.approx(dist.cv2, rel=1e-6, abs=1e-12)

    def test_std_consistent(self, dist):
        assert dist.std == pytest.approx(np.sqrt(dist.variance))


class TestNBUEClassification:
    """Analytic N.B.U.E. flags (the hypothesis of Theorem 7)."""

    def test_deterministic_is_nbue(self):
        assert Deterministic(1.0).is_nbue

    def test_exponential_is_nbue(self):
        assert Exponential(1.0).is_nbue

    def test_uniform_is_nbue(self):
        # Documented deviation from the paper's Fig. 17 labelling.
        assert Uniform.from_mean(1.0).is_nbue

    def test_gamma_threshold(self):
        assert Gamma.from_mean(1.0, shape=1.5).is_nbue
        assert Gamma.from_mean(1.0, shape=1.0).is_nbue
        assert not Gamma.from_mean(1.0, shape=0.5).is_nbue

    def test_weibull_threshold(self):
        assert Weibull.from_mean(1.0, shape=2.0).is_nbue
        assert not Weibull.from_mean(1.0, shape=0.7).is_nbue

    def test_beta_threshold(self):
        assert ScaledBeta.from_mean(1.0, shape=2.0).is_nbue
        assert not ScaledBeta(0.5, 0.5, 2.0).is_nbue

    def test_truncnorm_is_nbue(self):
        assert TruncatedNormal.from_mean(1.0, sigma=0.3).is_nbue

    def test_hyperexponential_not_nbue(self):
        assert not HyperExponential.from_mean(1.0, cv2=4.0).is_nbue

    def test_lognormal_not_nbue(self):
        assert not LogNormal.from_mean(1.0, sigma=1.0).is_nbue

    def test_erlang_is_nbue(self):
        assert Erlang.from_mean(1.0, k=3).is_nbue


class TestSpecificLaws:
    def test_deterministic_samples_constant(self, rng):
        x = Deterministic(3.0).sample(rng, 100)
        assert np.all(x == 3.0)

    def test_exponential_rate(self):
        assert Exponential(0.5).rate == 2.0
        assert Exponential.from_rate(4.0).mean == 0.25

    def test_exponential_memorylessness_moment(self, rng):
        """E[X - t | X > t] == E[X] — the N.B.U.E. boundary case."""
        d = Exponential(2.0)
        x = d.sample(rng, 400_000)
        t = 1.5
        tail = x[x > t] - t
        assert tail.mean() == pytest.approx(2.0, rel=0.03)

    def test_uniform_bounds(self, rng):
        d = Uniform(1.0, 3.0)
        x = d.sample(rng, 10_000)
        assert x.min() >= 1.0 and x.max() <= 3.0
        assert d.variance == pytest.approx(4.0 / 12.0)

    def test_uniform_from_mean_support(self):
        d = Uniform.from_mean(2.0, rel_half_width=0.25)
        assert (d.low, d.high) == (1.5, 2.5)

    def test_uniform_invalid(self):
        with pytest.raises(InvalidDistributionError):
            Uniform(3.0, 1.0)
        with pytest.raises(InvalidDistributionError):
            Uniform.from_mean(1.0, rel_half_width=1.5)

    def test_gamma_shape_one_is_exponential(self, rng):
        g = Gamma.from_mean(2.0, shape=1.0)
        assert g.variance == pytest.approx(4.0)

    def test_erlang_integer_shape_required(self):
        with pytest.raises(ValueError):
            Erlang(2.5, 1.0)  # type: ignore[arg-type]

    def test_beta_support(self, rng):
        d = ScaledBeta.from_mean(2.0, shape=2.0)
        x = d.sample(rng, 10_000)
        assert x.max() <= d.scale and x.min() >= 0.0

    def test_truncnorm_exact_mean_inversion(self):
        """from_mean targets the *truncated* mean even for large sigma."""
        d = TruncatedNormal.from_mean(1.0, sigma=2.0)
        assert d.mean == pytest.approx(1.0, rel=1e-6)

    def test_weibull_shape_one_is_exponential(self):
        w = Weibull.from_mean(3.0, shape=1.0)
        assert w.variance == pytest.approx(9.0, rel=1e-9)

    def test_hyperexponential_cv2(self):
        d = HyperExponential.from_mean(1.0, cv2=9.0)
        assert d.cv2 == pytest.approx(9.0, rel=1e-9)

    def test_hyperexponential_needs_cv2_above_one(self):
        with pytest.raises(InvalidDistributionError):
            HyperExponential.from_mean(1.0, cv2=0.9)

    def test_lognormal_moments(self):
        d = LogNormal.from_mean(2.0, sigma=0.5)
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx((np.exp(0.25) - 1) * 4.0, rel=1e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidDistributionError):
            Exponential(0.0)
        with pytest.raises(InvalidDistributionError):
            Gamma(-1.0, 1.0)
        with pytest.raises(InvalidDistributionError):
            Deterministic(-2.0)
        with pytest.raises(InvalidDistributionError):
            HyperExponential(1.5, 1.0, 1.0)


class TestRegistry:
    def test_all_families_constructible(self):
        for family in available_families():
            d = make_distribution(family, 2.0)
            assert d.mean == pytest.approx(2.0, rel=1e-6)

    def test_unknown_family(self):
        with pytest.raises(InvalidDistributionError, match="unknown"):
            make_distribution("cauchy", 1.0)

    def test_params_forwarded(self):
        d = make_distribution("gamma", 1.0, shape=0.5)
        assert not d.is_nbue

    def test_shape_factory(self):
        f = shape_factory("gamma", shape=0.5)
        assert f(3.0).mean == pytest.approx(3.0)
        assert not f(3.0).is_nbue

    def test_label(self):
        assert family_params_label("gamma", {"shape": 0.5}) == "gamma(shape=0.5)"
        assert family_params_label("exponential", {}) == "exponential"
