"""Coverage for the small shared modules (types, exceptions, CLI paths)."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConvergenceError,
    InvalidApplicationError,
    InvalidDistributionError,
    InvalidMappingError,
    InvalidPlatformError,
    ReproError,
    StateSpaceLimitError,
    StructuralError,
    UnsupportedModelError,
)
from repro.types import ExecutionModel, PlaceKind, TransitionKind


class TestExceptions:
    def test_hierarchy(self):
        for exc in (
            InvalidApplicationError,
            InvalidPlatformError,
            InvalidMappingError,
            InvalidDistributionError,
            StructuralError,
            StateSpaceLimitError,
            ConvergenceError,
            UnsupportedModelError,
        ):
            assert issubclass(exc, ReproError)

    def test_state_space_limit_carries_limit(self):
        err = StateSpaceLimitError(1000)
        assert err.limit == 1000
        assert "1000" in str(err)

    def test_state_space_limit_custom_message(self):
        err = StateSpaceLimitError(5, "too big")
        assert str(err) == "too big"


class TestExecutionModel:
    def test_coerce_strings(self):
        assert ExecutionModel.coerce("overlap") is ExecutionModel.OVERLAP
        assert ExecutionModel.coerce("STRICT") is ExecutionModel.STRICT

    def test_coerce_passthrough(self):
        assert ExecutionModel.coerce(ExecutionModel.OVERLAP) is ExecutionModel.OVERLAP

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ExecutionModel.coerce("fancy")

    def test_enum_values(self):
        assert {m.value for m in ExecutionModel} == {"overlap", "strict"}


class TestKinds:
    def test_place_kinds_cover_constraints(self):
        names = {k.name for k in PlaceKind}
        assert {
            "FLOW",
            "PROC_CYCLE",
            "OUT_PORT",
            "IN_PORT",
            "STRICT_CYCLE",
            "CAPACITY",
        } <= names

    def test_transition_kinds(self):
        assert {k.value for k in TransitionKind} == {"compute", "comm"}


class TestCliErrors:
    def test_requires_command(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_scaled_config_for_table1(self):
        from repro.cli import _scaled_config
        from repro.experiments import table1

        cfg = _scaled_config("table1", table1, 0.1)
        assert cfg is not None
        assert cfg.classes[0].n_experiments <= 11

    def test_scale_one_keeps_default(self):
        from repro.cli import _scaled_config
        from repro.experiments import fig15

        assert _scaled_config("fig15", fig15, 1.0) is None
