"""Tests for the declarative campaign subsystem (`repro.campaign`).

Covers the spec round-trip, the deterministic grid expansion and its
fingerprints, the crash-safe store, the runner's resume/parallel
guarantees (the PR's acceptance criteria), and the presets.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    SystemSpec,
    available_presets,
    campaign_report,
    campaign_status,
    derive_seed,
    expand,
    get_preset,
    run_campaign,
)
from repro.campaign.grid import expand_scenario
from repro.evaluate import StructureCache, evaluate, evaluate_tasks, get_solver
from repro.exceptions import CampaignError
from repro.mapping.examples import named_system, single_communication


def tiny_spec(seed: int = 0) -> CampaignSpec:
    """A 4-unit deterministic campaign used across the tests."""
    return CampaignSpec(
        name="tiny",
        seed=seed,
        scenarios=[
            ScenarioSpec(
                name="tiny/pattern",
                system=SystemSpec("single_communication", {"comm_time": 1.0}),
                solver="deterministic",
                axes={"system.u": [2, 3], "system.v": [2, 3]},
            ),
        ],
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestSpec:
    def test_json_round_trip(self):
        spec = tiny_spec(seed=42)
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert CampaignSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_round_trip_with_tuple_values(self):
        # Tuples normalize to lists at construction, so the documented
        # invariant from_dict(spec.to_dict()) == spec holds either way.
        spec = CampaignSpec(
            name="tuples",
            scenarios=[
                ScenarioSpec(
                    name="t/s",
                    system=SystemSpec(
                        "uniform_chain", {"replication": (1, 2)}
                    ),
                    solver="simulation",
                    options={"n_datasets": 20, "law_params": (("shape", 2.0),)},
                    axes={"solver.n_datasets": (20, 40)},
                ),
            ],
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_malformed_shapes_rejected(self):
        base = tiny_spec().to_dict()
        bad_scenarios = dict(base, scenarios="oops")
        with pytest.raises(CampaignError, match="must be a list"):
            CampaignSpec.from_dict(bad_scenarios)
        bad_entry = dict(base, scenarios=[[1, 2]])
        with pytest.raises(CampaignError, match="must be an object"):
            CampaignSpec.from_dict(bad_entry)
        bad_params = json.loads(json.dumps(base))
        bad_params["scenarios"][0]["system"]["params"] = [1, 2]
        with pytest.raises(CampaignError, match="must be an object"):
            CampaignSpec.from_dict(bad_params)
        bad_options = json.loads(json.dumps(base))
        bad_options["scenarios"][0]["options"] = [1, 2]
        with pytest.raises(CampaignError, match="must be an object"):
            CampaignSpec.from_dict(bad_options)

    def test_scalar_axis_value_rejected(self):
        data = tiny_spec().to_dict()
        # A natural spec-file mistake: scalar instead of a list. It must
        # fail validation, not explode "exponential" into characters.
        data["scenarios"][0]["axes"]["solver"] = "exponential"
        with pytest.raises(CampaignError, match="non-empty"):
            CampaignSpec.from_dict(data)

    def test_report_orders_numeric_axes_numerically(self, tmp_path):
        spec = CampaignSpec(
            name="order",
            scenarios=[
                ScenarioSpec(
                    name="order/n",
                    system=SystemSpec(
                        "single_communication", {"u": 2, "v": 2}
                    ),
                    solver="simulation",
                    axes={"solver.n_datasets": [1000, 100, 500]},
                ),
            ],
        )
        store = ResultStore(tmp_path / "o.jsonl")
        run_campaign(spec, store)
        (report,) = campaign_report(store)
        assert [r["solver.n_datasets"] for r in report.rows] == [100, 500, 1000]

    def test_non_integer_seed_rejected(self):
        data = tiny_spec().to_dict()
        data["seed"] = 7.9
        with pytest.raises(CampaignError, match="seed"):
            CampaignSpec.from_dict(data)
        data["seed"] = True  # bool is not a campaign seed either
        with pytest.raises(CampaignError, match="seed"):
            CampaignSpec.from_dict(data)

    def test_unknown_keys_rejected(self):
        data = tiny_spec().to_dict()
        data["oops"] = 1
        with pytest.raises(CampaignError, match="oops"):
            CampaignSpec.from_dict(data)
        sdata = tiny_spec().scenarios[0].to_dict()
        sdata["extra"] = 1
        with pytest.raises(CampaignError, match="extra"):
            ScenarioSpec.from_dict(sdata)

    def test_validation_errors(self):
        with pytest.raises(CampaignError, match="kind"):
            SystemSpec("nope")
        with pytest.raises(CampaignError, match="name"):
            SystemSpec("named", {})
        with pytest.raises(CampaignError, match="axis"):
            ScenarioSpec(
                name="s", system=SystemSpec("named", {"name": "example_a"}),
                axes={"bogus_axis": [1]},
            )
        with pytest.raises(CampaignError, match="model"):
            ScenarioSpec(
                name="s", system=SystemSpec("named", {"name": "example_a"}),
                model="half-open",
            )
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(
                name="c",
                scenarios=[
                    tiny_spec().scenarios[0], tiny_spec().scenarios[0],
                ],
            )
        with pytest.raises(CampaignError, match="at least one scenario"):
            CampaignSpec(name="empty", scenarios=[])

    def test_build_all_kinds(self):
        named = SystemSpec("named", {"name": "example_a"}).build()
        assert named.teams == named_system("example_a").teams
        sc = SystemSpec(
            "single_communication", {"u": 2, "v": 3, "comm_time": 2.0}
        ).build()
        assert sc.replication == (2, 3)
        assert sc.comm_time(0, 0, 2) == 2.0
        chain = SystemSpec(
            "chain",
            {
                "works": [1.0, 2.0], "files": [0.5],
                "speeds": [1.0, 1.0, 2.0], "teams": [[0], [1, 2]],
            },
        ).build()
        assert chain.replication == (1, 2)
        uni = SystemSpec(
            "uniform_chain", {"replication": [1, 2], "work": 3.0}
        ).build()
        assert uni.replication == (1, 2)
        assert uni.compute_time(0, 0) == 3.0

    def test_build_unknown_named_system_is_campaign_error(self):
        with pytest.raises(CampaignError, match="cannot be built"):
            SystemSpec("named", {"name": "atlantis"}).build()
        with pytest.raises(CampaignError, match="cannot be built"):
            # library-level mapping validation surfaces the same way
            SystemSpec(
                "chain",
                {"works": [1.0, 1.0], "speeds": [1.0], "teams": [[0], [0]]},
            ).build()

    def test_build_missing_param(self):
        with pytest.raises(CampaignError, match="missing parameter"):
            SystemSpec("single_communication", {"u": 2}).build()

    def test_build_unknown_param(self):
        with pytest.raises(CampaignError, match="invalid parameters"):
            SystemSpec(
                "single_communication", {"u": 2, "v": 2, "warp": 9}
            ).build()
        # The dict-read kinds guard their keys too (a typo must not
        # silently fall back to a default).
        with pytest.raises(CampaignError, match="bandwith"):
            SystemSpec(
                "chain",
                {
                    "works": [1.0, 1.0], "speeds": [1.0, 1.0],
                    "teams": [[0], [1]], "bandwith": 8.0,
                },
            ).build()
        with pytest.raises(CampaignError, match="replication_factor"):
            SystemSpec(
                "uniform_chain",
                {"replication": [1, 2], "replication_factor": 3},
            ).build()

    def test_build_non_integer_counts_rejected(self):
        with pytest.raises(CampaignError, match="must be an integer"):
            SystemSpec("single_communication", {"u": "two", "v": 2}).build()
        with pytest.raises(CampaignError, match="must be an integer"):
            SystemSpec("uniform_chain", {"replication": ["x"]}).build()
        # A float is rejected, never silently truncated into a different
        # system than the one the store would claim.
        with pytest.raises(CampaignError, match="must be an integer"):
            SystemSpec("single_communication", {"u": 2.5, "v": 2}).build()


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestGrid:
    def test_deterministic_order_and_count(self):
        spec = tiny_spec()
        units = expand(spec)
        assert len(units) == 4
        assert [u.params for u in units] == [
            {"system.u": 2, "system.v": 2},
            {"system.u": 2, "system.v": 3},
            {"system.u": 3, "system.v": 2},
            {"system.u": 3, "system.v": 3},
        ]
        # Same spec, same fingerprints — run-to-run and object-to-object.
        assert [u.fingerprint for u in expand(tiny_spec())] == [
            u.fingerprint for u in units
        ]

    def test_fingerprint_ignores_axis_insertion_order(self):
        s1 = ScenarioSpec(
            name="s",
            system=SystemSpec("single_communication", {}),
            axes={"system.u": [2], "system.v": [3]},
        )
        s2 = ScenarioSpec(
            name="s",
            system=SystemSpec("single_communication", {}),
            axes={"system.v": [3], "system.u": [2]},
        )
        (u1,) = expand_scenario("c", 0, s1)
        (u2,) = expand_scenario("c", 0, s2)
        assert u1.fingerprint == u2.fingerprint
        assert u1.seed == u2.seed

    def test_seed_derivation_is_content_keyed(self):
        units = expand(tiny_spec(seed=1))
        assert len({u.seed for u in units}) == len(units)
        assert [u.seed for u in units] == [
            derive_seed(1, u.fingerprint) for u in units
        ]
        # Deterministic units: different base seed changes the derived
        # seeds but not the fingerprints (their value is seed-free, so
        # stores from different seeds may legitimately dedup).
        units5 = expand(tiny_spec(seed=5))
        assert [u.fingerprint for u in units5] == [u.fingerprint for u in units]
        assert all(a.seed != b.seed for a, b in zip(units, units5))

    def test_units_are_hashable_and_set_friendly(self):
        units = expand(tiny_spec())
        assert len(set(units)) == len(units)
        assert all(hash(u) == hash(u.fingerprint) for u in units)

    def test_non_json_axis_values_rejected(self):
        import numpy as np

        scen = ScenarioSpec(
            name="np",
            system=SystemSpec("single_communication", {"v": 2}),
            axes={"system.u": list(np.arange(2, 4))},
        )
        with pytest.raises(CampaignError, match="JSON-serializable"):
            expand_scenario("c", 0, scen)

    def test_fingerprint_is_campaign_keyed(self):
        scen = tiny_spec().scenarios[0]
        units_a = expand_scenario("campaign-a", 0, scen)
        units_b = expand_scenario("campaign-b", 0, scen)
        # Identical content under different campaign names are distinct
        # units: sharing a store never conflates two campaigns (their
        # report filters and status counts would disagree otherwise).
        assert {u.fingerprint for u in units_a}.isdisjoint(
            u.fingerprint for u in units_b
        )

    def test_simulation_fingerprint_is_seed_keyed(self):
        scen = ScenarioSpec(
            name="sim",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            solver="simulation",
            options={"n_datasets": 50},
        )
        (u1,) = expand_scenario("c", 1, scen)
        (u2,) = expand_scenario("c", 2, scen)
        # A stochastic unit's value depends on the base seed, so two
        # seeds are two units — resume can never serve one as the other.
        assert u1.fingerprint != u2.fingerprint
        # With a pinned stream seed the unit is deterministic again.
        pinned = ScenarioSpec(
            name="sim",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            solver="simulation",
            options={"n_datasets": 50, "seed": 4},
        )
        (p1,) = expand_scenario("c", 1, pinned)
        (p2,) = expand_scenario("c", 2, pinned)
        assert p1.fingerprint == p2.fingerprint

    def test_simulation_seed_injection(self):
        scen = ScenarioSpec(
            name="sim",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            solver="simulation",
            options={"n_datasets": 50},
        )
        (unit,) = expand_scenario("c", 3, scen)
        assert unit.options["seed"] == unit.seed
        # A pinned seed is respected (and fingerprinted).
        pinned = ScenarioSpec(
            name="sim",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            solver="simulation",
            options={"n_datasets": 50, "seed": 9},
        )
        (pu,) = expand_scenario("c", 3, pinned)
        assert pu.options["seed"] == 9
        assert pu.fingerprint != unit.fingerprint

    def test_unknown_solver_and_option(self):
        bad_solver = ScenarioSpec(
            name="s",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            axes={"solver": ["quantum"]},
        )
        with pytest.raises(CampaignError, match="unknown solver"):
            expand_scenario("c", 0, bad_solver)
        bad_option = ScenarioSpec(
            name="s",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            options={"n_datasets": 5},  # not a deterministic-solver option
        )
        with pytest.raises(CampaignError, match="n_datasets"):
            expand_scenario("c", 0, bad_option)

    def test_model_and_solver_axes(self):
        scen = ScenarioSpec(
            name="s",
            system=SystemSpec("single_communication", {"u": 2, "v": 2}),
            axes={
                "model": ["overlap", "strict"],
                "solver": ["deterministic", "exponential"],
            },
        )
        units = expand_scenario("c", 0, scen)
        assert [(u.model, u.solver) for u in units] == [
            ("overlap", "deterministic"),
            ("overlap", "exponential"),
            ("strict", "deterministic"),
            ("strict", "exponential"),
        ]
        assert len({u.fingerprint for u in units}) == 4


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestStore:
    def test_append_dedup_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        assert len(store) == 0
        assert store.append({"fingerprint": "aa", "value": 1.0})
        assert not store.append({"fingerprint": "aa", "value": 2.0})
        assert store.append({"fingerprint": "bb", "value": 3.0})
        again = ResultStore(path)
        assert len(again) == 2
        assert "aa" in again and again.get("aa")["value"] == 1.0
        assert again.fingerprints() == ("aa", "bb")

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"fingerprint": "aa", "value": 1.0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "bb", "val')  # killed mid-write
        resumed = ResultStore(path)
        assert len(resumed) == 1
        assert resumed.dropped_lines == 1
        # The store stays appendable after the torn line.
        assert resumed.append({"fingerprint": "bb", "value": 2.0})
        assert len(ResultStore(path)) == 2

    def test_missing_final_newline_repaired_on_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append({"fingerprint": "aa", "value": 1.0})
        store.append({"fingerprint": "bb", "value": 2.0})
        # A crash that lost only the final terminator:
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])
        reloaded = ResultStore(path)
        assert len(reloaded) == 2  # record kept, not dropped
        # Loading alone restores the line-per-record invariant.
        assert path.read_bytes() == raw
        assert len(path.read_text().splitlines()) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"fingerprint": "aa", "value": 1.0}\n')
        with pytest.raises(CampaignError, match="line 1"):
            ResultStore(path)

    def test_record_without_fingerprint_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        with pytest.raises(CampaignError, match="fingerprint"):
            store.append({"value": 1.0})


# ----------------------------------------------------------------------
# Runner: the acceptance criteria
# ----------------------------------------------------------------------
class TestRunner:
    def test_run_resume_and_report(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "c.jsonl")
        summary = run_campaign(spec, store)
        assert (summary.total, summary.executed, summary.skipped) == (4, 4, 0)
        report_cold = [r.render() for r in campaign_report(store)]

        # Re-running without --resume is refused (populated store).
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(spec, ResultStore(tmp_path / "c.jsonl"))

        # --resume executes 0 units and reproduces the same report.
        resumed = run_campaign(
            spec, ResultStore(tmp_path / "c.jsonl"), resume=True
        )
        assert resumed.executed == 0
        assert resumed.skipped == 4
        report_resumed = [
            r.render() for r in campaign_report(ResultStore(tmp_path / "c.jsonl"))
        ]
        assert report_resumed == report_cold

    def test_parallel_store_byte_identical(self, tmp_path):
        spec = tiny_spec()
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_campaign(spec, ResultStore(serial), n_jobs=1)
        run_campaign(spec, ResultStore(parallel), n_jobs=2)
        lines_s = sorted(serial.read_text().splitlines())
        lines_p = sorted(parallel.read_text().splitlines())
        assert lines_s == lines_p

    def test_partial_store_resumes_only_missing(self, tmp_path):
        spec = tiny_spec()
        full = ResultStore(tmp_path / "full.jsonl")
        run_campaign(spec, full)
        partial_path = tmp_path / "partial.jsonl"
        with open(partial_path, "w", encoding="utf-8") as fh:
            for line in (tmp_path / "full.jsonl").read_text().splitlines()[:2]:
                fh.write(line + "\n")
        summary = run_campaign(
            spec, ResultStore(partial_path), resume=True
        )
        assert summary.executed == 2
        assert summary.skipped == 2
        assert sorted(partial_path.read_text().splitlines()) == sorted(
            (tmp_path / "full.jsonl").read_text().splitlines()
        )

    def test_status(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "c.jsonl")
        assert campaign_status(spec, store) == [("tiny/pattern", 0, 4)]
        run_campaign(spec, store)
        assert campaign_status(spec, store) == [("tiny/pattern", 4, 4)]

    def test_bad_later_scenario_fails_before_any_execution(self, tmp_path):
        spec = CampaignSpec(
            name="failfast",
            scenarios=[
                tiny_spec().scenarios[0],
                ScenarioSpec(
                    name="failfast/broken",
                    system=SystemSpec("single_communication", {"u": 2}),
                ),
            ],
        )
        store = ResultStore(tmp_path / "ff.jsonl")
        with pytest.raises(CampaignError, match="missing parameter"):
            run_campaign(spec, store)
        # The healthy first scenario must not have burned any compute.
        assert len(store) == 0

    def test_record_seed_provenance(self, tmp_path):
        spec = CampaignSpec(
            name="prov",
            seed=3,
            scenarios=[
                tiny_spec().scenarios[0],  # deterministic: no seed field
                ScenarioSpec(
                    name="prov/pinned",
                    system=SystemSpec(
                        "single_communication", {"u": 2, "v": 2}
                    ),
                    solver="simulation",
                    options={"n_datasets": 20, "seed": 42},
                ),
            ],
        )
        store = ResultStore(tmp_path / "prov.jsonl")
        run_campaign(spec, store)
        for record in store.records():
            if record["solver"] == "simulation":
                # The recorded seed is the one that drove the stream.
                assert record["seed"] == 42
            else:
                assert "seed" not in record

    def test_values_match_direct_evaluate(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "c.jsonl")
        run_campaign(spec, store)
        for record in store.records():
            mp = single_communication(
                record["params"]["system.u"],
                record["params"]["system.v"],
                comm_time=1.0,
            )
            assert record["value"] == evaluate(mp, solver="deterministic")

    def test_law_params_from_json_spec(self, tmp_path):
        # JSON can only express law_params as lists of pairs; the whole
        # chain (spec -> solver -> cache keys -> store) must accept it.
        spec = CampaignSpec.from_json(
            CampaignSpec(
                name="laws",
                scenarios=[
                    ScenarioSpec(
                        name="laws/gamma",
                        system=SystemSpec(
                            "single_communication", {"u": 2, "v": 2}
                        ),
                        solver="simulation",
                        options={
                            "n_datasets": 20,
                            "law": "gamma",
                            "law_params": [["shape", 2.0]],
                        },
                    ),
                ],
            ).to_json()
        )
        store = ResultStore(tmp_path / "laws.jsonl")
        summary = run_campaign(spec, store)
        assert summary.executed == 1
        solver = get_solver(
            "simulation", law="gamma", law_params=[["shape", 2.0]]
        )
        assert solver.law_params == (("shape", 2.0),)
        hash(solver)  # canonical form must stay hashable

    def test_report_shows_seed_for_stochastic_units(self, tmp_path):
        def sim_spec(seed: int) -> CampaignSpec:
            return CampaignSpec(
                name="sim",
                seed=seed,
                scenarios=[
                    ScenarioSpec(
                        name="sim/conv",
                        system=SystemSpec(
                            "uniform_chain", {"replication": [1, 2], "work": 1.0}
                        ),
                        solver="simulation",
                        options={"n_datasets": 30},
                    ),
                ],
            )

        store = ResultStore(tmp_path / "two_seeds.jsonl")
        run_campaign(sim_spec(1), store)
        run_campaign(sim_spec(2), store, resume=True)
        (report,) = campaign_report(store)
        assert "seed" in report.columns
        assert len(report.rows) == 2
        assert report.rows[0]["seed"] != report.rows[1]["seed"]

    def test_simulation_units_reproducible(self, tmp_path):
        spec = CampaignSpec(
            name="sim",
            seed=7,
            scenarios=[
                ScenarioSpec(
                    name="sim/conv",
                    system=SystemSpec(
                        "uniform_chain", {"replication": [1, 2], "work": 1.0}
                    ),
                    solver="simulation",
                    options={"n_datasets": 40},
                    axes={"solver.n_datasets": [40, 80]},
                ),
            ],
        )
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_campaign(spec, ResultStore(a), n_jobs=1)
        run_campaign(spec, ResultStore(b), n_jobs=2)
        assert a.read_text() == b.read_text()


# ----------------------------------------------------------------------
# Heterogeneous batch API (evaluate layer)
# ----------------------------------------------------------------------
class TestEvaluateTasks:
    def test_matches_single_evaluate(self):
        mp = single_communication(2, 3)
        tasks = [
            ("deterministic", mp, "overlap"),
            ("exponential", mp, "overlap"),
            (get_solver("simulation", n_datasets=30, seed=1), mp, "overlap"),
        ]
        values = evaluate_tasks(tasks)
        assert values[0] == evaluate(mp, solver="deterministic")
        assert values[1] == evaluate(mp, solver="exponential")
        assert values[2] == evaluate(
            mp, solver="simulation", n_datasets=30, seed=1
        )

    def test_dedup_through_cache(self):
        mp = single_communication(2, 2)
        cache = StructureCache()
        values = evaluate_tasks(
            [("deterministic", mp, "overlap")] * 3, cache=cache
        )
        assert len(set(values)) == 1
        assert cache.misses == 1
        assert cache.hits == 2

    def test_disabled_cache_evaluates_independently(self):
        # Mirrors evaluate_many's uncached cost model: no dedup, no memo.
        mp = single_communication(2, 2)
        cache = StructureCache(enabled=False)
        values = evaluate_tasks(
            [("deterministic", mp, "overlap")] * 3, cache=cache
        )
        assert len(set(values)) == 1
        assert cache.misses == 3
        assert cache.hits == 0

    def test_parallel_bit_identical(self):
        mappings = [single_communication(u, 2) for u in (2, 3, 4, 5)]
        tasks = [
            (get_solver("simulation", n_datasets=25, seed=3), mp, "overlap")
            for mp in mappings
        ]
        serial = evaluate_tasks(tasks, n_jobs=1)
        parallel = evaluate_tasks(tasks, n_jobs=2)
        assert serial == parallel


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
class TestPresets:
    def test_all_presets_expand(self):
        for name in available_presets():
            spec = get_preset(name)
            units = expand(spec)
            assert units, name
            assert len({u.fingerprint for u in units}) == len(units)
            # Every preset round-trips through JSON unchanged.
            assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_smoke_is_four_units(self):
        assert len(expand(get_preset("smoke"))) == 4

    def test_unknown_preset(self):
        with pytest.raises(CampaignError, match="unknown campaign preset"):
            get_preset("nope")

    def test_fig13_preset_matches_driver_theory(self, tmp_path):
        """The ported preset reproduces the hand-coded driver's numbers."""
        spec = get_preset("fig13")
        store = ResultStore(tmp_path / "f13.jsonl")
        run_campaign(spec, store)
        for record in store.records():
            mp = single_communication(
                record["params"]["system.u"],
                record["params"]["system.v"],
                comm_time=1.0,
            )
            assert record["value"] == pytest.approx(
                evaluate(mp, solver=record["solver"])
            )
