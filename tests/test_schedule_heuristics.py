"""Tests for periodic-schedule extraction and the mapping heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Application, Platform
from repro.core import tpn_throughput_classic, overlap_throughput
from repro.core.schedule import periodic_schedule
from repro.exceptions import StructuralError
from repro.mapping.heuristics import (
    balanced_replication,
    greedy_hill_climb,
    random_restart_search,
)
from repro.petri import build_overlap_tpn, build_strict_tpn

from tests.conftest import make_mapping


class TestPeriodicSchedule:
    def test_single_processor(self):
        mp = make_mapping([[0]], works=[2.0])
        sched = periodic_schedule(build_overlap_tpn(mp))
        assert sched.cycle_time == pytest.approx(2.0)
        assert sched.cyclicity == 1
        assert sched.n_transitions == 1

    def test_cycle_time_matches_critical_cycle(self):
        """λ of the periodic regime is the Section 4 period ``P``.

        Every transition fires once per λ, the last column has ``m``
        transitions, so ``ρ = m / λ`` — the paper's ``m / P``.
        """
        for seed in range(4):
            mp = make_mapping([[0], [1, 2]], seed=seed)
            tpn = build_strict_tpn(mp)
            sched = periodic_schedule(tpn)
            rho = tpn_throughput_classic(tpn)
            assert rho == pytest.approx(tpn.n_rows / sched.cycle_time, rel=1e-6)

    def test_overlap_symmetric_net(self):
        mp = make_mapping([[0, 1], [2, 3, 4]])
        tpn = build_overlap_tpn(mp)
        sched = periodic_schedule(tpn)
        rho = overlap_throughput(mp, "deterministic", semantics="bottleneck")
        assert rho == pytest.approx(tpn.n_rows / sched.cycle_time, rel=1e-6)

    def test_offsets_shape_and_range(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5])
        tpn = build_strict_tpn(mp)
        sched = periodic_schedule(tpn)
        assert sched.offsets.shape == (tpn.n_transitions, sched.cyclicity)
        assert (sched.offsets >= 0).all()
        assert sched.block_length == pytest.approx(
            sched.cyclicity * sched.cycle_time
        )

    def test_heterogeneous_branches_raise(self):
        """Diverging component rates have no common periodic regime."""
        mp = make_mapping(
            [[0], [1, 2]], works=[0.01, 2.0], files=[0.01],
            speeds=[100.0, 10.0, 0.5],
        )
        tpn = build_overlap_tpn(mp)
        with pytest.raises(StructuralError):
            periodic_schedule(tpn, max_rounds=120)

    def test_transient_reported(self):
        mp = make_mapping([[0], [1]], works=[1.0, 3.0], files=[0.5])
        sched = periodic_schedule(build_strict_tpn(mp))
        assert sched.transient_rounds >= 0


class TestHeuristics:
    def _instance(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        app = Application.from_work(
            rng.uniform(1.0, 8.0, 3).tolist(), rng.uniform(0.1, 0.5, 2).tolist()
        )
        platform = Platform.from_speeds(
            rng.uniform(1.0, 3.0, 9).tolist(), bandwidth=5.0
        )
        return app, platform

    def test_balanced_replication_valid(self):
        app, platform = self._instance()
        result = balanced_replication(app, platform)
        assert result.throughput > 0
        assert result.mapping.n_stages == app.n_stages
        # Heavier stages get at least as many replicas.
        reps = result.mapping.replication
        works = app.works
        heaviest = int(np.argmax(works))
        lightest = int(np.argmin(works))
        assert reps[heaviest] >= reps[lightest]

    def test_balanced_needs_enough_processors(self):
        app = Application.uniform(4, 1.0, 1.0)
        platform = Platform.homogeneous(2, 1.0, 1.0)
        from repro.exceptions import InvalidMappingError

        with pytest.raises(InvalidMappingError):
            balanced_replication(app, platform)

    def test_hill_climb_never_worse_than_start(self):
        app, platform = self._instance(3)
        from repro.mapping.generators import random_mapping

        rng = np.random.default_rng(1)
        start = random_mapping(app, platform, rng, max_replication=3)
        rho0 = overlap_throughput(start, "deterministic")
        result = greedy_hill_climb(
            app, platform, seed=1, start=start, max_steps=20
        )
        assert result.throughput >= rho0 * (1 - 1e-12)

    def test_restarts_at_least_as_good_as_baseline(self):
        app, platform = self._instance(7)
        base = balanced_replication(app, platform)
        best = random_restart_search(app, platform, n_restarts=3, seed=2)
        assert best.throughput >= base.throughput * (1 - 1e-12)
        assert best.evaluations > base.evaluations

    def test_exponential_scoring_below_deterministic(self):
        app, platform = self._instance(11)
        det = random_restart_search(
            app, platform, mode="deterministic", n_restarts=2, seed=3
        )
        exp = random_restart_search(
            app, platform, mode="exponential", n_restarts=2, seed=3
        )
        # The exponential score of any mapping is below its deterministic
        # score (Theorem 7), hence also for the two optima.
        assert exp.throughput <= det.throughput * (1 + 1e-9)


#: Pre-refactor outputs of the serial one-candidate-at-a-time heuristics
#: (recorded at the PR 1 tree on the ``_instance`` systems below):
#: seed -> (hill-climb rho, restart rho, restart evaluation count).
_PRE_REFACTOR = {
    0: (0.9794428168094456, 1.3844005475115075, 40),
    3: (1.3659987904649937, 1.4100052763104642, 59),
    7: (0.7763586739879177, 0.7413055538225953, 44),
    11: (1.0362295147859208, 1.301398502321453, 41),
}


class TestBatchedSearchRegression:
    """The evaluate_many rewrite preserves trajectories and saves work."""

    @pytest.mark.parametrize("seed", sorted(_PRE_REFACTOR))
    def test_same_optimum_with_fewer_evaluator_misses(self, seed):
        app, platform = TestHeuristics._instance(None, seed)
        hc = greedy_hill_climb(app, platform, seed=1, max_steps=20)
        rr = random_restart_search(app, platform, n_restarts=3, seed=2)
        rho_hc, rho_rr, old_evals = _PRE_REFACTOR[seed]
        # Bit-identical optima on fixed seeds ...
        assert hc.throughput == rho_hc
        assert rr.throughput == rho_rr
        # ... the same request stream as the serial implementation ...
        assert rr.evaluations == old_evals
        assert rr.evaluations == rr.cache_hits + rr.cache_misses
        # ... and strictly fewer actual evaluator runs (memo cache).
        assert rr.cache_misses < old_evals
        assert rr.cache_hits > 0

    def test_n_jobs_same_optimum(self):
        app, platform = TestHeuristics._instance(None, 0)
        serial = random_restart_search(app, platform, n_restarts=2, seed=2)
        fanned = random_restart_search(
            app, platform, n_restarts=2, seed=2, n_jobs=2
        )
        assert fanned.throughput == serial.throughput

    def test_shared_cache_across_searches(self):
        from repro.evaluate import StructureCache

        app, platform = TestHeuristics._instance(None, 3)
        cache = StructureCache()
        first = random_restart_search(
            app, platform, n_restarts=1, seed=2, cache=cache
        )
        second = random_restart_search(
            app, platform, n_restarts=1, seed=2, cache=cache
        )
        assert second.throughput == first.throughput
        # The second run re-requests only memoized candidates.
        assert second.cache_misses == 0
        assert second.evaluations == first.evaluations


class TestSatelliteFixes:
    def test_balanced_replication_overshoot_never_empties_a_team(self):
        # Three feather-weight stages force per-stage clamping to 1 while
        # the heavy stage's floor share overshoots M; the old trim loop
        # decremented the least-loaded stage to zero replicas.
        app = Application.from_work([0.1, 0.1, 0.1, 10.0], [0.1, 0.1, 0.1])
        platform = Platform.from_speeds([1.0] * 5, bandwidth=5.0)
        result = balanced_replication(app, platform)
        reps = result.mapping.replication
        assert min(reps) >= 1
        assert sum(reps) <= platform.n_processors
        assert result.throughput > 0

    def test_neighbours_skip_degenerate_empty_team_swaps(self):
        from repro.mapping.heuristics import _neighbours
        from repro.mapping.mapping import Mapping as _Mapping

        mp = make_mapping([[0], [1], [2]])
        # Forge an (invalid) mapping with an empty middle team, bypassing
        # validation — the degenerate shape the guard protects against.
        degenerate = _Mapping.__new__(_Mapping)
        degenerate.application = mp.application
        degenerate.platform = mp.platform
        degenerate.teams = ((0,), (), (2,))
        rng = np.random.default_rng(0)
        moves = _neighbours(degenerate, rng)  # must not raise
        assert isinstance(moves, list)
