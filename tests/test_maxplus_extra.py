"""Tests for the Howard solver and the dater recursion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StructuralError
from repro.maxplus import (
    TokenGraph,
    dater_evolution,
    dater_throughput,
    howard_max_cycle_ratio,
    max_cycle_ratio,
)
from repro.maxplus.dater import sample_times
from repro.petri import build_overlap_tpn, build_strict_tpn

from tests.conftest import make_mapping


class TestHoward:
    def test_simple_two_cycles(self):
        g = TokenGraph(3)
        g.add_arc(0, 1, weight=2.0, tokens=1)
        g.add_arc(1, 0, weight=4.0, tokens=1)
        g.add_arc(1, 2, weight=1.0, tokens=0)
        g.add_arc(2, 1, weight=3.0, tokens=2)
        assert howard_max_cycle_ratio(g) == pytest.approx(3.0)

    def test_acyclic_returns_none(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=1)
        assert howard_max_cycle_ratio(g) is None

    def test_self_loop(self):
        g = TokenGraph(1)
        g.add_arc(0, 0, weight=6.0, tokens=3)
        assert howard_max_cycle_ratio(g) == pytest.approx(2.0)

    def test_zero_token_cycle_raises(self):
        g = TokenGraph(2)
        g.add_arc(0, 1, weight=1.0, tokens=0)
        g.add_arc(1, 0, weight=1.0, tokens=0)
        with pytest.raises(StructuralError):
            howard_max_cycle_ratio(g)

    @pytest.mark.parametrize("seed", range(25))
    def test_agrees_with_cycle_iteration(self, seed):
        r = np.random.default_rng(seed)
        n = int(r.integers(2, 9))
        g = TokenGraph(n)
        perm = r.permutation(n)
        for i in range(n):
            g.add_arc(
                int(perm[i]), int(perm[(i + 1) % n]),
                weight=float(r.uniform(0, 10)), tokens=int(r.integers(1, 3)),
            )
        for _ in range(int(r.integers(0, 3 * n))):
            g.add_arc(
                int(r.integers(n)), int(r.integers(n)),
                weight=float(r.uniform(0, 10)), tokens=int(r.integers(1, 4)),
            )
        a = max_cycle_ratio(g)
        b = howard_max_cycle_ratio(g)
        assert b == pytest.approx(a.ratio, rel=1e-9)

    def test_on_paper_nets(self):
        """Both engines agree on real overlap/strict nets."""
        for seed in range(4):
            mp = make_mapping([[0], [1, 2], [3]], seed=seed)
            for build in (build_overlap_tpn, build_strict_tpn):
                g = build(mp).to_token_graph()
                assert howard_max_cycle_ratio(g) == pytest.approx(
                    max_cycle_ratio(g).ratio, rel=1e-9
                )


class TestDater:
    def test_single_transition_cycle(self):
        mp = make_mapping([[0]], works=[2.0])
        tpn = build_overlap_tpn(mp)
        d = dater_evolution(tpn, 5)
        assert np.allclose(d[0], [2.0, 4.0, 6.0, 8.0, 10.0])

    def test_deterministic_throughput_matches_mcr(self):
        """lim k / D(k) equals the critical-cycle throughput."""
        from repro.core import tpn_throughput_deterministic

        for seed in range(3):
            mp = make_mapping([[0], [1, 2]], seed=seed)
            tpn = build_strict_tpn(mp)
            rho = tpn_throughput_deterministic(tpn)
            est = dater_throughput(tpn, 400)
            assert est == pytest.approx(rho, rel=0.02)

    def test_deterministic_matches_des_exactly(self):
        """Constant durations → the DES and the dater agree event by event."""
        from repro.sim.tpn_sim import simulate_tpn

        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5])
        tpn = build_strict_tpn(mp)
        n = 40
        d = dater_evolution(tpn, n)
        last = tpn.last_column_transitions()
        completions = np.sort(d[last, :].ravel())
        sim = simulate_tpn(
            tpn, n_datasets=len(completions), law="deterministic",
            seed=0, throttle=None,
        )
        assert np.allclose(sim.completion_times, completions, atol=1e-9)

    def test_exponential_dater_matches_theory(self):
        """Stochastic dater estimate ≈ exact CTMC value (Strict)."""
        from repro.core import strict_exponential_throughput
        from repro.distributions import Exponential

        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.5])
        tpn = build_strict_tpn(mp)
        rho = strict_exponential_throughput(mp)
        times = sample_times(
            tpn, 20_000, lambda mean: Exponential(mean),
            np.random.default_rng(3),
        )
        est = dater_throughput(tpn, 20_000, times)
        assert est == pytest.approx(rho, rel=0.03)

    def test_monotonicity_in_times(self):
        """Theorem 5's engine: larger durations → later firings, pointwise."""
        mp = make_mapping([[0], [1, 2]], seed=2)
        tpn = build_overlap_tpn(mp)
        rng = np.random.default_rng(0)
        base = np.abs(rng.normal(1.0, 0.3, (tpn.n_transitions, 60)))
        bigger = base * rng.uniform(1.0, 1.5, size=base.shape)
        d1 = dater_evolution(tpn, 60, base)
        d2 = dater_evolution(tpn, 60, bigger)
        assert (d2 >= d1 - 1e-12).all()

    def test_input_validation(self):
        mp = make_mapping([[0]])
        tpn = build_overlap_tpn(mp)
        with pytest.raises(ValueError):
            dater_evolution(tpn, 0)
        with pytest.raises(StructuralError):
            dater_evolution(tpn, 3, np.ones((99, 3)))
