"""Kernel-layer equivalence tests.

The vectorized reachability BFS, the simulator fast path and the parallel
replication runner are all re-implementations of seed code kept in-tree
as reference oracles; these tests pin them to the oracles bit-for-bit,
on hand-built nets, on builder output, and on randomly generated bounded
event graphs.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.petri import (
    build_overlap_tpn,
    build_strict_tpn,
    explore,
    explore_reference,
)
from repro.petri.net import TimedEventGraph
from repro.petri.reachability import MAX_PLACE_BOUND
from repro.sim import replicate, simulate_tpn
from repro.types import PlaceKind, TransitionKind

from tests.conftest import make_mapping


def random_event_graph(seed: int, *, n_transitions: int = 8) -> TimedEventGraph:
    """A random strongly connected (hence bounded) timed event graph.

    A token ring over all transitions plus random chord places; every
    chord closes a cycle through the ring, so every place sits on a
    token-invariant circuit and the reachable marking set is finite.
    """
    r = np.random.default_rng(seed)
    net = TimedEventGraph(n_rows=1, n_columns=n_transitions)
    for t in range(n_transitions):
        net.add_transition(
            TransitionKind.COMPUTE, t, 0, t, ("cpu", t), float(r.uniform(0.5, 2.0))
        )
    for t in range(n_transitions):
        net.add_place(
            t, (t + 1) % n_transitions, int(r.integers(0, 3)), PlaceKind.FLOW
        )
    for _ in range(int(r.integers(2, 7))):
        src, dst = r.integers(0, n_transitions, size=2)
        net.add_place(int(src), int(dst), int(r.integers(0, 2)), PlaceKind.CAPACITY)
    return net


def assert_same_reachability(a, b) -> None:
    assert a.states == b.states
    assert a.arcs == b.arcs
    assert a.initial == b.initial
    assert a.n_places == b.n_places


class TestIncidenceKernel:
    def test_matrices_match_adjacency(self):
        tpn = build_strict_tpn(make_mapping([[0], [1, 2]], seed=4))
        cons, prod = tpn.incidence_matrices()
        assert cons.dtype == np.int8 and prod.dtype == np.int8
        assert cons.shape == (tpn.n_transitions, tpn.n_places)
        for t in range(tpn.n_transitions):
            assert sorted(np.nonzero(cons[t])[0].tolist()) == sorted(tpn.in_places[t])
            assert sorted(np.nonzero(prod[t])[0].tolist()) == sorted(tpn.out_places[t])
        # each place has exactly one producer and one consumer
        assert (cons.sum(axis=0) == 1).all()
        assert (prod.sum(axis=0) == 1).all()

    def test_delta_is_firing_update(self):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        kern = tpn.kernel
        m = tpn.initial_marking()
        for t in range(tpn.n_transitions):
            expected = m.copy()
            expected[tpn.in_places[t]] -= 1
            expected[tpn.out_places[t]] += 1
            assert (m + kern.delta[t] == expected).all()

    def test_flat_adjacency_roundtrip(self):
        tpn = build_overlap_tpn(make_mapping([[0], [1, 2]]))
        kern = tpn.kernel
        assert kern.in_places_list() == tpn.in_places
        assert kern.out_places_list() == tpn.out_places
        assert kern.place_src.tolist() == [p.src for p in tpn.places]
        assert kern.place_dst.tolist() == [p.dst for p in tpn.places]

    def test_enabled_matches_marking_semantics(self):
        tpn = random_event_graph(0)
        kern = tpn.kernel
        m = tpn.initial_marking().astype(np.int16)
        mask = kern.enabled(m[None, :])[0]
        for t in range(tpn.n_transitions):
            expected = all(m[p] > 0 for p in tpn.in_places[t])
            assert bool(mask[t]) == expected


class TestExploreEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_event_graphs(self, seed):
        tpn = random_event_graph(seed, n_transitions=int(4 + seed % 5))
        ref = explore_reference(tpn, max_states=50_000)
        vec = explore(tpn, max_states=50_000)
        assert_same_reachability(vec, ref)

    @pytest.mark.parametrize(
        "teams", [[[0], [1]], [[0], [1, 2]], [[0, 1], [2, 3]], [[0], [1, 2], [3, 4]]]
    )
    @pytest.mark.parametrize("seed", [None, 2])
    def test_built_strict_nets(self, teams, seed):
        tpn = build_strict_tpn(make_mapping(teams, seed=seed))
        assert_same_reachability(
            explore(tpn, max_states=100_000),
            explore_reference(tpn, max_states=100_000),
        )

    def test_flat_arcs_consistent(self):
        tpn = build_strict_tpn(make_mapping([[0], [1, 2]], seed=4))
        reach = explore(tpn)
        src, trans, dst = reach.flat_arcs()
        rebuilt = [[] for _ in range(reach.n_states)]
        for s, t, s2 in zip(src.tolist(), trans.tolist(), dst.tolist()):
            rebuilt[s].append((t, s2))
        assert rebuilt == reach.arcs

    def test_state_space_limit_matches(self):
        from repro.exceptions import StateSpaceLimitError

        tpn = build_strict_tpn(make_mapping([[0], [1, 2], [3, 4]]))
        with pytest.raises(StateSpaceLimitError):
            explore(tpn, max_states=10)
        with pytest.raises(StateSpaceLimitError):
            explore_reference(tpn, max_states=10)


class TestPlaceBoundValidation:
    """Regression: bounds above 255 used to alias distinct markings onto
    the same uint8 key, silently merging states."""

    @pytest.mark.parametrize("explorer", [explore, explore_reference])
    @pytest.mark.parametrize("bad", [0, -1, 256, 300, 1000])
    def test_out_of_range_bound_rejected(self, explorer, bad):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        with pytest.raises(ValueError, match="place_bound"):
            explorer(tpn, place_bound=bad)

    @pytest.mark.parametrize("explorer", [explore, explore_reference])
    def test_max_valid_bound_accepted(self, explorer):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        result = explorer(tpn, place_bound=MAX_PLACE_BOUND)
        assert result.n_states > 0


class TestSimulatorEngines:
    @pytest.mark.parametrize("law", ["exponential", "uniform"])
    @pytest.mark.parametrize("builder", [build_strict_tpn, build_overlap_tpn])
    def test_fast_matches_reference_event_for_event(self, law, builder):
        tpn = builder(make_mapping([[0], [1, 2]], seed=3))
        ref = simulate_tpn(tpn, n_datasets=300, law=law, seed=99, engine="reference")
        fast = simulate_tpn(tpn, n_datasets=300, law=law, seed=99, engine="fast")
        assert fast.n_events == ref.n_events
        assert np.array_equal(fast.completion_times, ref.completion_times)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_mappings_match(self, seed):
        tpn = build_strict_tpn(make_mapping([[0], [1, 2], [3, 4]], seed=seed))
        ref = simulate_tpn(tpn, n_datasets=150, seed=seed, engine="reference")
        fast = simulate_tpn(tpn, n_datasets=150, seed=seed, engine="fast")
        assert fast.n_events == ref.n_events
        assert np.array_equal(fast.completion_times, ref.completion_times)

    def test_throttle_none_matches(self):
        tpn = build_overlap_tpn(make_mapping([[0], [1]]))
        ref = simulate_tpn(
            tpn, n_datasets=100, seed=1, throttle=None, engine="reference"
        )
        fast = simulate_tpn(tpn, n_datasets=100, seed=1, throttle=None, engine="fast")
        assert np.array_equal(fast.completion_times, ref.completion_times)

    def test_unknown_engine_rejected(self):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        with pytest.raises(ValueError, match="engine"):
            simulate_tpn(tpn, n_datasets=1, engine="turbo")


def _replication_run(tpn, rng):
    return simulate_tpn(tpn, n_datasets=120, rng=rng)


class TestParallelReplicate:
    def test_n_jobs_bit_identical(self):
        tpn = build_strict_tpn(make_mapping([[0], [1, 2]], seed=5))
        run = partial(_replication_run, tpn)
        serial = replicate(run, n_replications=8, seed=17)
        parallel = replicate(run, n_replications=8, seed=17, n_jobs=2)
        assert parallel == serial  # frozen dataclass: exact float equality

    def test_n_jobs_capped_by_replications(self):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        run = partial(_replication_run, tpn)
        assert replicate(run, n_replications=1, seed=3, n_jobs=8) == replicate(
            run, n_replications=1, seed=3
        )

    def test_unpicklable_run_falls_back_to_serial(self):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        run = lambda rng: simulate_tpn(tpn, n_datasets=50, rng=rng)  # noqa: E731
        serial = replicate(run, n_replications=3, seed=2)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            parallel = replicate(run, n_replications=3, seed=2, n_jobs=4)
        assert parallel == serial

    def test_invalid_n_jobs(self):
        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        with pytest.raises(ValueError, match="n_jobs"):
            replicate(partial(_replication_run, tpn), n_replications=2, n_jobs=0)


class TestRowBlockedMatmul:
    def _naive(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = a.shape[0]
        out = np.full((n, n), -np.inf)
        for i in range(n):
            for j in range(n):
                out[i, j] = np.max(a[i, :] + b[:, j])
        return out

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_naive(self, seed):
        from repro.maxplus.matrix import MaxPlusMatrix

        r = np.random.default_rng(seed)
        n = 17
        a = r.uniform(-3, 3, (n, n))
        b = r.uniform(-3, 3, (n, n))
        a[r.random((n, n)) < 0.4] = -np.inf
        b[r.random((n, n)) < 0.4] = -np.inf
        got = (MaxPlusMatrix(a) @ MaxPlusMatrix(b)).array
        assert np.array_equal(got, self._naive(a, b))

    def test_blocking_is_invisible(self, monkeypatch):
        from repro.maxplus.matrix import MaxPlusMatrix

        r = np.random.default_rng(9)
        a = MaxPlusMatrix(r.uniform(0, 5, (23, 23)))
        whole = (a @ a).array
        # Shrink the block budget so the product runs one row at a time.
        monkeypatch.setattr(MaxPlusMatrix, "_BLOCK_ELEMENTS", 1)
        blocked = (a @ a).array
        assert np.array_equal(whole, blocked)


class TestErrorParity:
    """Both explorers must fail identically, in type and position."""

    def _unbounded_net(self) -> TimedEventGraph:
        """t0 free-runs on a self place; t1 never fires, so the flow
        place t0→t1 accumulates without bound."""
        net = TimedEventGraph(n_rows=1, n_columns=2)
        t0 = net.add_transition(TransitionKind.COMPUTE, 0, 0, 0, ("cpu", 0), 1.0)
        t1 = net.add_transition(TransitionKind.COMPUTE, 1, 0, 1, ("cpu", 1), 1.0)
        net.add_place(t0, t0, 1, PlaceKind.PROC_CYCLE)
        net.add_place(t0, t1, 0, PlaceKind.FLOW)
        net.add_place(t1, t1, 0, PlaceKind.PROC_CYCLE)  # never marked
        return net

    @pytest.mark.parametrize(
        "max_states,place_bound",
        [(100_000, 5), (4, 64), (6, 5), (5, 4)],
    )
    def test_same_exception_on_unbounded_net(self, max_states, place_bound):
        net = self._unbounded_net()
        with pytest.raises(Exception) as ref_err:
            explore_reference(net, max_states=max_states, place_bound=place_bound)
        with pytest.raises(Exception) as vec_err:
            explore(net, max_states=max_states, place_bound=place_bound)
        assert type(vec_err.value) is type(ref_err.value)

    def test_counted_out_of_range_rejected(self):
        """Regression: negative indices used to wrap via the numpy mask
        and silently count the wrong transition."""
        from repro.exceptions import StructuralError
        from repro.markov import tpn_throughput_exponential

        tpn = build_strict_tpn(make_mapping([[0], [1]]))
        with pytest.raises(StructuralError, match="counted"):
            tpn_throughput_exponential(tpn, counted=[-1])
        with pytest.raises(StructuralError, match="counted"):
            tpn_throughput_exponential(tpn, counted=[tpn.n_transitions])

    def test_bench_cli_rejects_nonpositive_repeats(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["bench", "--quick", "--repeats", "0"])
        assert err.value.code == 2


class TestMarkovBuilderVectorized:
    def test_ctmc_matches_loop_assembly(self):
        from repro.markov.builder import ctmc_from_tpn, exponential_rates
        from repro.markov.ctmc import CTMC

        tpn = build_strict_tpn(make_mapping([[0], [1, 2]], seed=4))
        rates = exponential_rates(tpn)
        chain, reach = ctmc_from_tpn(tpn)
        rows, cols, vals = [], [], []
        for s, moves in enumerate(reach.arcs):
            for t, s2 in moves:
                if s2 == s:
                    continue
                rows.append(s)
                cols.append(s2)
                vals.append(float(rates[t]))
        expected = CTMC(reach.n_states, rows, cols, vals)
        diff = (chain.rate_matrix - expected.rate_matrix).toarray()
        assert np.abs(diff).max() == 0.0
