"""Chaos suite for the fault-tolerant evaluation service.

Every recovery path the service claims is proven here against real
injected faults (`repro.service.faults`): client deadlines against hung
and delayed servers, retry/backoff absorbing dropped replies, bounded
admission shedding bursts with a ``retry_after`` contract, worker-crash
pool rebuilds under a restart budget (and the degrade-to-serial
endgame), torn disk-cache tails repaired on reload, and — the
end-to-end acceptance — ``campaign run --via-service`` producing a
byte-identical store under faults, including failing mid-run and
resuming.
"""

from __future__ import annotations

import contextlib
import random
import socket
import threading
import time

import pytest

from repro.campaign import ResultStore, get_preset, run_campaign
from repro.evaluate import TaskFailure, evaluate
from repro.exceptions import (
    CampaignError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.mapping.examples import single_communication
from repro.service import (
    CoalescingQueue,
    DiskScoreCache,
    EvaluationEngine,
    FaultInjector,
    RetryPolicy,
    ServiceClient,
    serve_in_thread,
    wait_for_service,
)

from test_service import pattern_task, smoke_tasks


@contextlib.contextmanager
def served(engine: EvaluationEngine, **kwargs):
    """A running server around ``engine``; yields the server."""
    server, thread = serve_in_thread(engine, **kwargs)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        engine.close()
        thread.join(timeout=5)


@contextlib.contextmanager
def silent_listener():
    """A TCP endpoint that accepts connections but never says a word.

    The pathological peer of the deadline tests: a half-started or
    wedged server whose accept queue works while its handlers don't.
    """
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    srv.settimeout(0.05)
    stop = threading.Event()
    conns: list[socket.socket] = []

    def run() -> None:
        while not stop.is_set():
            try:
                conn, _ = srv.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conns.append(conn)  # read nothing, reply nothing

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        yield srv.getsockname()
    finally:
        stop.set()
        thread.join(timeout=5)
        for conn in conns:
            conn.close()
        srv.close()


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.25
        )
        a = [policy.delay(k, rng=random.Random(7)) for k in range(4)]
        b = [policy.delay(k, rng=random.Random(7)) for k in range(4)]
        assert a == b  # same seed, same schedule
        # Exponential growth inside the jitter envelope, capped at max.
        for k, d in enumerate(a):
            base = min(1.0, 0.1 * 2.0**k)
            assert 0.75 * base <= d <= 1.25 * base

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        assert policy.delay(0) == 0.01
        assert policy.delay(0, retry_after=0.5) == 0.5

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay(10) == 0.4

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_counted_budget(self):
        inj = FaultInjector({"drop": 2})
        assert inj.take("drop") and inj.take("drop")
        assert not inj.take("drop")  # budget spent
        assert not inj.take("crash")  # never armed
        assert inj.fired == {
            "drop": 2, "delay": 0, "crash": 0, "torn_tail": 0,
            "hang": 0, "flap": 0,
        }
        assert inj.stats()["armed"] == {}

    def test_spec_parsing(self):
        inj = FaultInjector.from_spec("drop:2, crash:1, delay:3:0.5")
        assert inj.armed("drop") == 2
        assert inj.armed("crash") == 1
        assert inj.armed("delay") == 3
        assert inj.delay_s == 0.5
        with pytest.raises(ServiceError, match="unknown fault kind"):
            FaultInjector.from_spec("meteor:1")
        with pytest.raises(ServiceError, match="fault spec"):
            FaultInjector.from_spec("drop")
        with pytest.raises(ServiceError, match="third SECONDS field"):
            FaultInjector.from_spec("drop:1:0.5")
        with pytest.raises(ServiceError, match="count"):
            FaultInjector.from_spec("drop:many")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "drop:1")
        assert FaultInjector.from_env().armed("drop") == 1

    def test_tear_cache_tail_halves_the_final_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"fingerprint": "aa", "value": 1.0}\n'
                         b'{"fingerprint": "bb", "value": 2.0}\n')
        assert FaultInjector().tear_cache_tail(path)
        raw = path.read_bytes()
        assert raw.startswith(b'{"fingerprint": "aa", "value": 1.0}\n')
        assert not raw.endswith(b"\n")  # the tail is mid-record
        # The crash-safe loader drops exactly the torn record.
        cache = DiskScoreCache(path)
        assert len(cache) == 1
        assert cache.dropped_lines == 1
        # Nothing to tear on an empty file.
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert not FaultInjector().tear_cache_tail(empty)
        assert not FaultInjector().tear_cache_tail(tmp_path / "missing")


class TestFaultSpecValidation:
    """Spec-parse validation: bad clauses fail loudly, naming themselves."""

    def test_zero_count_rejected_naming_clause(self):
        with pytest.raises(ServiceError, match=r"drop:0.*count"):
            FaultInjector.from_spec("drop:0")

    def test_negative_count_rejected_naming_clause(self):
        with pytest.raises(ServiceError, match=r"crash:-2.*count"):
            FaultInjector.from_spec("drop:1, crash:-2")

    def test_negative_seconds_rejected_naming_clause(self):
        with pytest.raises(ServiceError, match=r"delay:1:-0\.5"):
            FaultInjector.from_spec("delay:1:-0.5")
        with pytest.raises(ServiceError, match=r"hang:1:-1"):
            FaultInjector.from_spec("hang:1:-1")

    def test_nan_seconds_rejected(self):
        with pytest.raises(ServiceError, match="seconds"):
            FaultInjector.from_spec("delay:1:nan")

    def test_non_numeric_seconds_rejected(self):
        with pytest.raises(ServiceError, match="seconds"):
            FaultInjector.from_spec("hang:1:soon")

    def test_hang_with_seconds_parses(self):
        inj = FaultInjector.from_spec("hang:1:2.5")
        assert inj.armed("hang") == 1
        assert inj.hang_s == 2.5

    def test_hang_default_seconds(self):
        from repro.service.faults import DEFAULT_HANG_S

        inj = FaultInjector.from_spec("hang:2")
        assert inj.armed("hang") == 2
        assert inj.hang_s == DEFAULT_HANG_S

    def test_flap_parses_but_rejects_seconds_field(self):
        assert FaultInjector.from_spec("flap:3").armed("flap") == 3
        with pytest.raises(ServiceError, match="third SECONDS field"):
            FaultInjector.from_spec("flap:2:1.0")


class TestHangAndFlap:
    def test_hang_if_armed_sleeps_once(self):
        inj = FaultInjector({"hang": 1}, hang_s=0.05)
        start = time.monotonic()
        assert inj.hang_if_armed() is True
        assert time.monotonic() - start >= 0.05
        assert inj.hang_if_armed() is False  # budget spent
        assert inj.fired["hang"] == 1

    def test_flap_alternates_and_counts_failures_only(self):
        inj = FaultInjector({"flap": 2})
        # Sever, pass, sever, pass... until the budget is spent.
        assert inj.flap_now() is True
        assert inj.flap_now() is False
        assert inj.flap_now() is True
        assert inj.flap_now() is False
        assert inj.flap_now() is False  # budget spent: stays healthy
        assert inj.fired["flap"] == 2

    def test_server_hang_stalls_one_work_op(self):
        engine = EvaluationEngine()
        faults = FaultInjector({"hang": 1}, hang_s=0.15)
        with served(engine, port=0, faults=faults) as server:
            host, port = server.endpoint
            with ServiceClient(host, port, timeout=10.0) as client:
                start = time.monotonic()
                first = client.evaluate(pattern_task())
                stalled = time.monotonic() - start
                second = client.evaluate(pattern_task(3, 2))
        assert first is not None and second is not None
        assert stalled >= 0.15
        assert faults.fired["hang"] == 1

    def test_server_flap_severs_then_recovers(self):
        engine = EvaluationEngine()
        faults = FaultInjector({"flap": 1})
        with served(engine, port=0, faults=faults) as server:
            host, port = server.endpoint
            with ServiceClient(host, port, retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
            )) as client:
                value = client.evaluate(pattern_task())
        assert value is not None  # the retry rode out the severed attempt
        assert faults.fired["flap"] == 1


# ----------------------------------------------------------------------
# Coalescing queue under failure (satellite regression)
# ----------------------------------------------------------------------
class TestQueueFailureDiscipline:
    def test_resolve_is_idempotent(self):
        queue = CoalescingQueue()
        fut, _ = queue.claim("k")
        queue.resolve("k", fut, 1.0)
        queue.resolve("k", fut, 2.0)  # the failure sweep re-resolving
        assert fut.result(timeout=1) == 1.0  # first resolution wins
        assert queue.in_flight() == 0

    def test_leader_exception_frees_all_followers(self, monkeypatch):
        # A leader whose evaluator pass raises (a bug, not a recorded
        # task failure) must resolve every claimed key: concurrent
        # identical submissions all finish — failure-typed — and the
        # queue drains. This is the poisoned-leader regression.
        import repro.service.workers as workers_mod

        engine = EvaluationEngine()
        task = pattern_task(2, 3)

        def boom(*args, **kwargs):
            raise RuntimeError("evaluator exploded")

        monkeypatch.setattr(workers_mod, "evaluate_tasks", boom)
        n = 6
        barrier = threading.Barrier(n)
        outcomes: list[tuple[str, object]] = []
        lock = threading.Lock()

        def submit() -> None:
            barrier.wait()
            try:
                (value,), _stats = engine.run_batch([task])
            except RuntimeError as exc:
                with lock:
                    outcomes.append(("raised", str(exc)))
            else:
                with lock:
                    outcomes.append(("value", value))

        threads = [threading.Thread(target=submit) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(outcomes) == n  # nobody hung
        assert engine.queue.in_flight() == 0  # nothing stranded
        raised = [o for o in outcomes if o[0] == "raised"]
        assert raised  # every leader propagated the bug...
        for kind, value in outcomes:
            if kind == "value":  # ...and every follower got a failure
                assert isinstance(value, TaskFailure)
                assert value.error == "RuntimeError"
        # With the bug gone the same engine serves the same key again.
        monkeypatch.undo()
        (value,), stats = engine.run_batch([task])
        assert not isinstance(value, TaskFailure)
        assert stats["executed"] == 1


# ----------------------------------------------------------------------
# Client deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_hung_server_raises_service_timeout(self):
        with silent_listener() as (host, port):
            client = ServiceClient(host, port, timeout=0.3)
            t0 = time.monotonic()
            with pytest.raises(ServiceTimeout, match="no reply within"):
                client.ping()
            assert time.monotonic() - t0 < 3.0
            client.close()

    def test_per_op_timeout_overrides_client_default(self):
        # timeout=None on the client (wait forever) must still be
        # overridable per request — the deadline stays armed across the
        # whole exchange, not just the connect.
        with silent_listener() as (host, port):
            client = ServiceClient(host, port, connect_timeout=5.0)
            assert client.timeout is None
            t0 = time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.ping(timeout=0.3)
            assert time.monotonic() - t0 < 3.0
            client.close()

    def test_delayed_reply_trips_the_deadline_then_recovers(self):
        faults = FaultInjector({"delay": 1}, delay_s=1.0)
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            host, port = server.endpoint
            with ServiceClient(host, port, timeout=5.0) as client:
                t0 = time.monotonic()
                with pytest.raises(ServiceTimeout):
                    client.evaluate(pattern_task(2, 2), timeout=0.2)
                assert time.monotonic() - t0 < 1.0  # beat the 1 s delay
                # Budget spent: the retried request answers normally,
                # from work the dropped-deadline attempt already paid
                # for (the engine memo), on a fresh connection.
                value = client.evaluate(pattern_task(2, 2))
                assert value == evaluate(
                    single_communication(2, 2, comm_time=1.0),
                    solver="deterministic",
                )
        assert faults.fired["delay"] == 1

    def test_wait_for_service_respects_overall_deadline(self):
        # A server that accepts but never replies must exhaust
        # wait_for_service's total budget, not hang it on one socket.
        with silent_listener() as (host, port):
            t0 = time.monotonic()
            with pytest.raises(ServiceError):
                wait_for_service(host, port, timeout=1.0, interval=0.1)
            assert time.monotonic() - t0 < 4.0

    def test_wait_for_service_returns_first_ping(self):
        engine = EvaluationEngine()
        with served(engine) as server:
            host, port = server.endpoint
            reply = wait_for_service(host, port, timeout=5.0)
        assert reply["version"]
        assert reply["counters"]["requests"]["units"] == 0


# ----------------------------------------------------------------------
# Retry / backoff against dropped replies
# ----------------------------------------------------------------------
class TestRetries:
    def test_dropped_replies_absorbed_by_retries(self):
        faults = FaultInjector({"drop": 2})
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=policy) as client:
                value = client.evaluate(pattern_task(2, 3))
        assert value == evaluate(
            single_communication(2, 3, comm_time=1.0), solver="deterministic"
        )
        assert client.retries == 2  # one per dropped reply
        assert faults.fired["drop"] == 2
        # Idempotency: the server did the work once; the two retried
        # requests were answered by the memo, not recomputed.
        assert engine.executed == 1
        assert engine.memo_hits == 2

    def test_retries_exhausted_raises_the_transient_error(self):
        faults = FaultInjector({"drop": 5})
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            policy = RetryPolicy(max_attempts=2, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=policy) as client:
                with pytest.raises(ServiceUnavailable, match="closed"):
                    client.evaluate(pattern_task(2, 3))
        assert client.retries == 1
        assert faults.armed("drop") == 3  # 2 attempts consumed 2 drops

    def test_explicit_retry_none_disables_the_client_policy(self):
        faults = FaultInjector({"drop": 1})
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=policy) as client:
                with pytest.raises(ServiceUnavailable):
                    client.request(
                        {"op": "evaluate", "task": pattern_task(2, 3)},
                        retry=None,
                    )
        assert client.retries == 0


# ----------------------------------------------------------------------
# Bounded admission / load shedding
# ----------------------------------------------------------------------
class TestOverload:
    def test_burst_is_shed_with_retry_after_within_deadline(self):
        engine = EvaluationEngine()
        with served(engine, capacity=1, retry_after=0.05) as server:
            host, port = server.endpoint
            slow = pattern_task(3, 4, solver="exponential")
            slow["model"] = "strict"  # ~0.3 s marking chain
            holder_value: dict = {}

            def hold() -> None:
                with ServiceClient(host, port) as c:
                    holder_value["value"] = c.evaluate(slow)

            holder = threading.Thread(target=hold)
            holder.start()
            deadline = time.monotonic() + 5
            while server.in_flight == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.in_flight >= 1

            # 1. A no-retry client is rejected instantly, typed, with
            #    the server's back-off hint — far inside its deadline.
            with ServiceClient(host, port, timeout=5.0) as client:
                t0 = time.monotonic()
                with pytest.raises(ServiceOverloaded) as excinfo:
                    client.evaluate(pattern_task(2, 2))
                elapsed = time.monotonic() - t0
                assert elapsed < 1.0  # shed, not queued
                assert excinfo.value.retry_after == 0.05
                assert server.shed >= 1

                # 2. The control plane stays reachable while overloaded.
                assert client.ping()["version"]
                stats = client.stats()
                assert stats["capacity"] == 1
                assert stats["shed"] >= 1
                assert stats["retry_after"] == 0.05
                assert stats["stopping"] is False

            # 3. A client with a retry policy rides the burst out:
            #    back off (honouring retry_after), get admitted, finish.
            policy = RetryPolicy(
                max_attempts=20, base_delay=0.05, max_delay=0.5, seed=0
            )
            with ServiceClient(host, port, retry=policy) as patient:
                value = patient.evaluate(pattern_task(2, 2))
            assert value == evaluate(
                single_communication(2, 2, comm_time=1.0),
                solver="deterministic",
            )
            holder.join(timeout=30)
            assert "value" in holder_value

    def test_ping_and_stats_surface_liveness(self):
        engine = EvaluationEngine()
        with served(engine, capacity=3, retry_after=0.5) as server:
            with ServiceClient(*server.endpoint) as client:
                reply = client.ping()
                assert reply["uptime_s"] >= 0.0
                assert reply["in_flight"] >= 1  # the ping itself
                assert reply["counters"]["pool"] == {
                    "n_jobs": 1, "restarts": 0, "max_restarts": 3,
                    "degraded": False, "active": False,
                }
                stats = client.stats()
                assert stats["capacity"] == 3
                assert stats["shed"] == 0
                assert stats["counters"]["faults"] is None


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------
class TestWorkerCrashRecovery:
    def test_crashed_worker_pool_is_rebuilt_once(self):
        faults = FaultInjector({"crash": 1})
        engine = EvaluationEngine(n_jobs=2, faults=faults)
        tasks = [pattern_task(2, 3), pattern_task(3, 2)]
        try:
            results, stats = engine.run_batch(tasks)
        finally:
            engine.close()
        expected = [
            evaluate(single_communication(2, 3, comm_time=1.0),
                     solver="deterministic"),
            evaluate(single_communication(3, 2, comm_time=1.0),
                     solver="deterministic"),
        ]
        assert results == expected  # nothing lost to the crash
        assert stats["failures"] == 0
        assert engine.pool_restarts == 1  # counter-asserted recovery
        assert not engine.degraded
        assert faults.fired["crash"] == 1
        assert engine.status()["pool"]["restarts"] == 1

    def test_restart_budget_exhaustion_degrades_to_serial(self):
        faults = FaultInjector({"crash": 10})
        engine = EvaluationEngine(
            n_jobs=2, max_pool_restarts=2, faults=faults
        )
        tasks = [pattern_task(2, 3), pattern_task(3, 2)]
        try:
            results, stats = engine.run_batch(tasks)
            # Degraded: no new pool is ever spawned, crash faults can't
            # fire (they need a pool), and requests keep being served.
            assert engine._get_pool() is None
            again, stats2 = engine.run_batch(
                [pattern_task(2, 2), pattern_task(4, 2)]
            )
        finally:
            engine.close()
        assert not any(isinstance(r, TaskFailure) for r in results)
        assert not any(isinstance(r, TaskFailure) for r in again)
        assert engine.degraded
        assert engine.pool_restarts == engine.max_pool_restarts + 1 == 3
        assert faults.fired["crash"] == 3  # one per discarded pool
        status = engine.status()["pool"]
        assert status["degraded"] and status["active"] is False

    def test_crash_recovery_over_the_wire(self):
        # End to end: a served engine whose worker dies mid-batch still
        # answers the request; the operator sees the restart in stats.
        faults = FaultInjector({"crash": 1})
        engine = EvaluationEngine(n_jobs=2, faults=faults)
        with served(engine) as server:
            with ServiceClient(*server.endpoint) as client:
                values, failures, _stats = client.evaluate_batch(
                    [pattern_task(2, 3), pattern_task(3, 2)]
                )
                assert failures == []
                assert all(v is not None for v in values)
                stats = client.stats()
                assert stats["counters"]["pool"]["restarts"] == 1
                assert stats["counters"]["faults"]["fired"]["crash"] == 1


# ----------------------------------------------------------------------
# Torn disk-cache tail
# ----------------------------------------------------------------------
class TestTornTailRecovery:
    def test_torn_tail_recomputes_only_the_lost_record(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        tasks = smoke_tasks()
        faults = FaultInjector({"torn_tail": 1})
        engine = EvaluationEngine(disk=DiskScoreCache(path), faults=faults)
        first, _ = engine.run_batch(tasks)
        engine.close()  # "crash" during the final append
        assert faults.fired["torn_tail"] == 1

        reloaded = DiskScoreCache(path)
        assert reloaded.dropped_lines == 1
        assert len(reloaded) == len(tasks) - 1

        restarted = EvaluationEngine(disk=reloaded)
        second, stats = restarted.run_batch(tasks)
        restarted.close()
        assert second == first  # bit-identical answers
        assert stats["disk_hits"] == len(tasks) - 1
        assert stats["executed"] == 1  # only the torn record recomputed
        # The repair is durable: a third load sees every record intact.
        final = DiskScoreCache(path)
        assert len(final) == len(tasks)
        assert final.dropped_lines == 0


# ----------------------------------------------------------------------
# Campaigns through a faulty service (the end-to-end acceptance)
# ----------------------------------------------------------------------
class TestChaosCampaign:
    def test_recovered_faults_keep_the_store_byte_identical(self, tmp_path):
        spec = get_preset("smoke")
        clean = tmp_path / "clean.jsonl"
        run_campaign(spec, ResultStore(clean))

        faults = FaultInjector({"drop": 2})
        engine = EvaluationEngine()
        chaotic = tmp_path / "chaotic.jsonl"
        with served(engine, faults=faults) as server:
            policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=policy) as client:
                summary = run_campaign(
                    spec, ResultStore(chaotic), client=client
                )
        assert summary.executed == 4
        assert client.retries == 2  # the faults actually fired...
        assert faults.armed("drop") == 0
        # ...and the store is indistinguishable from a fault-free run.
        assert chaotic.read_bytes() == clean.read_bytes()

    def test_failed_run_resumes_to_byte_identical_store(self, tmp_path):
        spec = get_preset("smoke")
        clean = tmp_path / "clean.jsonl"
        run_campaign(spec, ResultStore(clean))

        faults = FaultInjector({"drop": 8})
        engine = EvaluationEngine()
        chaotic = tmp_path / "chaotic.jsonl"
        with served(engine, faults=faults) as server:
            # Phase 1: the drop budget outlasts the retry budget — the
            # run dies with a typed campaign error, leaving a valid
            # prefix of the clean store (possibly empty) on disk.
            short = RetryPolicy(max_attempts=2, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=short) as client:
                with pytest.raises(
                    CampaignError, match="service execution failed"
                ):
                    run_campaign(spec, ResultStore(chaotic), client=client)
            persisted = chaotic.read_bytes() if chaotic.exists() else b""
            assert clean.read_bytes().startswith(persisted)

            # Phase 2: resume with a budget that outlasts the faults.
            patient = RetryPolicy(max_attempts=10, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=patient) as client:
                summary = run_campaign(
                    spec, ResultStore(chaotic), client=client, resume=True
                )
        assert summary.executed + summary.skipped == 4
        assert faults.armed("drop") == 0  # all 8 faults were exercised
        assert chaotic.read_bytes() == clean.read_bytes()
        # The work behind the dropped replies was never redone: every
        # retried unit came from the engine's caches.
        assert engine.executed == 4

    def test_partial_store_resume_through_faulty_service(self, tmp_path):
        # An interrupted local run (first half of the store) resumed
        # through a fault-injected service completes byte-identically.
        spec = get_preset("smoke")
        clean = tmp_path / "clean.jsonl"
        run_campaign(spec, ResultStore(clean))
        lines = clean.read_bytes().splitlines(keepends=True)
        partial = tmp_path / "partial.jsonl"
        partial.write_bytes(b"".join(lines[:2]))

        faults = FaultInjector({"drop": 1})
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=0)
            with ServiceClient(*server.endpoint, retry=policy) as client:
                summary = run_campaign(
                    spec, ResultStore(partial), client=client, resume=True
                )
        assert summary.skipped == 2
        assert summary.executed == 2
        assert faults.fired["drop"] == 1
        assert partial.read_bytes() == clean.read_bytes()

    def test_deadline_failure_surfaces_as_typed_campaign_error(self, tmp_path):
        faults = FaultInjector({"delay": 5}, delay_s=1.0)
        engine = EvaluationEngine()
        with served(engine, faults=faults) as server:
            client = ServiceClient(
                *server.endpoint, timeout=0.2, retry=None
            )
            with pytest.raises(CampaignError, match="deadline exceeded"):
                run_campaign(
                    get_preset("smoke"),
                    ResultStore(tmp_path / "c.jsonl"),
                    client=client,
                )
            client.close()
