"""Tests for the static throughput evaluators (paper Section 4)."""

from __future__ import annotations

import pytest

from repro.core import (
    deterministic_throughput,
    overlap_component_dag,
    overlap_throughput,
    round_period,
    scc_rates_deterministic,
    tpn_throughput_classic,
    tpn_throughput_deterministic,
)
from repro.mapping import max_cycle_time
from repro.mapping.examples import example_a, single_communication
from repro.petri import build_overlap_tpn, build_strict_tpn

from tests.conftest import make_mapping


class TestUnreplicatedChains:
    """Without replication the critical resource dictates everything."""

    def test_overlap_is_max_resource(self):
        mp = make_mapping([[0], [1], [2]], works=[2.0, 5.0, 3.0], files=[1.0, 1.0])
        rho = deterministic_throughput(mp, "overlap")
        assert rho == pytest.approx(1.0 / 5.0)

    def test_overlap_comm_bound(self):
        mp = make_mapping([[0], [1]], works=[1.0, 1.0], files=[7.0])
        assert deterministic_throughput(mp, "overlap") == pytest.approx(1.0 / 7.0)

    def test_strict_sums_cycle(self):
        """Strict cycle-time of the middle processor: in + comp + out."""
        mp = make_mapping([[0], [1], [2]], works=[1.0, 2.0, 1.0], files=[3.0, 4.0])
        rho = deterministic_throughput(mp, "strict")
        assert rho == pytest.approx(1.0 / (3.0 + 2.0 + 4.0))

    def test_matches_mct_without_replication(self):
        for seed in range(5):
            mp = make_mapping([[0], [1], [2]], seed=seed)
            for model in ("overlap", "strict"):
                rho = deterministic_throughput(mp, model)
                mct = max_cycle_time(mp, model)
                assert rho == pytest.approx(1.0 / mct, rel=1e-9)


class TestReplication:
    def test_replicated_stage_scales(self):
        """Three identical processors triple the stage capacity."""
        mp = make_mapping([[0, 1, 2]], works=[3.0])
        assert deterministic_throughput(mp, "overlap") == pytest.approx(1.0)

    def test_single_comm_det(self):
        """u×v homogeneous communication: ρ = min(u,v)·λ (Overlap)."""
        for u, v in [(2, 3), (3, 4), (4, 5)]:
            mp = single_communication(u, v, comm_time=2.0)
            assert deterministic_throughput(mp, "overlap") == pytest.approx(
                min(u, v) / 2.0, rel=1e-6
            )

    def test_heterogeneous_speeds_sum(self):
        """Unbounded Overlap: a fast teammate is not slowed by a slow one."""
        mp = make_mapping(
            [[0], [1, 2]],
            works=[0.001, 2.0],
            files=[0.001],
            speeds=[1000.0, 4.0, 1.0],
        )
        rho = deterministic_throughput(mp, "overlap")
        # P1 completes its rows at 2 per unit (c=0.5), P2 at 0.5: each
        # handles half the stream, so z1 = 4, z2 = 1 → ρ = (4 + 1)/2... but
        # z is capped by upstream (fast). ρ = (min(4,…) + min(1,…))/2.
        assert rho == pytest.approx((4.0 + 1.0) / 2.0, rel=1e-3)

    def test_bottleneck_semantics_paced_by_slowest(self):
        mp = make_mapping(
            [[0], [1, 2]],
            works=[0.001, 2.0],
            files=[0.001],
            speeds=[1000.0, 4.0, 1.0],
        )
        rho = deterministic_throughput(mp, "overlap", semantics="bottleneck")
        # Finite buffers: everything paced by P2 (z = 2·(1/2) = 1).
        assert rho == pytest.approx(1.0, rel=1e-3)

    def test_unbounded_at_least_bottleneck(self):
        for seed in range(6):
            mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
            unb = deterministic_throughput(mp, "overlap")
            bot = deterministic_throughput(mp, "overlap", semantics="bottleneck")
            assert unb >= bot * (1 - 1e-12)


class TestTpnEvaluators:
    def test_overlap_tpn_matches_symbolic(self):
        """Unrolled-net evaluation == symbolic decomposition."""
        for seed in range(6):
            mp = make_mapping([[0], [1, 2], [3, 4, 5, 6]], seed=seed)
            tpn = build_overlap_tpn(mp)
            assert tpn_throughput_deterministic(tpn) == pytest.approx(
                overlap_throughput(mp, "deterministic"), rel=1e-9
            )

    def test_classic_equals_min_component(self):
        for seed in range(4):
            mp = make_mapping([[0], [1, 2], [3, 4, 5, 6]], seed=seed)
            tpn = build_overlap_tpn(mp)
            assert tpn_throughput_classic(tpn) == pytest.approx(
                overlap_throughput(mp, "deterministic", semantics="bottleneck"),
                rel=1e-9,
            )

    def test_strict_strongly_connected_classic(self):
        """On strongly connected nets both evaluators give m/P."""
        mp = make_mapping([[0], [1, 2], [3]], seed=3)
        tpn = build_strict_tpn(mp)
        assert tpn_throughput_deterministic(tpn) == pytest.approx(
            tpn_throughput_classic(tpn), rel=1e-9
        )

    def test_round_period_scales_with_rows(self):
        mp = make_mapping([[0, 1], [2, 3, 4]])
        tpn = build_overlap_tpn(mp)
        p = round_period(tpn)
        assert tpn.n_rows / p == pytest.approx(
            overlap_throughput(mp, "deterministic", semantics="bottleneck")
        )

    def test_scc_rates_shapes(self):
        mp = make_mapping([[0], [1, 2]])
        tpn = build_overlap_tpn(mp)
        comps, inner, effective = scc_rates_deterministic(tpn)
        assert len(comps) == len(inner) == len(effective)
        assert all(e <= i + 1e-12 for i, e in zip(inner, effective))

    def test_strict_slower_than_overlap(self):
        """Serialization can only hurt: ρ_strict <= ρ_overlap."""
        for seed in range(5):
            mp = make_mapping([[0], [1, 2], [3]], seed=seed)
            s = deterministic_throughput(mp, "strict")
            o = deterministic_throughput(mp, "overlap", semantics="bottleneck")
            assert s <= o * (1 + 1e-9)


class TestAgainstSimulation:
    @pytest.mark.parametrize("seed", range(4))
    def test_overlap_unbounded_vs_system_sim(self, seed):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
        from repro.sim.system_sim import simulate_system

        sim = simulate_system(
            mp, "overlap", n_datasets=60_000, law="deterministic", seed=1
        )
        assert sim.windowed_throughput(0.1, 0.45) == pytest.approx(
            deterministic_throughput(mp, "overlap"), rel=0.01
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_overlap_bottleneck_vs_tpn_sim(self, seed):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
        from repro.sim.tpn_sim import simulate_tpn

        tpn = build_overlap_tpn(mp)
        sim = simulate_tpn(tpn, n_datasets=20_000, law="deterministic", seed=1)
        assert sim.steady_state_throughput() == pytest.approx(
            deterministic_throughput(mp, "overlap", semantics="bottleneck"),
            rel=0.01,
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_strict_vs_both_sims(self, seed):
        mp = make_mapping([[0], [1, 2], [3]], seed=seed)
        from repro.sim.system_sim import simulate_system
        from repro.sim.tpn_sim import simulate_tpn

        rho = deterministic_throughput(mp, "strict")
        s1 = simulate_system(
            mp, "strict", n_datasets=30_000, law="deterministic", seed=2
        )
        s2 = simulate_tpn(
            build_strict_tpn(mp), n_datasets=20_000, law="deterministic", seed=2
        )
        assert s1.steady_state_throughput() == pytest.approx(rho, rel=0.01)
        assert s2.steady_state_throughput() == pytest.approx(rho, rel=0.01)


class TestExampleA:
    def test_overlap_equals_simulation(self):
        mp = example_a()
        rho = deterministic_throughput(mp, "overlap")
        from repro.sim.system_sim import simulate_system

        sim = simulate_system(
            mp, "overlap", n_datasets=60_000, law="deterministic", seed=3
        )
        assert sim.windowed_throughput(0.1, 0.45) == pytest.approx(rho, rel=0.01)

    def test_strict_has_no_critical_resource(self):
        """Example A's Strict period exceeds every resource cycle-time.

        The paper reports P = 230.7 > Mct = 215.8 on its (unrecoverable)
        numeric labels; the fixture values reproduce the qualitative
        phenomenon: the Strict critical cycle mixes resources, so the
        achieved throughput is strictly below the Mct bound.
        """
        mp = example_a()
        rho = deterministic_throughput(mp, "strict")
        mct = max_cycle_time(mp, "strict")
        gap = (1.0 / mct - rho) * mct
        assert gap > 0.005  # strictly no critical resource

    def test_overlap_has_critical_resource(self):
        """Same fixture, Overlap model: the Mct bound is tight (Table 1)."""
        mp = example_a()
        rho = deterministic_throughput(mp, "overlap", semantics="bottleneck")
        mct = max_cycle_time(mp, "overlap")
        assert rho == pytest.approx(1.0 / mct, rel=1e-6)

    def test_dag_diagnostics(self):
        dag = overlap_component_dag(example_a(), "deterministic")
        kinds = {c.kind for c in dag.components}
        assert kinds == {"cpu", "comm"}
        assert dag.throughput > 0
        assert dag.bottleneck().inner_z == min(c.inner_z for c in dag.components)
