"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Application, Mapping, Platform


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_mapping(
    teams: list[list[int]],
    *,
    works: list[float] | None = None,
    files: list[float] | None = None,
    speeds: list[float] | None = None,
    bandwidth=1.0,
    seed: int | None = None,
) -> Mapping:
    """Compact mapping builder used across the suite.

    Defaults to unit works/files/speeds on a uniform network; pass
    ``seed`` for a reproducible fully heterogeneous platform instead.
    """
    n = len(teams)
    m = max(p for t in teams for p in t) + 1
    works = works if works is not None else [1.0] * n
    files = files if files is not None else [1.0] * (n - 1)
    app = Application.from_work(works, files)
    if seed is not None:
        r = np.random.default_rng(seed)
        speeds = r.uniform(0.5, 2.0, m).tolist()
        bw = r.uniform(0.5, 2.0, (m, m))
        bw = np.triu(bw, 1)
        bw = bw + bw.T + np.eye(m)
        platform = Platform.from_speeds(speeds, bw)
    else:
        speeds = speeds if speeds is not None else [1.0] * m
        platform = Platform.from_speeds(speeds, bandwidth)
    return Mapping(app, platform, teams)


@pytest.fixture
def two_stage_2x3() -> Mapping:
    """Two stages replicated 2 and 3 — the smallest interesting pattern."""
    return make_mapping([[0, 1], [2, 3, 4]])


@pytest.fixture
def three_stage_mixed() -> Mapping:
    """Three stages replicated (1, 2, 4): m = 4, a 2-copy pattern inside."""
    return make_mapping([[0], [1, 2], [3, 4, 5, 6]])
