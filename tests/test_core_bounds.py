"""Tests for the N.B.U.E. throughput bounds (paper Section 6, Theorem 7)."""

from __future__ import annotations

import pytest

from repro.core import ThroughputBounds, throughput_bounds
from repro.mapping.examples import single_communication

from tests.conftest import make_mapping


class TestBoundsObject:
    def test_ordering_enforced(self):
        with pytest.raises(AssertionError):
            ThroughputBounds(lower=2.0, upper=1.0)

    def test_contains(self):
        b = ThroughputBounds(lower=1.0, upper=2.0)
        assert b.contains(1.5)
        assert not b.contains(0.5)
        assert b.contains(0.99, rel_slack=0.01)
        assert b.width == pytest.approx(1.0)


class TestOverlapBounds:
    def test_single_comm_bounds(self):
        """Fig. 15's two curves: det = min(u,v)λ, exp = uvλ/(u+v-1)."""
        for u, v in [(2, 3), (3, 4)]:
            b = throughput_bounds(single_communication(u, v), "overlap")
            assert b.upper == pytest.approx(min(u, v), rel=1e-6)
            assert b.lower == pytest.approx(u * v / (u + v - 1), rel=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_mappings_well_ordered(self, seed):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=seed)
        b = throughput_bounds(mp, "overlap")
        assert 0 < b.lower <= b.upper

    def test_semantics_forwarded(self):
        mp = make_mapping([[0], [1, 2], [3, 4, 5]], seed=0)
        b_unb = throughput_bounds(mp, "overlap")
        b_bot = throughput_bounds(mp, "overlap", semantics="bottleneck")
        assert b_bot.upper <= b_unb.upper * (1 + 1e-12)
        assert b_bot.lower <= b_unb.lower * (1 + 1e-12)


class TestStrictBounds:
    def test_small_strict_ordered(self):
        mp = make_mapping([[0], [1]], works=[1.0, 2.0], files=[1.0])
        b = throughput_bounds(mp, "strict")
        assert 0 < b.lower < b.upper


class TestNbueSandwich:
    """Simulated N.B.U.E. laws must fall inside the exact sandwich —
    the substance of Theorem 7 and of the Fig. 16 reproduction."""

    NBUE_LAWS = [
        ("uniform", {}),
        ("gamma", {"shape": 3.0}),
        ("erlang", {"k": 4}),
        ("truncnorm", {"sigma": 0.4}),
        ("beta", {"shape": 2.0}),
        ("weibull", {"shape": 2.0}),
    ]

    @pytest.mark.parametrize("family,params", NBUE_LAWS, ids=lambda x: str(x))
    def test_nbue_laws_inside(self, family, params):
        mp = single_communication(2, 3)
        b = throughput_bounds(mp, "overlap")
        from repro.core import StreamingSystem

        sys = StreamingSystem(mp, "overlap")
        sim = sys.simulate(
            n_datasets=60_000, law=family, law_params=params, seed=17
        )
        assert b.contains(sim.steady_state_throughput(), rel_slack=0.02)

    def test_non_nbue_law_can_escape(self):
        """A DFR law (gamma shape 0.25) dips below the exponential bound."""
        mp = single_communication(2, 3)
        b = throughput_bounds(mp, "overlap")
        from repro.core import StreamingSystem

        sys = StreamingSystem(mp, "overlap")
        sim = sys.simulate(
            n_datasets=60_000,
            law="gamma",
            law_params={"shape": 0.25},
            seed=17,
        )
        assert sim.steady_state_throughput() < b.lower * 0.98

    def test_hyperexponential_escapes(self):
        mp = single_communication(3, 4)
        b = throughput_bounds(mp, "overlap")
        from repro.core import StreamingSystem

        sys = StreamingSystem(mp, "overlap")
        sim = sys.simulate(
            n_datasets=60_000,
            law="hyperexponential",
            law_params={"cv2": 8.0},
            seed=23,
        )
        assert sim.steady_state_throughput() < b.lower * 0.98

    def test_erlang_interpolates(self):
        """Erlang-k sweeps from the exponential (k=1) to the constant."""
        mp = single_communication(2, 3)
        b = throughput_bounds(mp, "overlap")
        from repro.core import StreamingSystem

        sys = StreamingSystem(mp, "overlap")
        values = []
        for k in (1, 2, 8, 64):
            sim = sys.simulate(
                n_datasets=50_000, law="erlang", law_params={"k": k}, seed=5
            )
            values.append(sim.steady_state_throughput())
        assert values[0] == pytest.approx(b.lower, rel=0.03)
        assert values[-1] == pytest.approx(b.upper, rel=0.03)
        assert values == sorted(values)
