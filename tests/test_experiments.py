"""Tests for the experiment drivers (scaled-down configurations).

Each driver must run end to end and reproduce the paper's qualitative
shape; the full-size campaigns live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    timing,
)
from repro.experiments.common import ExperimentResult


class TestCommon:
    def test_render(self):
        r = ExperimentResult("x", "demo", columns=["a", "b"])
        r.add(a=1, b=2.5)
        r.notes.append("hello")
        text = r.render()
        assert "demo" in text and "2.5" in text and "note: hello" in text

    def test_column_extraction(self):
        r = ExperimentResult("x", "demo", columns=["a"])
        r.add(a=1)
        r.add(a=2)
        assert r.column("a") == [1, 2]

    def test_dict_round_trip(self):
        import json

        r = ExperimentResult("x", "demo", columns=["a", "b"])
        r.add(a=1, b=2.5)
        r.add(a=3, b=-1.0)
        r.notes.append("hello")
        again = ExperimentResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert again == r
        assert again.render() == r.render()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bogus"):
            ExperimentResult.from_dict(
                {"name": "x", "description": "d", "columns": [], "bogus": 1}
            )

    def test_from_dict_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="columns"):
            ExperimentResult.from_dict({"name": "x", "description": "d"})


class TestRegistry:
    def test_names_and_lookup(self):
        from repro.experiments import (
            experiment_description,
            experiment_names,
            get_experiment,
        )

        names = experiment_names()
        assert "fig10" in names and "table1" in names
        assert set(names) == set(ALL_EXPERIMENTS)
        assert get_experiment("fig10") is fig10
        assert experiment_description("fig10").startswith("Figure 10")
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_register_requires_run(self):
        import types

        from repro.experiments import register_experiment

        with pytest.raises(TypeError, match="run"):
            register_experiment("broken", types.ModuleType("broken"))


class TestTable1:
    def test_scaled_run_shape(self):
        cfg = table1.scaled_config(0.02, seed=1)
        cfg.classes = cfg.classes[:2] + cfg.classes[6:8]
        res = table1.run(cfg)
        assert len(res.rows) == len(cfg.classes) * 2
        # The paper's headline: Overlap never lacks a critical resource.
        overlap_rows = [r for r in res.rows if r["model"] == "overlap"]
        assert all(r["no_critical"] == 0 for r in overlap_rows)
        # Gaps stay bounded (paper: < 9%; allow slack for other fixtures).
        assert all(r["max_gap_pct"] <= 15.0 for r in res.rows)

    def test_counts_within_totals(self):
        cfg = table1.scaled_config(0.02, seed=2)
        cfg.classes = cfg.classes[:1]
        res = table1.run(cfg)
        for r in res.rows:
            assert 0 <= r["no_critical"] <= r["total"]


class TestFig10:
    def test_convergence(self):
        cfg = fig10.Fig10Config(
            dataset_counts=[100, 2000, 20_000], tpn_max_datasets=2000
        )
        res = fig10.run(cfg)
        last = res.rows[-1]
        assert last["cst_system"] == pytest.approx(last["cst_theory"], rel=0.01)
        assert last["exp_system"] == pytest.approx(last["exp_theory"], rel=0.05)

    def test_paper_system_structure(self):
        mp = fig10.paper_system()
        assert mp.replication == (1, 3, 4, 5, 6, 7, 1)


class TestFig11:
    def test_dispersion_shrinks(self):
        cfg = fig11.Fig11Config(
            dataset_counts=[50, 500, 5000], n_replications=40
        )
        res = fig11.run(cfg)
        stds = [r["rel_std_pct"] for r in res.rows]
        assert stds[0] > stds[-1]
        # Paper: ~2% at 5,000 data sets.
        assert stds[-1] < 5.0
        for r in res.rows:
            assert r["min"] <= r["avg"] <= r["max"]


class TestFig12:
    def test_flat_in_stage_count(self):
        cfg = fig12.Fig12Config(link_counts=[1, 3, 6], n_datasets=6000)
        res = fig12.run(cfg)
        theories = res.column("exp_theory")
        assert max(theories) == pytest.approx(min(theories), rel=1e-9)
        # Chains of *equal-rate* exponential components sit on a
        # null-recurrent boundary: finite-run estimates converge like
        # 1/sqrt(n), so longer chains read a few percent low. The paper's
        # own Fig. 12 shows the same small wobble on a 0.6-1.1 axis.
        sims = res.column("exp_sim_norm")
        assert max(sims) - min(sims) < 0.12


class TestFig13:
    def test_theory_matches_simulation(self):
        cfg = fig13.Fig13Config(
            sides=[(2, 3), (3, 4), (2, 5)], n_datasets=8000
        )
        res = fig13.run(cfg)
        for r in res.rows:
            assert r["exp_sim"] == pytest.approx(r["exp_theory"], rel=0.05)
            assert r["cst_sim"] == pytest.approx(1.0, rel=0.02)


class TestFig14:
    def test_heterogeneity_regimes(self):
        cfg = fig14.Fig14Config(
            sides=[(2, 3), (3, 4)], n_datasets=15_000, tpn_datasets=3000
        )
        res = fig14.run(cfg)
        from repro.core import exponential_to_deterministic_ratio

        for r in res.rows:
            # Constant-time simulations always track the theory.
            assert r["cst_system"] == pytest.approx(1.0, abs=0.02)
            assert r["cst_tpn"] == pytest.approx(1.0, abs=0.02)
            # Simulation validates the exact heterogeneous CTMC value
            # (dominant regimes renew on the single slow link, so the
            # estimator needs a wider band at a given run length).
            assert r["exp_system"] == pytest.approx(r["exp_theory"], rel=0.07)
            hom = exponential_to_deterministic_ratio(r["u"], r["v"])
            if r["mode"] == "dominant":
                # The paper's claim, in the regime its explanation covers.
                assert r["exp_theory"] == pytest.approx(1.0, abs=0.03)
            else:
                # Uniform heterogeneity narrows the gap vs homogeneous.
                assert hom < r["exp_theory"] < 1.0

    def test_exp_theory_skippable(self):
        cfg = fig14.Fig14Config(
            sides=[(2, 3)], n_datasets=2000, tpn_datasets=1000,
            include_exp_theory=False,
        )
        res = fig14.run(cfg)
        assert np.isnan(res.rows[0]["exp_theory"])


class TestFig15:
    def test_ratio_formula(self):
        cfg = fig15.Fig15Config(senders=[2, 4, 5, 7, 10], v=5, n_datasets=8000)
        res = fig15.run(cfg)
        for r in res.rows:
            assert r["exp_theory_norm"] == pytest.approx(
                r["ratio_formula"], rel=1e-9
            )
            assert r["exp_sim_norm"] == pytest.approx(
                r["ratio_formula"], rel=0.06
            )
            assert 0.5 < r["ratio_formula"] <= 1.0

    def test_minimum_near_u_equals_v(self):
        cfg = fig15.Fig15Config(senders=[2, 4, 6, 9, 14], v=5, n_datasets=2000)
        res = fig15.run(cfg)
        ratios = {r["u"]: r["ratio_formula"] for r in res.rows}
        assert ratios[4] < ratios[14]
        assert ratios[6] < ratios[2]


class TestFig16:
    def test_nbue_laws_inside_sandwich(self):
        cfg = fig16.Fig16Config(senders=[3, 4, 7], v=5, n_datasets=8000)
        res = fig16.run(cfg)
        assert all(r["all_inside"] for r in res.rows)


class TestFig17:
    def test_dfr_laws_escape(self):
        cfg = fig17.Fig17Config(senders=[3, 4], v=5, n_datasets=8000)
        res = fig17.run(cfg)
        for r in res.rows:
            # Genuinely non-N.B.U.E. laws dip below the exponential bound.
            assert r["gamma(shape=0.25)"] < r["lower_exp"] * 0.97
            assert r["hyperexponential(cv2=6)"] < r["lower_exp"] * 0.97
            # N.B.U.E. members of the sweep stay inside.
            assert r["gamma(shape=2)"] >= r["lower_exp"] * 0.97
            assert r["uniform(rel_half_width=0.5)"] >= r["lower_exp"] * 0.97


class TestTiming:
    def test_reports_positive_times(self):
        cfg = timing.TimingConfig(dataset_counts=[100, 1000], tpn_cap=500)
        res = timing.run(cfg)
        assert len(res.rows) == 2
        assert all(r["system_sim_s"] > 0 for r in res.rows)
        assert np.isnan(res.rows[-1]["tpn_sim_s"])


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out

    def test_run_scaled(self, capsys):
        from repro.cli import main

        assert main(["run", "fig15", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "ratio_formula" in out
