"""Tests for the fleet tier (`repro.service` orchestrator + routing).

Covers the endpoint-list parsing, the worker catalog's liveness
bookkeeping, the routing-strategy registry (round_robin / worst_fit /
fingerprint_affinity — including the rendezvous-hash minimal-disruption
property: evicting a worker moves only the keys it owned), the
orchestrator end-to-end over real sockets (request-order batch merging,
per-task failure re-indexing, fleet stats aggregation math), failover
(a worker killed mid-campaign completes with zero lost or duplicated
units and a byte-identical store), and the CLI surface
(``serve --role orchestrator``, fleet-aware ``ping``/``stats``).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.campaign import ResultStore, get_preset, run_campaign
from repro.cli import main
from repro.evaluate import StructureCache, evaluate
from repro.exceptions import (
    ServiceError,
    ServiceUnavailable,
)
from repro.mapping.examples import single_communication
from repro.service import (
    FaultInjector,
    FleetSupervisor,
    RetryPolicy,
    ServiceClient,
    WorkerCatalog,
    available_strategies,
    local_fleet,
    make_strategy,
    parse_endpoints,
    task_routing_key,
)
from repro.service.catalog import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    WorkerInfo,
)


def pattern_task(u: int = 2, v: int = 2, *, solver: str = "deterministic",
                 comm_time: float = 1.0) -> dict:
    return {
        "system": {
            "kind": "single_communication",
            "params": {"u": u, "v": v, "comm_time": comm_time},
        },
        "solver": solver,
        "model": "overlap",
        "options": {},
    }


def distinct_tasks(n: int) -> list[dict]:
    """``n`` structurally distinct cheap tasks."""
    pairs = [(1 + i % 3, 1 + i // 3) for i in range(n)]
    assert len(set(pairs)) == n
    return [pattern_task(u, v) for u, v in pairs]


# ----------------------------------------------------------------------
# parse_endpoints
# ----------------------------------------------------------------------
class TestParseEndpoints:
    def test_host_port_list(self):
        assert parse_endpoints("127.0.0.1:7781,10.0.0.2:80") == [
            ("127.0.0.1", 7781), ("10.0.0.2", 80),
        ]

    def test_bare_ports_get_default_host(self):
        assert parse_endpoints("7781, 7782") == [
            ("127.0.0.1", 7781), ("127.0.0.1", 7782),
        ]

    def test_single_entry(self):
        assert parse_endpoints("host:1234") == [("host", 1234)]

    def test_empty_string_rejected(self):
        with pytest.raises(ServiceError, match="at least one"):
            parse_endpoints("")

    def test_empty_entry_reports_position(self):
        with pytest.raises(ServiceError, match="entry 2"):
            parse_endpoints("7781,,7783")

    def test_malformed_entry_reports_position(self):
        with pytest.raises(ServiceError, match="entry 2.*HOST:PORT"):
            parse_endpoints("7781,nope")

    def test_out_of_range_port_reports_position(self):
        with pytest.raises(ServiceError, match="entry 1.*out of range"):
            parse_endpoints("99999,7781")

    def test_duplicates_rejected_with_both_positions(self):
        with pytest.raises(ServiceError, match="entries 1 and 3"):
            parse_endpoints("7781,7782,127.0.0.1:7781")


# ----------------------------------------------------------------------
# WorkerCatalog
# ----------------------------------------------------------------------
class TestWorkerCatalog:
    def test_auto_names_are_stable_and_sequential(self):
        catalog = WorkerCatalog()
        names = [catalog.register("h", 7000 + i).name for i in range(3)]
        assert names == ["w0", "w1", "w2"]
        assert [w.name for w in catalog.workers()] == names
        assert len(catalog) == 3

    def test_duplicate_name_and_endpoint_rejected(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        # Same name at the *same* endpoint is a true duplicate...
        with pytest.raises(ServiceError, match="already registered"):
            catalog.register("h", 7000, name="a")
        # ... and an endpoint owned by another name stays exclusive.
        with pytest.raises(ServiceError, match="7000"):
            catalog.register("h", 7000)

    def test_reregister_known_name_moves_endpoint_preserving_counters(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        catalog.note_routed("a")
        catalog.record_failure("a", failover=True)
        # A known name announcing a new endpoint is a *respawn*: the
        # catalog moves it in place and keeps its traffic history.
        info = catalog.register("h", 7001, name="a", capacity=4)
        assert info is catalog.get("a")
        assert (info.host, info.port) == ("h", 7001)
        assert info.capacity == 4
        assert info.routed == 1 and info.failovers == 1
        assert info.live and info.consecutive_failures == 0
        assert info.breaker_state == BREAKER_CLOSED
        assert len(catalog) == 1

    def test_eviction_at_threshold_and_revival(self):
        catalog = WorkerCatalog(max_consecutive_failures=3)
        catalog.register("h", 7000, name="a")
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is True  # evicted now
        assert catalog.live_workers() == []
        assert catalog.get("a").evictions == 1
        catalog.record_success("a")  # a later successful ping revives
        assert [w.name for w in catalog.live_workers()] == ["a"]
        assert catalog.get("a").consecutive_failures == 0

    def test_success_resets_streak_before_eviction(self):
        catalog = WorkerCatalog(max_consecutive_failures=2)
        catalog.register("h", 7000, name="a")
        catalog.record_failure("a")
        catalog.record_success("a")
        assert catalog.record_failure("a") is False  # streak restarted
        assert catalog.get("a").live

    def test_traffic_accounting(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        catalog.begin("a")
        catalog.note_routed("a")
        assert catalog.get("a").in_flight == 1
        assert catalog.get("a").routed == 1
        catalog.end("a")
        assert catalog.get("a").in_flight == 0
        catalog.record_failure("a", failover=True)
        assert catalog.get("a").failovers == 1

    def test_remove_and_unknown_names(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        assert catalog.remove("a").name == "a"
        assert len(catalog) == 0
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.remove("a")
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.get("a")

    def test_stats_rows_include_evicted(self):
        catalog = WorkerCatalog(max_consecutive_failures=1)
        catalog.register("h", 7000, name="a")
        catalog.register("h", 7001, name="b")
        catalog.record_failure("a")
        rows = catalog.stats()
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[0]["live"] is False and rows[1]["live"] is True

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ServiceError, match="max_consecutive_failures"):
            WorkerCatalog(max_consecutive_failures=0)

    def test_invalid_breaker_parameters_rejected(self):
        with pytest.raises(ServiceError, match="breaker_cooldown_s"):
            WorkerCatalog(breaker_cooldown_s=-1.0)
        with pytest.raises(ServiceError, match="breaker_backoff"):
            WorkerCatalog(breaker_backoff=0.5)


# ----------------------------------------------------------------------
# Circuit breaker state machine (driven by a manual clock)
# ----------------------------------------------------------------------
class _ManualClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCircuitBreaker:
    def _catalog(self, **overrides) -> tuple[WorkerCatalog, _ManualClock]:
        clock = _ManualClock()
        kwargs: dict = dict(
            max_consecutive_failures=3,
            breaker_cooldown_s=10.0,
            breaker_backoff=2.0,
            breaker_max_cooldown_s=60.0,
            clock=clock,
        )
        kwargs.update(overrides)
        catalog = WorkerCatalog(**kwargs)
        catalog.register("h", 7000, name="a")
        return catalog, clock

    def _trip(self, catalog: WorkerCatalog) -> None:
        for _ in range(catalog.max_consecutive_failures):
            catalog.record_failure("a")

    def test_trip_at_threshold_opens_for_the_cooldown(self):
        catalog, clock = self._catalog()
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is True  # breaker trips
        info = catalog.get("a")
        assert info.breaker_state == BREAKER_OPEN
        assert info.live is False
        assert info.evictions == 1 and info.open_streak == 1
        assert catalog.live_workers() == []
        clock.advance(9.9)  # still cooling down
        assert catalog.live_workers() == []

    def test_elapsed_cooldown_grants_exactly_one_trial(self):
        catalog, clock = self._catalog()
        self._trip(catalog)
        clock.advance(10.0)
        assert [w.name for w in catalog.live_workers()] == ["a"]
        info = catalog.get("a")
        assert info.breaker_state == BREAKER_HALF_OPEN
        assert info.half_open_transitions == 1
        catalog.begin("a")  # the trial goes out...
        assert info.trial_in_flight is True
        assert catalog.live_workers() == []  # ...and no second one may

    def test_trial_success_closes_onto_probation(self):
        catalog, clock = self._catalog()
        self._trip(catalog)
        clock.advance(10.0)
        catalog.live_workers()
        catalog.begin("a")
        catalog.end("a")
        catalog.record_success("a")
        info = catalog.get("a")
        assert info.breaker_state == BREAKER_CLOSED
        assert info.live is True
        assert info.probation == 3

    def test_probation_failure_retrips_immediately(self):
        # The anti-flap property: a recovered worker that fails once
        # re-trips at once instead of absorbing a whole fresh streak of
        # real requests per flap.
        catalog, clock = self._catalog()
        self._trip(catalog)
        clock.advance(10.0)
        catalog.live_workers()
        catalog.record_success("a")  # trial passed; probation armed
        assert catalog.record_failure("a") is True  # one strike re-trips
        info = catalog.get("a")
        assert info.breaker_state == BREAKER_OPEN
        assert info.open_streak == 2

    def test_probation_completion_restores_full_streak_budget(self):
        catalog, clock = self._catalog()
        self._trip(catalog)
        clock.advance(10.0)
        catalog.live_workers()
        catalog.record_success("a")  # close; probation = 3
        for _ in range(3):
            catalog.record_success("a")
        info = catalog.get("a")
        assert info.probation == 0
        assert info.open_streak == 0  # fully rehabilitated
        # Off probation, a single failure no longer trips.
        assert catalog.record_failure("a") is False
        assert info.breaker_state == BREAKER_CLOSED

    def test_trial_failure_escalates_the_cooldown(self):
        catalog, clock = self._catalog()
        self._trip(catalog)
        assert catalog.get("a").cooldown_until == clock.now + 10.0
        clock.advance(10.0)
        catalog.live_workers()
        catalog.begin("a")
        catalog.end("a")
        assert catalog.record_failure("a") is True  # trial failed
        info = catalog.get("a")
        assert info.breaker_state == BREAKER_OPEN
        assert info.open_streak == 2
        assert info.cooldown_until == clock.now + 20.0  # doubled

    def test_cooldown_escalation_is_capped(self):
        catalog, clock = self._catalog()
        expected = [10.0, 20.0, 40.0, 60.0, 60.0]  # capped at the max
        for cooldown in expected:
            self._trip(catalog)
            info = catalog.get("a")
            assert info.cooldown_until == pytest.approx(clock.now + cooldown)
            clock.advance(cooldown)
            catalog.live_workers()  # promote to half-open
            catalog.record_success("a")  # close (probation armed)
            # Next loop's first failure re-trips via probation; feed the
            # remaining threshold failures harmlessly against open.
        assert catalog.get("a").evictions == len(expected)

    def test_reannounce_moves_endpoint_and_arms_immediate_probe(self):
        catalog, clock = self._catalog()
        catalog.note_routed("a")
        info = catalog.reannounce("a", "h", 7999)
        assert (info.host, info.port) == ("h", 7999)
        assert info.routed == 1  # traffic history survives the respawn
        assert info.breaker_state == BREAKER_OPEN and info.live is False
        # The cooldown is already elapsed: the very next snapshot grants
        # the replacement process its probe.
        assert [w.name for w in catalog.live_workers()] == ["a"]
        assert catalog.get("a").breaker_state == BREAKER_HALF_OPEN

    def test_reannounce_rejects_foreign_endpoint_and_unknown_name(self):
        catalog, _clock = self._catalog()
        catalog.register("h", 7001, name="b")
        with pytest.raises(ServiceError, match="already registered"):
            catalog.reannounce("a", "h", 7001)
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.reannounce("ghost", "h", 7002)

    def test_remove_of_a_tripped_worker(self):
        catalog, _clock = self._catalog(max_consecutive_failures=1)
        catalog.record_failure("a")
        assert catalog.get("a").breaker_state == BREAKER_OPEN
        assert catalog.remove("a").name == "a"
        assert len(catalog) == 0
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.get("a")

    def test_revival_after_trip_clears_the_failure_streak(self):
        catalog, clock = self._catalog()
        self._trip(catalog)
        assert catalog.get("a").consecutive_failures == 3
        clock.advance(10.0)
        catalog.live_workers()
        catalog.record_success("a")
        info = catalog.get("a")
        assert info.consecutive_failures == 0
        assert info.live is True


# ----------------------------------------------------------------------
# FleetSupervisor
# ----------------------------------------------------------------------
class TestFleetSupervisor:
    def _supervised(self, **overrides):
        clock = _ManualClock()
        catalog = WorkerCatalog(breaker_cooldown_s=10.0, clock=clock)
        catalog.register("h", 7000, name="a")
        kwargs: dict = dict(
            check_interval=0.1,
            max_restarts=3,
            backoff_base=1.0,
            backoff_multiplier=2.0,
            backoff_max=8.0,
            clock=clock,
        )
        kwargs.update(overrides)
        supervisor = FleetSupervisor(catalog, **kwargs)
        return supervisor, catalog, clock

    def test_check_once_respawns_dead_worker_and_reannounces(self):
        supervisor, catalog, _clock = self._supervised()
        alive = {"a": False}

        def respawn() -> tuple[str, int]:
            alive["a"] = True
            return ("h", 7000)

        supervisor.watch("a", is_alive=lambda: alive["a"], respawn=respawn)
        assert supervisor.check_once() == ["a"]
        assert supervisor.respawns == 1
        # The respawned worker is armed for an immediate half-open
        # probe, not trusted blindly.
        assert catalog.get("a").breaker_state == BREAKER_OPEN
        assert [w.name for w in catalog.live_workers()] == ["a"]
        assert catalog.get("a").breaker_state == BREAKER_HALF_OPEN
        assert supervisor.check_once() == []  # alive again: nothing to do

    def test_backoff_spaces_consecutive_respawn_attempts(self):
        supervisor, _catalog, clock = self._supervised()
        attempts: list[float] = []

        def respawn() -> tuple[str, int]:
            attempts.append(clock.now)
            return ("h", 7000)  # "succeeds", but the worker dies again

        supervisor.watch("a", is_alive=lambda: False, respawn=respawn)
        assert supervisor.check_once() == ["a"]
        assert supervisor.check_once() == []  # inside the backoff window
        clock.advance(1.0)  # base backoff elapsed
        assert supervisor.check_once() == ["a"]
        clock.advance(1.0)  # doubled backoff not yet elapsed
        assert supervisor.check_once() == []
        clock.advance(1.0)
        assert supervisor.check_once() == ["a"]
        assert attempts == [100.0, 101.0, 103.0]

    def test_restart_budget_exhaustion_abandons_the_worker(self):
        supervisor, _catalog, clock = self._supervised(max_restarts=1)
        supervisor.watch(
            "a", is_alive=lambda: False, respawn=lambda: ("h", 7000)
        )
        assert supervisor.check_once() == ["a"]
        clock.advance(60.0)
        assert supervisor.check_once() == []  # budget spent: abandoned
        stats = supervisor.stats()
        assert stats["respawns"] == 1
        (row,) = stats["workers"]
        assert row["abandoned"] is True and row["restarts"] == 1
        clock.advance(60.0)
        assert supervisor.check_once() == []  # stays abandoned

    def test_failed_respawn_consumes_budget_and_is_counted(self):
        supervisor, _catalog, clock = self._supervised(max_restarts=2)

        def respawn() -> tuple[str, int]:
            raise RuntimeError("no ports left")

        supervisor.watch("a", is_alive=lambda: False, respawn=respawn)
        assert supervisor.check_once() == []
        clock.advance(1.0)
        assert supervisor.check_once() == []
        clock.advance(60.0)
        assert supervisor.check_once() == []  # budget spent
        stats = supervisor.stats()
        assert stats["respawns"] == 0
        (row,) = stats["workers"]
        assert row["failed_respawns"] == 2 and row["abandoned"] is True

    def test_invalid_parameters_rejected(self):
        catalog = WorkerCatalog()
        with pytest.raises(ServiceError, match="check_interval"):
            FleetSupervisor(catalog, check_interval=0.0)
        with pytest.raises(ServiceError, match="max_restarts"):
            FleetSupervisor(catalog, max_restarts=-1)

    def test_in_process_fleet_respawn_end_to_end(self):
        tasks = distinct_tasks(4)
        with local_fleet(2, breaker_cooldown_s=0.05, retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            supervisor = fleet.make_supervisor(
                check_interval=0.05, max_restarts=3,
            )
            with fleet.client() as client:
                before, _, _ = client.evaluate_batch(tasks)
                fleet.kill_worker("w1")
                assert supervisor.check_once() == ["w1"]
                after, fails, _ = client.evaluate_batch(tasks)
                stats = client.stats()
        assert fails == [] and after == before
        assert stats["supervisor"]["respawns"] == 1
        rows = {r["name"]: r for r in stats["workers"]}
        # The respawned worker passed its probe and serves again.
        assert rows["w1"]["breaker"]["state"] == BREAKER_CLOSED
        assert rows["w1"]["breaker"]["half_open_transitions"] >= 1


# ----------------------------------------------------------------------
# Hedged straggler dispatch
# ----------------------------------------------------------------------
class TestHedgedDispatch:
    def test_straggling_shard_is_hedged_and_the_loser_discarded(self):
        task = pattern_task(2, 3)
        with local_fleet(2, hedge_threshold=0.1) as fleet:
            with fleet.client() as client:
                first_values, _, _ = client.evaluate_batch([task])
                first = first_values[0]
                # Stall the affinity owner of this key: its *next* work
                # op sleeps far past the hedge threshold.
                owner = fleet.orchestrator.strategy.rank(
                    task_routing_key(task), fleet.catalog.live_workers()
                )[0].name
                fleet.worker(owner).server.faults = FaultInjector(
                    {"hang": 1}, hang_s=0.8
                )
                (hedged,), fails, _ = client.evaluate_batch([task])
                stats = client.stats()
        assert fails == []
        assert hedged == first  # the hedge returned the same value
        orch = stats["orchestrator"]
        assert orch["hedges_sent"] >= 1
        assert orch["hedges_won"] >= 1

    def test_hedging_disabled_never_speculates(self):
        task = pattern_task(2, 3)
        with local_fleet(2, hedge=False) as fleet:
            with fleet.client() as client:
                client.evaluate_batch([task])
                stats = client.stats()
        assert stats["orchestrator"]["hedges_sent"] == 0


# ----------------------------------------------------------------------
# Poison-unit quarantine
# ----------------------------------------------------------------------
class TestPoisonQuarantine:
    def test_unit_failing_on_distinct_workers_is_quarantined(self):
        task = pattern_task(2, 3)
        with local_fleet(
            2,
            faults={0: "drop:4", 1: "drop:4"},
            max_unit_attempts=2,
            hedge=False,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
            ),
        ) as fleet:
            with fleet.client() as client:
                _values, failures, _stats = client.evaluate_batch([task])
                stats = client.stats()
        assert len(failures) == 1
        failure = failures[0]
        assert failure["reason"] == "quarantined"
        assert failure["index"] == 0
        assert "2 distinct worker" in failure["message"]
        assert stats["orchestrator"]["quarantined"] == 1

    def test_quarantine_counts_distinct_workers_not_raw_retries(self):
        # A single unit walks the same-sweep re-route chain across all
        # three workers (each fails once) and only then quarantines —
        # the message names every distinct worker it died on.
        task = pattern_task(2, 3)
        with local_fleet(
            3,
            faults={0: "drop:8", 1: "drop:8", 2: "drop:8"},
            max_unit_attempts=3,
            hedge=False,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
            ),
        ) as fleet:
            with fleet.client() as client:
                _values, failures, _stats = client.evaluate_batch([task])
        assert len(failures) == 1
        failure = failures[0]
        assert failure["reason"] == "quarantined"
        assert "3 distinct worker" in failure["message"]
        for name in ("w0", "w1", "w2"):
            assert name in failure["message"]


# ----------------------------------------------------------------------
# Self-healing acceptance proof
# ----------------------------------------------------------------------
class TestSelfHealingAcceptance:
    def test_supervised_chaos_run_heals_hedges_and_matches_direct(
        self, tmp_path
    ):
        """The PR acceptance proof: a 4-worker *supervised* fleet loses a
        worker mid-campaign (the supervisor respawns it through the
        breaker's half-open probe) and a straggling shard is hedged —
        and the store still comes out byte-identical to a direct
        in-process run, with zero lost or duplicated units."""
        spec = get_preset("smoke")
        direct_store = ResultStore(tmp_path / "direct.jsonl")
        run_campaign(spec, direct_store)

        fleet_path = tmp_path / "fleet.jsonl"
        with local_fleet(
            4,
            breaker_cooldown_s=0.05,
            hedge_threshold=0.2,
            retry=RetryPolicy(
                max_attempts=4, base_delay=0.01, max_delay=0.05, seed=0,
            ),
        ) as fleet:
            supervisor = fleet.make_supervisor(
                check_interval=0.05, max_restarts=5,
            )
            supervisor.start()
            killer = threading.Timer(0.05, fleet.kill_worker, args=("w1",))
            killer.start()
            try:
                with fleet.client(
                    retry=RetryPolicy(max_attempts=4, seed=0)
                ) as client:
                    summary = run_campaign(
                        spec, ResultStore(fleet_path), client=client
                    )
                    deadline = time.monotonic() + 10.0
                    while supervisor.respawns < 1:
                        assert time.monotonic() < deadline, "no respawn seen"
                        time.sleep(0.01)
                    # Force one deterministic hedge: stall the affinity
                    # owner of a probe task and let the orchestrator
                    # speculate the shard onto the next-ranked worker.
                    workers = fleet.catalog.live_workers()
                    assert len(workers) == 4  # the respawn rejoined
                    probe = distinct_tasks(8)[0]
                    owner = fleet.orchestrator.strategy.rank(
                        task_routing_key(probe), workers
                    )[0].name
                    fleet.worker(owner).server.faults = FaultInjector(
                        {"hang": 1}, hang_s=0.8
                    )
                    _, probe_fails, _ = client.evaluate_batch([probe])
                    assert probe_fails == []
                    stats = client.stats()
            finally:
                killer.cancel()
                killer.join()
        assert summary.executed == summary.total
        assert summary.skipped == 0
        assert fleet_path.read_bytes() == (
            tmp_path / "direct.jsonl"
        ).read_bytes()
        assert stats["supervisor"]["respawns"] >= 1
        assert stats["orchestrator"]["hedges_sent"] >= 1
        assert stats["orchestrator"]["hedges_won"] >= 1
        rows = {r["name"]: r for r in stats["workers"]}
        assert rows["w1"]["breaker"]["half_open_transitions"] >= 1


# ----------------------------------------------------------------------
# Routing strategies
# ----------------------------------------------------------------------
def _workers(n: int) -> list[WorkerInfo]:
    return [WorkerInfo(name=f"w{i}", host="h", port=7000 + i) for i in range(n)]


class TestRoutingRegistry:
    def test_builtins_registered(self):
        assert available_strategies() == (
            "fingerprint_affinity", "round_robin", "worst_fit",
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ServiceError, match="round_robin"):
            make_strategy("best_fit")

    def test_bad_options_raise_service_error(self):
        with pytest.raises(ServiceError, match="cannot configure"):
            make_strategy("round_robin", replicas=3)


class TestRoundRobin:
    def test_rotates_one_step_per_request(self):
        strategy = make_strategy("round_robin")
        workers = _workers(3)
        first = [strategy.rank("k", workers)[0].name for _ in range(6)]
        assert first == ["w0", "w1", "w2", "w0", "w1", "w2"]

    def test_ranking_is_a_permutation(self):
        strategy = make_strategy("round_robin")
        workers = _workers(4)
        ranked = strategy.rank("k", workers)
        assert sorted(w.name for w in ranked) == ["w0", "w1", "w2", "w3"]

    def test_empty_pool(self):
        assert make_strategy("round_robin").rank("k", []) == []


class TestWorstFit:
    def test_least_depth_first(self):
        workers = _workers(3)
        workers[0].in_flight = 2
        workers[1].in_flight = 0
        workers[2].in_flight = 1
        ranked = make_strategy("worst_fit").rank("k", workers)
        assert [w.name for w in ranked] == ["w1", "w2", "w0"]

    def test_ties_break_by_name(self):
        workers = list(reversed(_workers(3)))  # presented w2, w1, w0
        ranked = make_strategy("worst_fit").rank("k", workers)
        assert [w.name for w in ranked] == ["w0", "w1", "w2"]


class TestFingerprintAffinity:
    def test_deterministic_ranking(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        for key in ("a", "b", "c"):
            r1 = [w.name for w in strategy.rank(key, workers)]
            r2 = [w.name for w in make_strategy(
                "fingerprint_affinity").rank(key, list(reversed(workers)))]
            assert r1 == r2  # same key, same ranking, any presentation order

    def test_keys_spread_over_workers(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        owners = {
            f"key{i}": strategy.rank(f"key{i}", workers)[0].name
            for i in range(200)
        }
        counts = {name: 0 for name in ("w0", "w1", "w2", "w3")}
        for owner in owners.values():
            counts[owner] += 1
        # All four workers own a meaningful shard (rendezvous balance).
        assert all(count >= 20 for count in counts.values()), counts

    def test_eviction_moves_only_the_evicted_workers_keys(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        keys = [f"key{i}" for i in range(200)]
        before = {k: strategy.rank(k, workers)[0].name for k in keys}
        survivors = [w for w in workers if w.name != "w2"]
        after = {k: strategy.rank(k, survivors)[0].name for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Exactly the evicted worker's keys move — nothing else.
        assert set(moved) == {k for k in keys if before[k] == "w2"}
        # ... and each lands on its second choice from the full ranking.
        for key in moved:
            full = [w.name for w in strategy.rank(key, workers)]
            assert after[key] == full[1]

    def test_rejoin_restores_original_owners(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        keys = [f"key{i}" for i in range(50)]
        before = {k: strategy.rank(k, workers)[0].name for k in keys}
        again = {k: strategy.rank(k, list(workers))[0].name for k in keys}
        assert before == again


class TestTaskRoutingKey:
    def test_same_structure_different_timing_same_key(self):
        # comm_time changes firing times, not topology: same structure
        # fingerprint, same shard — the shared reachability exploration
        # stays hot for both.
        a = task_routing_key(pattern_task(2, 3, comm_time=1.0))
        b = task_routing_key(pattern_task(2, 3, comm_time=2.0))
        assert a == b

    def test_different_topology_different_key(self):
        assert task_routing_key(pattern_task(2, 3)) != task_routing_key(
            pattern_task(3, 2)
        )

    def test_model_is_part_of_the_key(self):
        strict = dict(pattern_task(2, 2), model="strict")
        assert task_routing_key(pattern_task(2, 2)) != task_routing_key(strict)

    def test_garbage_task_still_routes(self):
        key = task_routing_key({"system": {"kind": "nope"}})
        assert isinstance(key, str) and key
        assert key == task_routing_key({"system": {"kind": "nope"}})
        assert isinstance(task_routing_key(object()), str)


# ----------------------------------------------------------------------
# Orchestrator end-to-end (real sockets, in-process fleet)
# ----------------------------------------------------------------------
class TestOrchestratorEndToEnd:
    def test_values_match_direct_evaluation(self):
        tasks = distinct_tasks(5)
        direct = [
            evaluate(
                single_communication(
                    t["system"]["params"]["u"], t["system"]["params"]["v"],
                    comm_time=1.0,
                ),
                solver="deterministic", model="overlap",
                cache=StructureCache(),
            )
            for t in tasks
        ]
        with local_fleet(3) as fleet:
            with fleet.client() as client:
                values, failures, stats = client.evaluate_batch(tasks)
                single = client.evaluate(tasks[0])
        assert failures == []
        assert values == direct  # merged back in request order, exactly
        assert single == direct[0]
        assert stats["units"] == 5 and stats["executed"] == 5

    def test_batch_failures_reindexed_to_request_order(self):
        tasks = distinct_tasks(4)
        tasks[1] = {"system": {"kind": "nope"}, "solver": "deterministic",
                    "model": "overlap", "options": {}}
        with local_fleet(3) as fleet:
            with fleet.client() as client:
                values, failures, _stats = client.evaluate_batch(tasks)
        assert [f["index"] for f in failures] == [1]
        assert values[1] is None
        assert all(values[i] is not None for i in (0, 2, 3))

    def test_stats_totals_equal_sum_of_worker_rows(self):
        with local_fleet(3, strategy="round_robin") as fleet:
            with fleet.client() as client:
                client.evaluate_batch(distinct_tasks(6))
                client.evaluate(pattern_task(3, 3))
                stats = client.stats()
        assert stats["role"] == "orchestrator"
        rows = stats["workers"]
        reported = [r["reported"]["requests"] for r in rows]
        for field in ("units", "executed", "batches", "memo_hits"):
            assert stats["totals"][field] == sum(
                r.get(field, 0) for r in reported
            ), field
        assert stats["totals"]["units"] == 7
        agg = stats["structure_cache"]
        assert agg["hits"] + agg["misses"] == agg["requests"]
        assert stats["orchestrator"]["units"] == 7
        assert stats["orchestrator"]["batches"] == 1

    def test_round_robin_spreads_traffic_over_all_workers(self):
        with local_fleet(2, strategy="round_robin") as fleet:
            with fleet.client() as client:
                client.evaluate_batch(distinct_tasks(4))
                stats = client.stats()
        routed = {r["name"]: r["routed"] for r in stats["workers"]}
        assert routed["w0"] > 0 and routed["w1"] > 0

    def test_affinity_dedupes_repeats_where_round_robin_pays_twice(self):
        task = pattern_task(2, 3)

        def executed_after_two_evaluates(strategy: str) -> int:
            with local_fleet(2, strategy=strategy) as fleet:
                with fleet.client() as client:
                    first = client.evaluate(task)
                    second = client.evaluate(task)
                    stats = client.stats()
            assert first == second
            return stats["totals"]["executed"]

        # Affinity lands both on one worker: the second is a memo hit.
        assert executed_after_two_evaluates("fingerprint_affinity") == 1
        # Round robin alternates two workers: both pay the cold miss.
        assert executed_after_two_evaluates("round_robin") == 2

    def test_ping_reports_fleet_summary(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                reply = client.ping()
        assert reply["role"] == "orchestrator"
        assert reply["counters"] is None
        assert reply["workers"] == {"total": 2, "live": 2}
        assert reply["strategy"] == "fingerprint_affinity"

    def test_search_forwarded_to_a_worker(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                result = client.search(
                    works=[1.0, 2.0], speeds=[1.0, 1.0, 1.0],
                    restarts=1, seed=0,
                )
        assert result["throughput"] > 0
        assert result["evaluations"] > 0

    def test_solve_forwarded(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                value = client.solve("example_a")
        assert value > 0

    def test_empty_batch(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                values, failures, stats = client.evaluate_batch([])
        assert values == [] and failures == []
        assert stats["units"] == 0


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_batch_survives_worker_killed_between_requests(self):
        tasks = distinct_tasks(6)
        with local_fleet(3, retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            with fleet.client() as client:
                before, fail_before, _ = client.evaluate_batch(tasks)
                fleet.kill_worker("w1")
                after, fail_after, stats = client.evaluate_batch(tasks)
        assert fail_before == [] and fail_after == []
        assert after == before  # no lost, duplicated or reordered units
        assert len(after) == len(tasks)
        # The dead worker's shard was re-dispatched to survivors.
        assert stats["executed"] + stats["memo_hits"] + stats[
            "disk_hits"] == len(tasks)

    def test_single_op_fails_over_to_next_candidate(self):
        task = pattern_task(2, 3)
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                first = client.evaluate(task)
                # Kill whichever worker affinity owns for this key.
                owner = max(
                    fleet.catalog.stats(), key=lambda r: r["routed"]
                )["name"]
                fleet.kill_worker(owner)
                second = client.evaluate(task)
                stats = client.stats()
        assert second == first
        rows = {r["name"]: r for r in stats["workers"]}
        assert rows[owner]["failovers"] >= 1

    def test_dropped_reply_mid_batch_is_retried_not_lost(self):
        # drop:1 severs the connection before the reply — the shard
        # dies mid-request exactly like a crashed worker, and the
        # re-dispatch must neither lose nor duplicate units.
        tasks = distinct_tasks(6)
        with local_fleet(3, faults={1: "drop:1"}, retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            with fleet.client() as client:
                values, failures, _stats = client.evaluate_batch(tasks)
                stats = client.stats()
        assert failures == []
        assert all(v is not None for v in values)
        # The drop consumed its budget against exactly one shard.
        assert stats["orchestrator"]["failovers"] >= 1
        assert stats["totals"]["units"] >= len(tasks)  # retried shard re-ran

    def test_worker_evicted_after_consecutive_failures_then_excluded(self):
        with local_fleet(2, strategy="round_robin", retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
        )) as fleet:
            fleet.kill_worker("w0")
            with fleet.client() as client:
                for task in distinct_tasks(6):
                    client.evaluate(task)
                stats = client.stats()
        rows = {r["name"]: r for r in stats["workers"]}
        assert rows["w0"]["live"] is False
        assert rows["w0"]["evictions"] == 1
        assert rows["w1"]["live"] is True

    def test_whole_fleet_down_raises_unavailable(self):
        with local_fleet(2, retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
        )) as fleet:
            fleet.kill_worker("w0")
            fleet.kill_worker("w1")
            with fleet.client() as client:
                with pytest.raises(ServiceUnavailable):
                    client.request(
                        {"op": "evaluate", "task": pattern_task()}, retry=None
                    )

    def test_check_workers_evicts_and_revives(self):
        with local_fleet(2) as fleet:
            orch = fleet.orchestrator
            assert orch.check_workers() == {"w0": True, "w1": True}
            fleet.kill_worker("w1")
            for _ in range(fleet.catalog.max_consecutive_failures):
                results = orch.check_workers()
            assert results == {"w0": True, "w1": False}
            assert [w.name for w in fleet.catalog.live_workers()] == ["w0"]


class TestKilledMidCampaign:
    def test_store_byte_identical_and_no_lost_units(self, tmp_path):
        """The PR acceptance proof: a worker dies *while* a campaign is
        streaming through the orchestrator; the campaign completes with
        zero lost or duplicated run units and the store is
        byte-identical to a direct in-process run."""
        spec = get_preset("smoke")
        direct_store = ResultStore(tmp_path / "direct.jsonl")
        run_campaign(spec, direct_store)

        fleet_path = tmp_path / "fleet.jsonl"
        with local_fleet(3, retry=RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            host, port = fleet.endpoint
            killer = threading.Timer(0.05, fleet.kill_worker, args=("w1",))
            killer.start()
            try:
                client = ServiceClient(
                    host, port, retry=RetryPolicy(max_attempts=4, seed=0)
                )
                with client:
                    summary = run_campaign(
                        spec, ResultStore(fleet_path), client=client
                    )
            finally:
                killer.cancel()
                killer.join()
        assert summary.executed == summary.total
        assert summary.skipped == 0
        assert fleet_path.read_bytes() == (
            tmp_path / "direct.jsonl"
        ).read_bytes()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture
def cli_fleet():
    """A 2-worker in-process fleet for CLI probes."""
    with local_fleet(2, strategy="round_robin") as fleet:
        yield fleet


class TestFleetCli:
    def test_orchestrator_role_requires_workers(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--role", "orchestrator", "--port", "0"])
        assert exc.value.code == 2

    def test_workers_flag_requires_orchestrator_role(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "0", "--workers", "127.0.0.1:7781"])
        assert exc.value.code == 2

    def test_malformed_worker_list_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve", "--role", "orchestrator", "--port", "0",
                "--workers", "7781,nope",
            ])
        assert exc.value.code == 2

    def test_unknown_strategy_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve", "--role", "orchestrator", "--port", "0",
                "--workers", "7781", "--strategy", "best_fit",
            ])
        assert exc.value.code == 2

    def test_fleet_rejects_bad_n_workers(self):
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--n-workers", "0", "--port", "0"])
        assert exc.value.code == 2

    def test_ping_renders_fleet_summary(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main(["ping", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "role       : orchestrator (round_robin)" in out
        assert "workers    : 2/2 live" in out

    def test_ping_json_includes_fleet_fields(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main([
            "ping", "--host", host, "--port", str(port), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "orchestrator"
        assert payload["workers"] == {"total": 2, "live": 2}
        assert payload["counters"] is None

    def test_stats_renders_worker_table(self, cli_fleet, capsys):
        with cli_fleet.client() as client:
            client.evaluate_batch(distinct_tasks(4))
        host, port = cli_fleet.endpoint
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "orchestrator: strategy=round_robin" in out
        assert "0 hedges sent (0 won), 0 quarantined" in out
        assert "fleet totals: 4 units, 4 executed" in out
        for column in ("worker", "endpoint", "breaker", "routed", "failov"):
            assert column in out
        assert "w0" in out and "w1" in out
        assert "closed" in out  # healthy workers render their breaker state

    def test_stats_json_mode_is_raw_aggregate(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main([
            "stats", "--host", host, "--port", str(port), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "orchestrator"
        assert [w["name"] for w in payload["workers"]] == ["w0", "w1"]

    def test_stats_unreachable_exits_1(self, capsys):
        assert main([
            "stats", "--port", "1", "--timeout", "0.3", "--retries", "1",
        ]) == 1
        assert "stats failed" in capsys.readouterr().err

    def test_shutdown_stops_orchestrator(self, capsys):
        with local_fleet(2) as fleet:
            host, port = fleet.endpoint
            assert main([
                "shutdown", "--host", host, "--port", str(port),
            ]) == 0
            assert "stopped" in capsys.readouterr().out
