"""Tests for the fleet tier (`repro.service` orchestrator + routing).

Covers the endpoint-list parsing, the worker catalog's liveness
bookkeeping, the routing-strategy registry (round_robin / worst_fit /
fingerprint_affinity — including the rendezvous-hash minimal-disruption
property: evicting a worker moves only the keys it owned), the
orchestrator end-to-end over real sockets (request-order batch merging,
per-task failure re-indexing, fleet stats aggregation math), failover
(a worker killed mid-campaign completes with zero lost or duplicated
units and a byte-identical store), and the CLI surface
(``serve --role orchestrator``, fleet-aware ``ping``/``stats``).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.campaign import ResultStore, get_preset, run_campaign
from repro.cli import main
from repro.evaluate import StructureCache, evaluate
from repro.exceptions import (
    ServiceError,
    ServiceUnavailable,
)
from repro.mapping.examples import single_communication
from repro.service import (
    RetryPolicy,
    ServiceClient,
    WorkerCatalog,
    available_strategies,
    local_fleet,
    make_strategy,
    parse_endpoints,
    task_routing_key,
)
from repro.service.catalog import WorkerInfo


def pattern_task(u: int = 2, v: int = 2, *, solver: str = "deterministic",
                 comm_time: float = 1.0) -> dict:
    return {
        "system": {
            "kind": "single_communication",
            "params": {"u": u, "v": v, "comm_time": comm_time},
        },
        "solver": solver,
        "model": "overlap",
        "options": {},
    }


def distinct_tasks(n: int) -> list[dict]:
    """``n`` structurally distinct cheap tasks."""
    pairs = [(1 + i % 3, 1 + i // 3) for i in range(n)]
    assert len(set(pairs)) == n
    return [pattern_task(u, v) for u, v in pairs]


# ----------------------------------------------------------------------
# parse_endpoints
# ----------------------------------------------------------------------
class TestParseEndpoints:
    def test_host_port_list(self):
        assert parse_endpoints("127.0.0.1:7781,10.0.0.2:80") == [
            ("127.0.0.1", 7781), ("10.0.0.2", 80),
        ]

    def test_bare_ports_get_default_host(self):
        assert parse_endpoints("7781, 7782") == [
            ("127.0.0.1", 7781), ("127.0.0.1", 7782),
        ]

    def test_single_entry(self):
        assert parse_endpoints("host:1234") == [("host", 1234)]

    def test_empty_string_rejected(self):
        with pytest.raises(ServiceError, match="at least one"):
            parse_endpoints("")

    def test_empty_entry_reports_position(self):
        with pytest.raises(ServiceError, match="entry 2"):
            parse_endpoints("7781,,7783")

    def test_malformed_entry_reports_position(self):
        with pytest.raises(ServiceError, match="entry 2.*HOST:PORT"):
            parse_endpoints("7781,nope")

    def test_out_of_range_port_reports_position(self):
        with pytest.raises(ServiceError, match="entry 1.*out of range"):
            parse_endpoints("99999,7781")

    def test_duplicates_rejected_with_both_positions(self):
        with pytest.raises(ServiceError, match="entries 1 and 3"):
            parse_endpoints("7781,7782,127.0.0.1:7781")


# ----------------------------------------------------------------------
# WorkerCatalog
# ----------------------------------------------------------------------
class TestWorkerCatalog:
    def test_auto_names_are_stable_and_sequential(self):
        catalog = WorkerCatalog()
        names = [catalog.register("h", 7000 + i).name for i in range(3)]
        assert names == ["w0", "w1", "w2"]
        assert [w.name for w in catalog.workers()] == names
        assert len(catalog) == 3

    def test_duplicate_name_and_endpoint_rejected(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        with pytest.raises(ServiceError, match="already registered"):
            catalog.register("h", 7001, name="a")
        with pytest.raises(ServiceError, match="7000"):
            catalog.register("h", 7000)

    def test_eviction_at_threshold_and_revival(self):
        catalog = WorkerCatalog(max_consecutive_failures=3)
        catalog.register("h", 7000, name="a")
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is False
        assert catalog.record_failure("a") is True  # evicted now
        assert catalog.live_workers() == []
        assert catalog.get("a").evictions == 1
        catalog.record_success("a")  # a later successful ping revives
        assert [w.name for w in catalog.live_workers()] == ["a"]
        assert catalog.get("a").consecutive_failures == 0

    def test_success_resets_streak_before_eviction(self):
        catalog = WorkerCatalog(max_consecutive_failures=2)
        catalog.register("h", 7000, name="a")
        catalog.record_failure("a")
        catalog.record_success("a")
        assert catalog.record_failure("a") is False  # streak restarted
        assert catalog.get("a").live

    def test_traffic_accounting(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        catalog.begin("a")
        catalog.note_routed("a")
        assert catalog.get("a").in_flight == 1
        assert catalog.get("a").routed == 1
        catalog.end("a")
        assert catalog.get("a").in_flight == 0
        catalog.record_failure("a", failover=True)
        assert catalog.get("a").failovers == 1

    def test_remove_and_unknown_names(self):
        catalog = WorkerCatalog()
        catalog.register("h", 7000, name="a")
        assert catalog.remove("a").name == "a"
        assert len(catalog) == 0
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.remove("a")
        with pytest.raises(ServiceError, match="unknown worker"):
            catalog.get("a")

    def test_stats_rows_include_evicted(self):
        catalog = WorkerCatalog(max_consecutive_failures=1)
        catalog.register("h", 7000, name="a")
        catalog.register("h", 7001, name="b")
        catalog.record_failure("a")
        rows = catalog.stats()
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[0]["live"] is False and rows[1]["live"] is True

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ServiceError, match="max_consecutive_failures"):
            WorkerCatalog(max_consecutive_failures=0)


# ----------------------------------------------------------------------
# Routing strategies
# ----------------------------------------------------------------------
def _workers(n: int) -> list[WorkerInfo]:
    return [WorkerInfo(name=f"w{i}", host="h", port=7000 + i) for i in range(n)]


class TestRoutingRegistry:
    def test_builtins_registered(self):
        assert available_strategies() == (
            "fingerprint_affinity", "round_robin", "worst_fit",
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ServiceError, match="round_robin"):
            make_strategy("best_fit")

    def test_bad_options_raise_service_error(self):
        with pytest.raises(ServiceError, match="cannot configure"):
            make_strategy("round_robin", replicas=3)


class TestRoundRobin:
    def test_rotates_one_step_per_request(self):
        strategy = make_strategy("round_robin")
        workers = _workers(3)
        first = [strategy.rank("k", workers)[0].name for _ in range(6)]
        assert first == ["w0", "w1", "w2", "w0", "w1", "w2"]

    def test_ranking_is_a_permutation(self):
        strategy = make_strategy("round_robin")
        workers = _workers(4)
        ranked = strategy.rank("k", workers)
        assert sorted(w.name for w in ranked) == ["w0", "w1", "w2", "w3"]

    def test_empty_pool(self):
        assert make_strategy("round_robin").rank("k", []) == []


class TestWorstFit:
    def test_least_depth_first(self):
        workers = _workers(3)
        workers[0].in_flight = 2
        workers[1].in_flight = 0
        workers[2].in_flight = 1
        ranked = make_strategy("worst_fit").rank("k", workers)
        assert [w.name for w in ranked] == ["w1", "w2", "w0"]

    def test_ties_break_by_name(self):
        workers = list(reversed(_workers(3)))  # presented w2, w1, w0
        ranked = make_strategy("worst_fit").rank("k", workers)
        assert [w.name for w in ranked] == ["w0", "w1", "w2"]


class TestFingerprintAffinity:
    def test_deterministic_ranking(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        for key in ("a", "b", "c"):
            r1 = [w.name for w in strategy.rank(key, workers)]
            r2 = [w.name for w in make_strategy(
                "fingerprint_affinity").rank(key, list(reversed(workers)))]
            assert r1 == r2  # same key, same ranking, any presentation order

    def test_keys_spread_over_workers(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        owners = {
            f"key{i}": strategy.rank(f"key{i}", workers)[0].name
            for i in range(200)
        }
        counts = {name: 0 for name in ("w0", "w1", "w2", "w3")}
        for owner in owners.values():
            counts[owner] += 1
        # All four workers own a meaningful shard (rendezvous balance).
        assert all(count >= 20 for count in counts.values()), counts

    def test_eviction_moves_only_the_evicted_workers_keys(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        keys = [f"key{i}" for i in range(200)]
        before = {k: strategy.rank(k, workers)[0].name for k in keys}
        survivors = [w for w in workers if w.name != "w2"]
        after = {k: strategy.rank(k, survivors)[0].name for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Exactly the evicted worker's keys move — nothing else.
        assert set(moved) == {k for k in keys if before[k] == "w2"}
        # ... and each lands on its second choice from the full ranking.
        for key in moved:
            full = [w.name for w in strategy.rank(key, workers)]
            assert after[key] == full[1]

    def test_rejoin_restores_original_owners(self):
        strategy = make_strategy("fingerprint_affinity")
        workers = _workers(4)
        keys = [f"key{i}" for i in range(50)]
        before = {k: strategy.rank(k, workers)[0].name for k in keys}
        again = {k: strategy.rank(k, list(workers))[0].name for k in keys}
        assert before == again


class TestTaskRoutingKey:
    def test_same_structure_different_timing_same_key(self):
        # comm_time changes firing times, not topology: same structure
        # fingerprint, same shard — the shared reachability exploration
        # stays hot for both.
        a = task_routing_key(pattern_task(2, 3, comm_time=1.0))
        b = task_routing_key(pattern_task(2, 3, comm_time=2.0))
        assert a == b

    def test_different_topology_different_key(self):
        assert task_routing_key(pattern_task(2, 3)) != task_routing_key(
            pattern_task(3, 2)
        )

    def test_model_is_part_of_the_key(self):
        strict = dict(pattern_task(2, 2), model="strict")
        assert task_routing_key(pattern_task(2, 2)) != task_routing_key(strict)

    def test_garbage_task_still_routes(self):
        key = task_routing_key({"system": {"kind": "nope"}})
        assert isinstance(key, str) and key
        assert key == task_routing_key({"system": {"kind": "nope"}})
        assert isinstance(task_routing_key(object()), str)


# ----------------------------------------------------------------------
# Orchestrator end-to-end (real sockets, in-process fleet)
# ----------------------------------------------------------------------
class TestOrchestratorEndToEnd:
    def test_values_match_direct_evaluation(self):
        tasks = distinct_tasks(5)
        direct = [
            evaluate(
                single_communication(
                    t["system"]["params"]["u"], t["system"]["params"]["v"],
                    comm_time=1.0,
                ),
                solver="deterministic", model="overlap",
                cache=StructureCache(),
            )
            for t in tasks
        ]
        with local_fleet(3) as fleet:
            with fleet.client() as client:
                values, failures, stats = client.evaluate_batch(tasks)
                single = client.evaluate(tasks[0])
        assert failures == []
        assert values == direct  # merged back in request order, exactly
        assert single == direct[0]
        assert stats["units"] == 5 and stats["executed"] == 5

    def test_batch_failures_reindexed_to_request_order(self):
        tasks = distinct_tasks(4)
        tasks[1] = {"system": {"kind": "nope"}, "solver": "deterministic",
                    "model": "overlap", "options": {}}
        with local_fleet(3) as fleet:
            with fleet.client() as client:
                values, failures, _stats = client.evaluate_batch(tasks)
        assert [f["index"] for f in failures] == [1]
        assert values[1] is None
        assert all(values[i] is not None for i in (0, 2, 3))

    def test_stats_totals_equal_sum_of_worker_rows(self):
        with local_fleet(3, strategy="round_robin") as fleet:
            with fleet.client() as client:
                client.evaluate_batch(distinct_tasks(6))
                client.evaluate(pattern_task(3, 3))
                stats = client.stats()
        assert stats["role"] == "orchestrator"
        rows = stats["workers"]
        reported = [r["reported"]["requests"] for r in rows]
        for field in ("units", "executed", "batches", "memo_hits"):
            assert stats["totals"][field] == sum(
                r.get(field, 0) for r in reported
            ), field
        assert stats["totals"]["units"] == 7
        agg = stats["structure_cache"]
        assert agg["hits"] + agg["misses"] == agg["requests"]
        assert stats["orchestrator"]["units"] == 7
        assert stats["orchestrator"]["batches"] == 1

    def test_round_robin_spreads_traffic_over_all_workers(self):
        with local_fleet(2, strategy="round_robin") as fleet:
            with fleet.client() as client:
                client.evaluate_batch(distinct_tasks(4))
                stats = client.stats()
        routed = {r["name"]: r["routed"] for r in stats["workers"]}
        assert routed["w0"] > 0 and routed["w1"] > 0

    def test_affinity_dedupes_repeats_where_round_robin_pays_twice(self):
        task = pattern_task(2, 3)

        def executed_after_two_evaluates(strategy: str) -> int:
            with local_fleet(2, strategy=strategy) as fleet:
                with fleet.client() as client:
                    first = client.evaluate(task)
                    second = client.evaluate(task)
                    stats = client.stats()
            assert first == second
            return stats["totals"]["executed"]

        # Affinity lands both on one worker: the second is a memo hit.
        assert executed_after_two_evaluates("fingerprint_affinity") == 1
        # Round robin alternates two workers: both pay the cold miss.
        assert executed_after_two_evaluates("round_robin") == 2

    def test_ping_reports_fleet_summary(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                reply = client.ping()
        assert reply["role"] == "orchestrator"
        assert reply["counters"] is None
        assert reply["workers"] == {"total": 2, "live": 2}
        assert reply["strategy"] == "fingerprint_affinity"

    def test_search_forwarded_to_a_worker(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                result = client.search(
                    works=[1.0, 2.0], speeds=[1.0, 1.0, 1.0],
                    restarts=1, seed=0,
                )
        assert result["throughput"] > 0
        assert result["evaluations"] > 0

    def test_solve_forwarded(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                value = client.solve("example_a")
        assert value > 0

    def test_empty_batch(self):
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                values, failures, stats = client.evaluate_batch([])
        assert values == [] and failures == []
        assert stats["units"] == 0


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_batch_survives_worker_killed_between_requests(self):
        tasks = distinct_tasks(6)
        with local_fleet(3, retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            with fleet.client() as client:
                before, fail_before, _ = client.evaluate_batch(tasks)
                fleet.kill_worker("w1")
                after, fail_after, stats = client.evaluate_batch(tasks)
        assert fail_before == [] and fail_after == []
        assert after == before  # no lost, duplicated or reordered units
        assert len(after) == len(tasks)
        # The dead worker's shard was re-dispatched to survivors.
        assert stats["executed"] + stats["memo_hits"] + stats[
            "disk_hits"] == len(tasks)

    def test_single_op_fails_over_to_next_candidate(self):
        task = pattern_task(2, 3)
        with local_fleet(2) as fleet:
            with fleet.client() as client:
                first = client.evaluate(task)
                # Kill whichever worker affinity owns for this key.
                owner = max(
                    fleet.catalog.stats(), key=lambda r: r["routed"]
                )["name"]
                fleet.kill_worker(owner)
                second = client.evaluate(task)
                stats = client.stats()
        assert second == first
        rows = {r["name"]: r for r in stats["workers"]}
        assert rows[owner]["failovers"] >= 1

    def test_dropped_reply_mid_batch_is_retried_not_lost(self):
        # drop:1 severs the connection before the reply — the shard
        # dies mid-request exactly like a crashed worker, and the
        # re-dispatch must neither lose nor duplicate units.
        tasks = distinct_tasks(6)
        with local_fleet(3, faults={1: "drop:1"}, retry=RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            with fleet.client() as client:
                values, failures, _stats = client.evaluate_batch(tasks)
                stats = client.stats()
        assert failures == []
        assert all(v is not None for v in values)
        # The drop consumed its budget against exactly one shard.
        assert stats["orchestrator"]["failovers"] >= 1
        assert stats["totals"]["units"] >= len(tasks)  # retried shard re-ran

    def test_worker_evicted_after_consecutive_failures_then_excluded(self):
        with local_fleet(2, strategy="round_robin", retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
        )) as fleet:
            fleet.kill_worker("w0")
            with fleet.client() as client:
                for task in distinct_tasks(6):
                    client.evaluate(task)
                stats = client.stats()
        rows = {r["name"]: r for r in stats["workers"]}
        assert rows["w0"]["live"] is False
        assert rows["w0"]["evictions"] == 1
        assert rows["w1"]["live"] is True

    def test_whole_fleet_down_raises_unavailable(self):
        with local_fleet(2, retry=RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.02, seed=0,
        )) as fleet:
            fleet.kill_worker("w0")
            fleet.kill_worker("w1")
            with fleet.client() as client:
                with pytest.raises(ServiceUnavailable):
                    client.request(
                        {"op": "evaluate", "task": pattern_task()}, retry=None
                    )

    def test_check_workers_evicts_and_revives(self):
        with local_fleet(2) as fleet:
            orch = fleet.orchestrator
            assert orch.check_workers() == {"w0": True, "w1": True}
            fleet.kill_worker("w1")
            for _ in range(fleet.catalog.max_consecutive_failures):
                results = orch.check_workers()
            assert results == {"w0": True, "w1": False}
            assert [w.name for w in fleet.catalog.live_workers()] == ["w0"]


class TestKilledMidCampaign:
    def test_store_byte_identical_and_no_lost_units(self, tmp_path):
        """The PR acceptance proof: a worker dies *while* a campaign is
        streaming through the orchestrator; the campaign completes with
        zero lost or duplicated run units and the store is
        byte-identical to a direct in-process run."""
        spec = get_preset("smoke")
        direct_store = ResultStore(tmp_path / "direct.jsonl")
        run_campaign(spec, direct_store)

        fleet_path = tmp_path / "fleet.jsonl"
        with local_fleet(3, retry=RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.05, seed=0,
        )) as fleet:
            host, port = fleet.endpoint
            killer = threading.Timer(0.05, fleet.kill_worker, args=("w1",))
            killer.start()
            try:
                client = ServiceClient(
                    host, port, retry=RetryPolicy(max_attempts=4, seed=0)
                )
                with client:
                    summary = run_campaign(
                        spec, ResultStore(fleet_path), client=client
                    )
            finally:
                killer.cancel()
                killer.join()
        assert summary.executed == summary.total
        assert summary.skipped == 0
        assert fleet_path.read_bytes() == (
            tmp_path / "direct.jsonl"
        ).read_bytes()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture
def cli_fleet():
    """A 2-worker in-process fleet for CLI probes."""
    with local_fleet(2, strategy="round_robin") as fleet:
        yield fleet


class TestFleetCli:
    def test_orchestrator_role_requires_workers(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--role", "orchestrator", "--port", "0"])
        assert exc.value.code == 2

    def test_workers_flag_requires_orchestrator_role(self):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "0", "--workers", "127.0.0.1:7781"])
        assert exc.value.code == 2

    def test_malformed_worker_list_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve", "--role", "orchestrator", "--port", "0",
                "--workers", "7781,nope",
            ])
        assert exc.value.code == 2

    def test_unknown_strategy_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "serve", "--role", "orchestrator", "--port", "0",
                "--workers", "7781", "--strategy", "best_fit",
            ])
        assert exc.value.code == 2

    def test_fleet_rejects_bad_n_workers(self):
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--n-workers", "0", "--port", "0"])
        assert exc.value.code == 2

    def test_ping_renders_fleet_summary(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main(["ping", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "role       : orchestrator (round_robin)" in out
        assert "workers    : 2/2 live" in out

    def test_ping_json_includes_fleet_fields(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main([
            "ping", "--host", host, "--port", str(port), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "orchestrator"
        assert payload["workers"] == {"total": 2, "live": 2}
        assert payload["counters"] is None

    def test_stats_renders_worker_table(self, cli_fleet, capsys):
        with cli_fleet.client() as client:
            client.evaluate_batch(distinct_tasks(4))
        host, port = cli_fleet.endpoint
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "orchestrator: strategy=round_robin" in out
        assert "fleet totals: 4 units, 4 executed" in out
        for column in ("worker", "endpoint", "live", "routed", "failov"):
            assert column in out
        assert "w0" in out and "w1" in out

    def test_stats_json_mode_is_raw_aggregate(self, cli_fleet, capsys):
        host, port = cli_fleet.endpoint
        assert main([
            "stats", "--host", host, "--port", str(port), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "orchestrator"
        assert [w["name"] for w in payload["workers"]] == ["w0", "w1"]

    def test_stats_unreachable_exits_1(self, capsys):
        assert main([
            "stats", "--port", "1", "--timeout", "0.3", "--retries", "1",
        ]) == 1
        assert "stats failed" in capsys.readouterr().err

    def test_shutdown_stops_orchestrator(self, capsys):
        with local_fleet(2) as fleet:
            host, port = fleet.endpoint
            assert main([
                "shutdown", "--host", host, "--port", str(port),
            ]) == 0
            assert "stopped" in capsys.readouterr().out
