"""Tests for empirical stochastic orders and the N.B.U.E. sample test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    Gamma,
    HyperExponential,
    Uniform,
    empirical_icx_dominated,
    empirical_st_dominated,
    is_empirically_nbue,
    mean_residual_life,
    nbue_margin,
    stop_loss,
)


class TestStrongOrder:
    def test_shifted_sample_dominates(self, rng):
        x = rng.exponential(1.0, 5000)
        assert empirical_st_dominated(x, x + 0.5)
        assert not empirical_st_dominated(x + 0.5, x, tolerance=0.01)

    def test_scaling_dominates(self, rng):
        x = rng.exponential(1.0, 5000)
        assert empirical_st_dominated(x, 2.0 * x)

    def test_reflexive(self, rng):
        x = rng.gamma(2.0, 1.0, 1000)
        assert empirical_st_dominated(x, x)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_st_dominated([], [1.0])


class TestIcxOrder:
    def test_deterministic_below_exponential(self, rng):
        """The Theorem 7 workhorse: constant ≤icx N.B.U.E. ≤icx exponential."""
        const = np.full(40_000, 1.0)
        expo = Exponential(1.0).sample(rng, 40_000)
        assert empirical_icx_dominated(const, expo, tolerance=0.02)
        assert not empirical_icx_dominated(expo, const, tolerance=0.02)

    def test_nbue_between_extremes(self, rng):
        """A uniform (N.B.U.E.) law sits inside the icx sandwich."""
        uni = Uniform.from_mean(1.0).sample(rng, 40_000)
        const = np.full(40_000, 1.0)
        expo = Exponential(1.0).sample(rng, 40_000)
        assert empirical_icx_dominated(const, uni, tolerance=0.02)
        assert empirical_icx_dominated(uni, expo, tolerance=0.02)

    def test_hyperexponential_above_exponential(self, rng):
        """DFR laws exceed the exponential in icx order (same mean)."""
        expo = Exponential(1.0).sample(rng, 60_000)
        hyper = HyperExponential.from_mean(1.0, cv2=6.0).sample(rng, 60_000)
        assert empirical_icx_dominated(expo, hyper, tolerance=0.02)
        assert not empirical_icx_dominated(hyper, expo, tolerance=0.02)

    def test_icx_is_variability_order_same_mean(self, rng):
        g_low = Gamma.from_mean(1.0, shape=4.0).sample(rng, 60_000)
        g_high = Gamma.from_mean(1.0, shape=0.5).sample(rng, 60_000)
        assert empirical_icx_dominated(g_low, g_high, tolerance=0.02)


class TestStopLoss:
    def test_at_zero_equals_mean(self, rng):
        x = rng.gamma(2.0, 1.5, 20_000)
        assert stop_loss(x, 0.0)[0] == pytest.approx(x.mean())

    def test_decreasing_in_t(self, rng):
        x = rng.exponential(1.0, 10_000)
        vals = stop_loss(x, [0.0, 0.5, 1.0, 2.0])
        assert (np.diff(vals) <= 1e-12).all()

    def test_exponential_closed_form(self, rng):
        x = Exponential(1.0).sample(rng, 400_000)
        # E[(X - t)+] = exp(-t) for a unit exponential.
        assert stop_loss(x, 1.0)[0] == pytest.approx(np.exp(-1.0), rel=0.03)


class TestMeanResidualLife:
    def test_exponential_is_memoryless(self, rng):
        x = Exponential(2.0).sample(rng, 400_000)
        assert mean_residual_life(x, 3.0) == pytest.approx(2.0, rel=0.05)

    def test_deterministic_decreases(self, rng):
        x = Deterministic(2.0).sample(rng, 1000)
        assert mean_residual_life(x, 1.0) == pytest.approx(1.0)

    def test_no_exceedances_returns_zero(self):
        assert mean_residual_life([1.0, 2.0], 5.0) == 0.0


class TestNBUESampleTest:
    @pytest.mark.parametrize(
        "dist",
        [
            Deterministic(1.0),
            Exponential(1.0),
            Uniform.from_mean(1.0),
            Gamma.from_mean(1.0, shape=3.0),
        ],
        ids=lambda d: d.name,
    )
    def test_nbue_laws_pass(self, dist, rng):
        x = dist.sample(rng, 100_000)
        assert is_empirically_nbue(x)

    @pytest.mark.parametrize(
        "dist",
        [
            HyperExponential.from_mean(1.0, cv2=8.0),
            Gamma.from_mean(1.0, shape=0.3),
        ],
        ids=lambda d: f"{d.name}-cv2={d.cv2:.1f}",
    )
    def test_non_nbue_laws_fail(self, dist, rng):
        x = dist.sample(rng, 100_000)
        assert nbue_margin(x) > 0.1
        assert not is_empirically_nbue(x)

    def test_margin_sign_matches_flag(self, rng):
        """The empirical test agrees with the analytic classification."""
        for dist in [
            Gamma.from_mean(1.0, shape=0.4),
            Gamma.from_mean(1.0, shape=2.5),
            HyperExponential.from_mean(1.0, cv2=5.0),
            Uniform.from_mean(1.0),
        ]:
            x = dist.sample(rng, 150_000)
            assert is_empirically_nbue(x, slack=0.1) == dist.is_nbue
