"""Unit tests for mappings, round-robin paths and resource cycle-times."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Application, Mapping, Platform
from repro.exceptions import InvalidMappingError
from repro.mapping import (
    all_paths,
    cycle_times,
    example_a,
    example_c,
    lcm_all,
    max_cycle_time,
    path_of_row,
    random_mapping,
    random_replication,
    single_communication,
)
from repro.mapping.resources import critical_resource
from repro.types import ExecutionModel

from tests.conftest import make_mapping


class TestRoundRobin:
    def test_lcm_all(self):
        assert lcm_all([1, 2, 3, 1]) == 6
        assert lcm_all([5, 21, 27, 11]) == 10395
        assert lcm_all([4]) == 4

    def test_lcm_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_all([])
        with pytest.raises(ValueError):
            lcm_all([2, 0])

    def test_path_of_row(self):
        teams = [[0], [1, 2], [3, 4, 5]]
        assert path_of_row(teams, 0) == (0, 1, 3)
        assert path_of_row(teams, 1) == (0, 2, 4)
        assert path_of_row(teams, 5) == (0, 2, 5)

    def test_all_paths_count_is_lcm(self):
        """Proposition 1: the number of distinct paths is lcm(m_i)."""
        teams = [[0], [1, 2], [3, 4, 5]]
        paths = all_paths(teams)
        assert len(paths) == 6
        assert len(set(paths)) == 6

    def test_paths_repeat_after_m(self):
        teams = [[0, 1], [2, 3, 4]]
        assert path_of_row(teams, 6) == path_of_row(teams, 0)
        assert path_of_row(teams, 7) == path_of_row(teams, 1)


class TestMappingValidation:
    def test_processor_in_two_stages_rejected(self):
        app = Application.from_work([1.0, 1.0], files=[1.0])
        plat = Platform.homogeneous(3, 1.0, 1.0)
        with pytest.raises(InvalidMappingError, match="at most one stage"):
            Mapping(app, plat, teams=[[0, 1], [1, 2]])

    def test_empty_team_rejected(self):
        app = Application.from_work([1.0, 1.0], files=[1.0])
        plat = Platform.homogeneous(3, 1.0, 1.0)
        with pytest.raises(InvalidMappingError, match="empty team"):
            Mapping(app, plat, teams=[[0], []])

    def test_duplicate_in_team_rejected(self):
        app = Application.from_work([1.0])
        plat = Platform.homogeneous(2, 1.0, 1.0)
        with pytest.raises(InvalidMappingError, match="duplicates"):
            Mapping(app, plat, teams=[[0, 0]])

    def test_out_of_range_processor_rejected(self):
        app = Application.from_work([1.0])
        plat = Platform.homogeneous(2, 1.0, 1.0)
        with pytest.raises(InvalidMappingError, match="outside"):
            Mapping(app, plat, teams=[[5]])

    def test_team_count_must_match_stages(self):
        app = Application.from_work([1.0, 1.0], files=[1.0])
        plat = Platform.homogeneous(3, 1.0, 1.0)
        with pytest.raises(InvalidMappingError, match="teams"):
            Mapping(app, plat, teams=[[0]])


class TestMappingStructure:
    def test_replication_and_rows(self, three_stage_mixed):
        assert three_stage_mixed.replication == (1, 2, 4)
        assert three_stage_mixed.n_rows == 4

    def test_processor_lookup(self, three_stage_mixed):
        mp = three_stage_mixed
        assert mp.processor(0, 3) == 0
        assert mp.processor(1, 3) == 2
        assert mp.processor(2, 3) == 6

    def test_rows_of(self, three_stage_mixed):
        mp = three_stage_mixed
        assert mp.rows_of(1, 1) == [0, 2]
        assert mp.rows_of(1, 2) == [1, 3]
        assert mp.rows_of(2, 5) == [2]

    def test_stage_of(self, three_stage_mixed):
        assert three_stage_mixed.stage_of(2) == 1
        with pytest.raises(InvalidMappingError):
            three_stage_mixed.stage_of(99)

    def test_senders_receivers(self, three_stage_mixed):
        mp = three_stage_mixed
        # Stage-2 processor 3 serves rows 0; its sender at stage 1 is slot 0.
        assert mp.senders_to(2, 3) == [1]
        assert mp.receivers_from(1, 1) == [3, 5]
        assert mp.senders_to(0, 0) == []
        assert mp.receivers_from(2, 3) == []

    def test_comm_component_count(self):
        mp = make_mapping([list(range(0, 4)), list(range(4, 10))])
        assert mp.comm_component_count(0) == math.gcd(4, 6)

    def test_times_and_rates(self):
        mp = make_mapping(
            [[0], [1]], works=[6.0, 3.0], files=[10.0],
            speeds=[2.0, 3.0], bandwidth=5.0,
        )
        assert mp.compute_time(0, 0) == 3.0
        assert mp.compute_time(1, 1) == 1.0
        assert mp.comm_time(0, 0, 1) == 2.0
        assert mp.compute_rate(1, 1) == 1.0
        assert mp.comm_rate(0, 0, 1) == 0.5

    def test_used_processors(self, three_stage_mixed):
        assert three_stage_mixed.used_processors == tuple(range(7))

    def test_paths_match_roundrobin(self, three_stage_mixed):
        paths = three_stage_mixed.paths()
        assert paths[0] == (0, 1, 3)
        assert paths[1] == (0, 2, 4)
        assert paths[2] == (0, 1, 5)
        assert paths[3] == (0, 2, 6)


class TestExamples:
    def test_example_a_structure(self):
        """The paper's Example A: 6 paths, teams (1, 2, 3, 1)."""
        mp = example_a()
        assert mp.replication == (1, 2, 3, 1)
        assert mp.n_rows == 6
        # Section 3.1: data set 1 proceeds through P0, P1, P3, P6 and data
        # set 2 through P0, P2, P4, P6.
        assert mp.path(0) == (0, 1, 3, 6)
        assert mp.path(1) == (0, 2, 4, 6)

    def test_example_c_structure(self):
        """Example C: (5, 21, 27, 11); second comm has g=3, 7x9 pattern."""
        mp = example_c()
        assert mp.replication == (5, 21, 27, 11)
        assert mp.n_rows == 10395
        assert mp.comm_component_count(1) == 3
        u, v = 21 // 3, 27 // 3
        assert (u, v) == (7, 9)
        # 55 copies of the pattern per component (paper Fig. 7).
        assert mp.n_rows // (3 * u * v) == 55

    def test_single_communication(self):
        mp = single_communication(3, 4, comm_time=2.0)
        assert mp.replication == (3, 4)
        assert mp.comm_time(0, 0, 3) == 2.0
        assert mp.compute_time(0, 0) < 1e-5


class TestResources:
    def test_cycle_times_unreplicated_chain(self):
        mp = make_mapping([[0], [1]], works=[2.0, 4.0], files=[3.0])
        rc = {r.proc: r for r in cycle_times(mp)}
        assert rc[0].c_comp == 2.0
        assert rc[0].c_out == 3.0
        assert rc[0].c_in == 0.0
        assert rc[1].c_in == 3.0
        assert rc[1].c_comp == 4.0

    def test_replication_divides_busy_time(self):
        mp = make_mapping([[0], [1, 2]], works=[1.0, 4.0], files=[2.0])
        rc = {r.proc: r for r in cycle_times(mp)}
        # Each stage-2 processor touches every other data set.
        assert rc[1].c_comp == 2.0
        assert rc[1].c_in == 1.0
        # P0 sends every data set.
        assert rc[0].c_out == 2.0

    def test_exec_time_models(self):
        mp = make_mapping([[0], [1]], works=[2.0, 4.0], files=[3.0])
        rc = {r.proc: r for r in cycle_times(mp)}
        assert rc[1].exec_time(ExecutionModel.OVERLAP) == 4.0
        assert rc[1].exec_time(ExecutionModel.STRICT) == 7.0

    def test_mct_is_period_without_replication(self):
        """Section 2.3: without replication, ρ = 1/Mct exactly."""
        from repro.core import deterministic_throughput

        mp = make_mapping(
            [[0], [1], [2]], works=[2.0, 5.0, 1.0], files=[1.0, 4.0]
        )
        for model in ExecutionModel:
            mct = max_cycle_time(mp, model)
            rho = deterministic_throughput(mp, model)
            assert rho == pytest.approx(1.0 / mct, rel=1e-9)

    def test_slowest_teammate_convention(self):
        mp = make_mapping(
            [[0], [1, 2]], works=[1.0, 4.0], files=[1e-9], speeds=[1.0, 4.0, 1.0]
        )
        fast = {r.proc: r for r in cycle_times(mp, use_slowest_teammate=False)}
        slow = {r.proc: r for r in cycle_times(mp, use_slowest_teammate=True)}
        # P1 (speed 4) is faster than its teammate P2 (speed 1).
        assert fast[1].c_comp == pytest.approx(0.5)
        assert slow[1].c_comp == pytest.approx(2.0)  # paced by the slow teammate

    def test_critical_resource_identity(self):
        mp = make_mapping([[0], [1]], works=[1.0, 9.0], files=[1.0])
        crit = critical_resource(mp, "overlap")
        assert crit.proc == 1 and crit.stage == 1

    def test_mct_bounds_bottleneck_throughput(self):
        """``ρ_bottleneck <= 1/Mct`` and unbounded ``>=`` bottleneck."""
        from repro.core import deterministic_throughput
        from repro.application import random_application
        from repro.platform import random_platform

        for seed in range(8):
            r = np.random.default_rng(seed)
            app = random_application(3, r)
            plat = random_platform(8, r)
            mp = random_mapping(app, plat, r)
            bottleneck = deterministic_throughput(
                mp, "overlap", semantics="bottleneck"
            )
            unbounded = deterministic_throughput(mp, "overlap")
            mct = max_cycle_time(mp, "overlap")
            assert bottleneck <= 1.0 / mct * (1 + 1e-9)
            assert unbounded >= bottleneck * (1 - 1e-9)


class TestGenerators:
    def test_random_replication_bounds(self, rng):
        reps = random_replication(4, 10, rng)
        assert len(reps) == 4
        assert sum(reps) <= 10
        assert min(reps) >= 1

    def test_random_replication_needs_enough_processors(self, rng):
        with pytest.raises(InvalidMappingError):
            random_replication(5, 3, rng)

    def test_random_mapping_valid(self, rng):
        app = Application.uniform(3, 1.0, 1.0)
        plat = Platform.homogeneous(9, 1.0, 1.0)
        mp = random_mapping(app, plat, rng)
        assert mp.n_stages == 3
        # Validation happened at construction; teams are disjoint.
        procs = [p for t in mp.teams for p in t]
        assert len(procs) == len(set(procs))

    def test_random_mapping_fixed_replication(self, rng):
        app = Application.uniform(2, 1.0, 1.0)
        plat = Platform.homogeneous(6, 1.0, 1.0)
        mp = random_mapping(app, plat, rng, replication=[2, 3])
        assert mp.replication == (2, 3)

    def test_random_mapping_rejects_oversubscription(self, rng):
        app = Application.uniform(2, 1.0, 1.0)
        plat = Platform.homogeneous(3, 1.0, 1.0)
        with pytest.raises(InvalidMappingError):
            random_mapping(app, plat, rng, replication=[2, 3])

    def test_max_replication_respected(self, rng):
        for seed in range(10):
            r = np.random.default_rng(seed)
            reps = random_replication(3, 12, r, max_replication=2)
            assert max(reps) <= 2
