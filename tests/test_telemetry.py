"""Tests for :mod:`repro.telemetry` and its service integration.

Covers the metrics registry (instrument semantics, duplicate-name
refusal, histogram quantiles, merge associativity/commutativity,
Prometheus text rendering), the flight recorder (rotation, torn-tail
repair, slow-request marking, cross-file trace joins), the logging
plumbing, trace propagation end-to-end (worker replies carry span
telemetry, the ``metrics`` op reconciles exactly with the legacy
``stats`` counters, a trace id survives an orchestrator failover
re-dispatch into both recorder files), the campaign runner's opt-in
``record_request_ids`` (and that leaving it off preserves store
byte-identity), and the CLI ``metrics``/``trace``/``stats --watch``
surface.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.campaign import ResultStore, get_preset, run_campaign
from repro.cli import main
from repro.evaluate import TaskFailure
from repro.exceptions import CampaignError
from repro.service import (
    EvaluationEngine,
    ServiceClient,
    local_fleet,
    serve_in_thread,
)
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    FlightRecorder,
    Histogram,
    JsonLineFormatter,
    ManualClock,
    MetricsRegistry,
    configure_logging,
    find_trace,
    get_logger,
    histogram_quantile,
    merge_snapshots,
    new_request_id,
    read_events,
    render_prometheus,
)


def pattern_task(u: int = 2, v: int = 2) -> dict:
    return {
        "system": {
            "kind": "single_communication",
            "params": {"u": u, "v": v, "comm_time": 1.0},
        },
        "solver": "deterministic",
        "model": "overlap",
        "options": {},
    }


def distinct_tasks(n: int) -> list[dict]:
    pairs = [(1 + i % 3, 1 + i // 3) for i in range(n)]
    assert len(set(pairs)) == n
    return [pattern_task(u, v) for u, v in pairs]


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class TestManualClock:
    def test_deterministic_advance(self):
        clk = ManualClock(start=10.0)
        assert clk() == 10.0
        clk.advance(2.5)
        assert clk() == clk.now() == 12.5

    def test_never_backwards(self):
        clk = ManualClock()
        with pytest.raises(ValueError, match="backwards"):
            clk.advance(-1.0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "a counter")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="up"):
            c.inc(-1)

    def test_callback_backed_reads_live_state(self):
        # The fn= form is what guarantees metrics == stats: both read
        # the very same underlying integer.
        state = {"n": 0}
        reg = MetricsRegistry()
        c = reg.counter("repro_live_total", fn=lambda: state["n"])
        state["n"] = 7
        assert c.value == 7
        with pytest.raises(TypeError, match="callback-backed"):
            c.inc()

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.inc(3)
        g.dec()
        g.set(10)
        assert g.value == 10

    def test_duplicate_registration_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_once_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_once_total")

    def test_unregister_allows_rebind(self):
        reg = MetricsRegistry()
        reg.counter("repro_rebind_total")
        reg.unregister("repro_rebind_total")
        reg.counter("repro_rebind_total")  # no raise
        assert reg.names() == ["repro_rebind_total"]

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("9starts_with_digit")
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("has space")


class TestHistogram:
    def test_observe_and_snapshot(self):
        h = Histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 2, 1, 1]  # last is the +Inf overflow
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        assert snap["p50"] is not None

    def test_quantile_interpolates_and_clamps(self):
        bounds = [1.0, 2.0, 4.0]
        # 10 observations in [1, 2): p50 lands mid-bucket.
        q = histogram_quantile(bounds, [0, 10, 0, 0], 0.5)
        assert 1.0 < q < 2.0
        # Overflow bucket clamps to the largest finite bound.
        assert histogram_quantile(bounds, [0, 0, 0, 5], 0.99) == 4.0
        assert histogram_quantile(bounds, [0, 0, 0, 0], 0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile(bounds, [1, 0, 0, 0], 1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_bad_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_bad_seconds", buckets=())


def _hist_snap(values) -> dict:
    h = Histogram("repro_m_seconds", "m", buckets=(0.01, 0.1, 1.0))
    for v in values:
        h.observe(v)
    return {"repro_m_seconds": h.snapshot()}


class TestMergeSnapshots:
    def test_histogram_merge_is_associative_and_commutative(self):
        a = _hist_snap([0.005, 0.05])
        b = _hist_snap([0.5, 5.0, 0.05])
        c = _hist_snap([0.009] * 4)
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        flat = merge_snapshots(c, a, b)
        # Bucket counts (and hence every quantile) merge exactly in any
        # order; the float `sum` is associative only up to rounding.
        for merged in (left, right, flat):
            h = merged["repro_m_seconds"]
            assert h["count"] == 9
            assert h["counts"] == [5, 2, 1, 1]
            assert h["sum"] == pytest.approx(5.641)
            assert h["p50"] == left["repro_m_seconds"]["p50"]
            assert h["p99"] == left["repro_m_seconds"]["p99"]

    def test_counters_sum_and_singletons_pass_through(self):
        a = {"repro_x_total": {"type": "counter", "help": "", "value": 2}}
        b = {
            "repro_x_total": {"type": "counter", "help": "", "value": 3},
            "repro_only_b": {"type": "gauge", "help": "", "value": 1},
        }
        merged = merge_snapshots(a, b)
        assert merged["repro_x_total"]["value"] == 5
        assert merged["repro_only_b"]["value"] == 1

    def test_mismatches_raise(self):
        ctr = {"repro_x": {"type": "counter", "help": "", "value": 1}}
        gauge = {"repro_x": {"type": "gauge", "help": "", "value": 1}}
        with pytest.raises(ValueError, match="counter vs gauge"):
            merge_snapshots(ctr, gauge)
        other = {
            "repro_m_seconds": Histogram(
                "repro_m_seconds", buckets=(0.5, 1.0)
            ).snapshot()
        }
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots(_hist_snap([0.1]), other)

    def test_merge_does_not_mutate_inputs(self):
        a = _hist_snap([0.05])
        before = json.dumps(a, sort_keys=True)
        merge_snapshots(a, _hist_snap([0.5]))
        assert json.dumps(a, sort_keys=True) == before


class TestPrometheusRendering:
    def test_counter_and_histogram_lines(self):
        reg = MetricsRegistry()
        reg.counter("repro_req_total", "requests").inc(3)
        h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg.collect())
        assert "# HELP repro_req_total requests\n" in text
        assert "# TYPE repro_req_total counter\n" in text
        assert "\nrepro_req_total 3\n" in text
        assert "# TYPE repro_lat_seconds histogram\n" in text
        # Bucket counts are cumulative, +Inf last, then _sum/_count.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2\n' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_lat_seconds_count 3\n" in text
        assert text.endswith("\n")

    def test_help_line_only_when_help_registered(self):
        reg = MetricsRegistry()
        reg.counter("repro_bare_total", "").inc(1)
        text = render_prometheus(reg.collect())
        # TYPE is unconditional; HELP only appears with registered text.
        assert "# TYPE repro_bare_total counter\n" in text
        assert "# HELP" not in text


class TestHelpCompleteness:
    """Every built-in instrument must ship scrape-ready help text."""

    @staticmethod
    def assert_fully_helped(snapshot: dict, exposition: str) -> None:
        missing = [
            name for name, entry in snapshot.items() if not entry.get("help")
        ]
        assert not missing, f"instruments without help: {missing}"
        # Exposition-level pairing: one # HELP per # TYPE, no orphans.
        assert exposition.count("# TYPE ") == len(snapshot)
        assert exposition.count("# HELP ") == len(snapshot)

    def test_engine_instruments(self):
        engine = EvaluationEngine()
        try:
            snap = engine.metrics.collect()
            self.assert_fully_helped(snap, render_prometheus(snap))
        finally:
            engine.close()

    def test_server_scoped_instruments(self):
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port) as client:
                reply = client.metrics()
            self.assert_fully_helped(reply["metrics"], reply["exposition"])
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=5)

    def test_fleet_merged_instruments(self):
        with local_fleet(2, ping_interval=None) as fleet:
            with fleet.client() as client:
                client.evaluate_batch([pattern_task()])
                reply = client.metrics()
            self.assert_fully_helped(reply["metrics"], reply["exposition"])


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_events_round_trip_sorted_keys(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with FlightRecorder(path, clock=ManualClock(100.0)) as rec:
            rec.record("request", request_id="abc", op="batch", ok=True)
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["kind"] == "request"
        assert events[0]["request_id"] == "abc"
        assert events[0]["ts"] == 100.0
        raw = path.read_text().strip()
        assert raw == json.dumps(
            json.loads(raw), sort_keys=True, separators=(",", ":")
        )

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(path, max_bytes=200, keep=2)
        for i in range(40):
            rec.record("request", request_id=f"{i:016x}", op="batch")
        rec.close()
        assert rec.rotations > 0
        assert path.exists()
        assert (tmp_path / "flight.jsonl.1").exists()
        # Never more than `keep` rotated generations.
        assert not (tmp_path / "flight.jsonl.3").exists()
        # Reads stitch the surviving generations oldest-first.
        events = read_events(path)
        ids = [e["request_id"] for e in events]
        assert ids == sorted(ids, key=lambda s: int(s, 16))

    def test_torn_tail_repaired_on_open(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with FlightRecorder(path) as rec:
            rec.record("request", request_id="aa")
        # Simulate a crash mid-write: garbage with no trailing newline.
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "request", "request')
        rec2 = FlightRecorder(path)
        rec2.record("request", request_id="bb")
        rec2.close()
        assert rec2.repaired_bytes > 0
        assert [e["request_id"] for e in read_events(path)] == ["aa", "bb"]

    def test_reader_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_bytes(
            b'{"kind": "request", "request_id": "aa", "ts": 1}\n'
            b"not json at all\n"
            b"[1, 2, 3]\n"
            b'{"kind": "request", "request_id": "bb", "ts": 2}\n'
        )
        assert [e["request_id"] for e in read_events(path)] == ["aa", "bb"]

    def test_slow_threshold_marks_and_warns(self, tmp_path):
        # A handler pinned on the recorder's own logger, so the check
        # holds whether or not configure_logging() (which stops
        # propagation at the 'repro' root) ran earlier in the session.
        records: list[logging.LogRecord] = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = logging.getLogger("repro.telemetry.recorder")
        logger.addHandler(handler)
        try:
            rec = FlightRecorder(tmp_path / "f.jsonl", slow_threshold_s=0.5)
            fast = rec.record("request", request_id="f", duration_s=0.1)
            slow = rec.record("request", request_id="s", duration_s=0.9)
            rec.close()
        finally:
            logger.removeHandler(handler)
        assert "slow" not in fast
        assert slow["slow"] is True
        assert any("slow request" in r.getMessage() for r in records)

    def test_find_trace_joins_files_by_timestamp(self, tmp_path):
        clk = ManualClock(50.0)
        a = FlightRecorder(tmp_path / "orchestrator.jsonl", clock=clk)
        b = FlightRecorder(tmp_path / "w0.jsonl", clock=clk)
        b.record("request", request_id="rid1")  # ts 50: worker first
        clk.advance(1.0)
        a.record("request", request_id="rid1")  # ts 51
        a.record("request", request_id="other")
        a.close()
        b.close()
        hits = find_trace(
            "rid1", [tmp_path / "orchestrator.jsonl", tmp_path / "w0.jsonl"]
        )
        assert [(name, e["ts"]) for name, e in hits] == [
            ("w0", 50.0), ("orchestrator", 51.0),
        ]


# ----------------------------------------------------------------------
# Logging plumbing
# ----------------------------------------------------------------------
class TestLogging:
    def test_get_logger_pins_namespace(self):
        assert get_logger("service.server").name == "repro.service.server"
        assert get_logger("repro.service.server").name == "repro.service.server"

    def test_configure_is_idempotent_and_leveled(self):
        root = configure_logging(verbose=0)
        assert root.level == logging.WARNING
        root = configure_logging(verbose=1)
        assert root.level == logging.INFO
        root = configure_logging(verbose=2)
        assert root.level == logging.DEBUG
        # Re-invocation replaces the tagged handler, never stacks it.
        tagged = [
            h for h in root.handlers
            if getattr(h, "_repro_telemetry_handler", False)
        ]
        assert len(tagged) == 1

    def test_json_formatter_emits_one_object_per_line(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",),
            None,
        )
        record.fields = {"request_id": "abc"}
        payload = json.loads(JsonLineFormatter().format(record))
        assert payload["message"] == "hello world"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test"
        assert payload["request_id"] == "abc"


# ----------------------------------------------------------------------
# Trace ids and TaskFailure provenance
# ----------------------------------------------------------------------
class TestRequestIds:
    def test_new_request_id_shape(self):
        rid = new_request_id()
        assert len(rid) == 16
        int(rid, 16)  # hex
        assert new_request_id() != rid

    def test_task_failure_carries_request_id_only_when_set(self):
        bare = TaskFailure.of(ValueError("boom"))
        assert bare.to_dict() == {"error": "ValueError", "message": "boom"}
        stamped = bare.stamp("abc123")
        assert stamped.to_dict() == {
            "error": "ValueError", "message": "boom", "request_id": "abc123",
        }
        # Stamping never overwrites and never copies needlessly.
        assert stamped.stamp("zzz") is stamped
        assert bare.stamp(None) is bare


# ----------------------------------------------------------------------
# Worker integration: spans, metrics op, recorder events
# ----------------------------------------------------------------------
class TestWorkerTelemetry:
    def test_metrics_reconcile_exactly_with_stats(self, tmp_path):
        engine = EvaluationEngine()
        rec = FlightRecorder(tmp_path / "w.jsonl")
        server, thread = serve_in_thread(engine, recorder=rec)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port) as client:
                client.evaluate_batch(distinct_tasks(4))
                client.evaluate_batch(distinct_tasks(4))  # memo hits
                rid = client.last_request_id
                telemetry = client.last_telemetry
                stats = client.stats()
                metrics = client.metrics()
            # (a) the reply carried worker span telemetry
            assert telemetry["node"] == "worker"
            assert telemetry["request_id"] == rid
            spans = telemetry["spans"]
            assert set(spans) >= {"queue_wait_s", "execute_s", "total_s"}
            assert spans["total_s"] >= spans["execute_s"] >= 0.0
            # (b) metrics reconcile exactly with the legacy stats op
            snap = metrics["metrics"]
            requests = stats["counters"]["requests"]
            assert snap["repro_engine_units_total"]["value"] == requests["units"]
            assert (
                snap["repro_engine_executed_total"]["value"]
                == requests["executed"]
            )
            assert (
                snap["repro_engine_memo_hits_total"]["value"]
                == requests["memo_hits"]
            )
            assert (
                snap["repro_structure_cache_hits_total"]["value"]
                == stats["counters"]["structure_cache"]["hits"]
            )
            # (c) wire stats never leak the span block (byte-identity
            # of stores depends on the legacy stats shape).
            assert "span" not in requests
            # (d) text exposition renders the same snapshot
            assert "# TYPE repro_engine_batch_seconds histogram" in (
                metrics["exposition"]
            )
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            rec.close()
            thread.join(timeout=5)
        events = [
            e for e in read_events(tmp_path / "w.jsonl")
            if e.get("request_id") == rid
        ]
        assert len(events) == 1
        assert events[0]["kind"] == "request"
        assert events[0]["node"] == "worker"
        assert events[0]["ok"] is True
        assert events[0]["spans"]["total_s"] >= 0.0

    def test_client_reuses_request_id_across_retries(self):
        # The id is minted once per logical request; a caller-supplied
        # one is honored untouched.
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port) as client:
                reply = client.request(
                    {"op": "ping", "request_id": "feedface00000000"}
                )
                assert reply["ok"]
                assert client.last_request_id == "feedface00000000"
                client.ping()
                assert client.last_request_id != "feedface00000000"
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Fleet: trace survival through failover, fleet-merged metrics
# ----------------------------------------------------------------------
class TestFleetTelemetry:
    def test_trace_id_survives_failover_redispatch(self, tmp_path):
        rec_dir = tmp_path / "flight"
        with local_fleet(2, ping_interval=None, recorder_dir=rec_dir) as fleet:
            with fleet.client() as client:
                tasks = distinct_tasks(6)
                values, failures, _stats = client.evaluate_batch(tasks)
                assert not failures
                # Both workers owned shards of that batch.
                hops = client.last_telemetry["hops"]
                assert {h["worker"] for h in hops} == {"w0", "w1"}
                fleet.kill_worker("w1")
                values2, failures2, _ = client.evaluate_batch(tasks)
                rid = client.last_request_id
                telemetry = client.last_telemetry
                assert not failures2
                assert values2 == values
            assert telemetry["node"] == "orchestrator"
            assert set(telemetry["spans"]) == {
                "route_s", "execute_s", "merge_s", "total_s",
            }
            hops = telemetry["hops"]
            lost = [h for h in hops if h["status"] == "lost"]
            assert lost and lost[0]["worker"] == "w1"
            # The re-dispatched shard landed on the survivor, same id.
            assert any(
                h["worker"] == "w0" and h["status"] == "ok" for h in hops
            )
        # After close: the trace joins across orchestrator + survivor.
        events = find_trace(
            rid, [rec_dir / "orchestrator.jsonl", rec_dir / "w0.jsonl"]
        )
        sources = {name for name, _ in events}
        assert sources == {"orchestrator", "w0"}
        kinds = {e["kind"] for _, e in events}
        assert kinds == {"request", "hop"}
        hop_statuses = {
            e["status"] for _, e in events if e["kind"] == "hop"
        }
        assert "lost" in hop_statuses

    def test_orchestrator_metrics_merge_fleet_histograms(self):
        with local_fleet(2, ping_interval=None) as fleet:
            with fleet.client() as client:
                client.evaluate_batch(distinct_tasks(6))
                reply = client.metrics()
            assert reply["role"] == "orchestrator"
            assert reply["workers_reporting"] == 2
            snap = reply["metrics"]
            # Two workers' engine counters folded into fleet totals.
            assert snap["repro_engine_units_total"]["value"] == 6
            batch_hist = snap["repro_engine_batch_seconds"]
            assert batch_hist["count"] == 2  # one sub-batch per worker
            assert (
                snap["repro_orchestrator_requests_total"]["value"] >= 1
            )
            assert "repro_fleet_live_workers" in snap
            assert "# TYPE repro_engine_batch_seconds histogram" in (
                reply["exposition"]
            )


# ----------------------------------------------------------------------
# Campaign provenance
# ----------------------------------------------------------------------
class TestCampaignRequestIds:
    def _run(self, tmp_path, name, client=None, **kwargs):
        store = ResultStore(tmp_path / name)
        run_campaign(get_preset("smoke"), store, client=client, **kwargs)
        return store

    def test_default_stays_byte_identical(self, tmp_path):
        local = self._run(tmp_path, "local.jsonl")
        engine = EvaluationEngine()
        server, thread = serve_in_thread(engine)
        host, port = server.endpoint
        try:
            with ServiceClient(host, port) as client:
                via = self._run(tmp_path, "via.jsonl", client=client)
                stamped = self._run(
                    tmp_path, "stamped.jsonl", client=client,
                    record_request_ids=True,
                )
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=5)
        assert via.path.read_bytes() == local.path.read_bytes()
        rows = [
            json.loads(line)
            for line in stamped.path.read_text().splitlines()
        ]
        assert rows and all(
            len(r["request_id"]) == 16 for r in rows
        )
        # Stripping the provenance restores the exact local rows.
        stripped = [
            {k: v for k, v in r.items() if k != "request_id"} for r in rows
        ]
        local_rows = [
            json.loads(line) for line in local.path.read_text().splitlines()
        ]
        assert stripped == local_rows

    def test_record_request_ids_requires_client(self, tmp_path):
        store = ResultStore(tmp_path / "x.jsonl")
        with pytest.raises(CampaignError, match="service client"):
            run_campaign(
                get_preset("smoke"), store, record_request_ids=True
            )


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture
def cli_worker(tmp_path):
    engine = EvaluationEngine()
    rec = FlightRecorder(tmp_path / "flight.jsonl")
    server, thread = serve_in_thread(engine, recorder=rec)
    host, port = server.endpoint
    yield host, port, tmp_path / "flight.jsonl"
    server.shutdown()
    server.server_close()
    engine.close()
    rec.close()
    thread.join(timeout=5)


class TestCliTelemetry:
    def test_metrics_text_and_json(self, cli_worker, capsys):
        host, port, _ = cli_worker
        assert main(["metrics", "--host", host, "--port", str(port)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_engine_units_total counter" in text
        assert main(
            ["metrics", "--host", host, "--port", str(port), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["role"] == "worker"
        assert "repro_engine_units_total" in payload["metrics"]

    def test_metrics_unreachable_exits_1(self, capsys):
        assert main(
            ["metrics", "--host", "127.0.0.1", "--port", "1",
             "--timeout", "0.2", "--retries", "1"]
        ) == 1
        assert "metrics failed" in capsys.readouterr().err

    def test_stats_watch_samples_n_times(self, cli_worker, capsys):
        host, port, _ = cli_worker
        assert main(
            ["stats", "--host", host, "--port", str(port),
             "--watch", "--interval", "0.05", "--count", "2"]
        ) == 0
        out = capsys.readouterr().out
        # Two JSON samples separated by a blank line ("requests" appears
        # in both the admission and structure-cache blocks of each).
        assert len(out.split("\n\n")) == 2

    def test_trace_renders_span_path(self, cli_worker, capsys):
        host, port, recorder_path = cli_worker
        with ServiceClient(host, port) as client:
            client.evaluate_batch([pattern_task()])
            rid = client.last_request_id
        assert main(["trace", rid, "--recorder", str(recorder_path)]) == 0
        out = capsys.readouterr().out
        assert rid in out
        assert "worker" in out and "total_s=" in out
        # A miss exits 1; --json mode dumps raw events.
        assert main(
            ["trace", "0" * 16, "--recorder", str(recorder_path)]
        ) == 1
        capsys.readouterr()
        assert main(
            ["trace", rid, "--recorder", str(recorder_path), "--json"]
        ) == 0
        events = json.loads(capsys.readouterr().out)
        assert events[0]["request_id"] == rid

    def test_trace_requires_some_recorder(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "0" * 16])
