"""Engine micro-benchmarks feeding the performance trajectory.

``python -m repro.cli bench`` runs every engine below and writes a JSON
report (``BENCH_PR1.json`` by default) mapping each engine to its median
wall time plus the state/event counts that give the timings a scale.
Subsequent PRs append ``BENCH_PR<n>.json`` files, so regressions in any
layer show up as a broken trajectory.

Benchmarked engines:

* ``reachability.vectorized`` / ``reachability.reference`` — the batched
  and the marking-at-a-time BFS on a mid-size bounded (Strict) net;
* ``markov.throughput`` — Theorem 2 end-to-end (explore + CTMC + solve);
* ``sim.fast`` / ``sim.reference`` — both discrete-event engines on the
  paper's Overlap system;
* ``replicate.serial`` / ``replicate.parallel`` — the replication runner
  with ``n_jobs=1`` vs all cores;
* ``replication.loop`` / ``replication.vectorized`` — the paper's
  Section 7.2/7.3 replication study (500 replications of the Fig. 10
  Overlap system) through the per-replication loop vs the batched numpy
  recurrence pass (``replicate(engine=)``), with the per-replication
  estimate vectors asserted byte-identical;
* ``maxplus.matmul`` — the row-blocked (max,+) product;
* ``search.uncached`` / ``search.memoized`` — the multi-start mapping
  search scored through ``repro.evaluate`` without / with the
  fingerprint memo (the PR 2 batched-search workload);
* ``evaluate_many.strict.uncached`` / ``.cached`` — a same-topology
  candidate batch under the Strict exponential solver, where the cache
  shares one reachability exploration across the whole batch;
* ``campaign.cold`` / ``campaign.resume`` — the declarative campaign
  runner on a preset grid, cold into a fresh store vs ``--resume`` on a
  completed one (which must execute 0 units and only pay for the
  expansion + store scan);
* ``service.cold`` / ``service.warm`` / ``service.coalesced`` — the
  resident evaluation service over a real loopback socket: the smoke
  batch against an empty tier-2 disk cache, the same batch against a
  freshly *restarted* server on the populated cache (which must execute
  0 evaluator runs), and N concurrent identical submissions (which must
  coalesce into exactly 1 evaluator run);
* ``service.overload`` — a synchronized burst of M distinct requests
  against a ``capacity=2`` server: shed requests get their structured
  ``overloaded`` rejection instantly (that's the p50), admitted ones
  pay the evaluation (the p99); the shed rate and both latency
  percentiles quantify the load-shedding contract;
* ``service.fleet.single`` / ``service.fleet.quad`` — a cyclic,
  coalescing-free trace over K distinct structures against one worker
  vs a 4-worker fleet behind the orchestrator, every worker's
  structure cache LRU-bounded below K: the single worker thrashes
  while fingerprint-affinity routing keeps each shard hot, so the
  fleet speedup measures *aggregate cache capacity* (the report also
  records the affinity vs round_robin hit rates on the same trace);
* ``service.selfheal`` — the same trace against a *supervised* 4-worker
  fleet with kill-every-k-batches chaos: a worker is torn down abruptly
  every k requests and the :class:`FleetSupervisor` respawns it
  mid-trace. The report records recovery latency (kill → respawn),
  goodput retained under chaos vs the clean pass, respawn/failover/
  hedge counts, and asserts the chaos pass's values byte-identical to
  the clean pass (self-healing must never lose or duplicate a unit).

``run_benchmarks(workloads=[...])`` (CLI: ``bench --workloads``) filters
the suite by substring match on the engine names above, so a single
workload pair can be re-timed without re-running everything; speedup
ratios are reported for whichever pairs actually ran.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from collections.abc import Callable
from functools import partial

import numpy as np


def _git_revision() -> str | None:
    """The repo's short HEAD revision, or None outside a git checkout.

    Recorded into every report's ``meta`` so a BENCH_*.json file stays
    attributable to the exact tree that produced it even after it is
    copied out of the repository.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else None


#: Every engine name the full suite can time, in suite order. This is
#: the vocabulary behind ``--workloads`` (substring match) and the
#: ``cli bench --list-workloads`` flag; keep it in sync with the
#: ``engines[...] =`` assignments in :func:`run_benchmarks`.
WORKLOAD_ENGINES: tuple[str, ...] = (
    "reachability.vectorized",
    "reachability.reference",
    "markov.throughput",
    "sim.fast",
    "sim.reference",
    "replicate.serial",
    "replicate.parallel",
    "replication.loop",
    "replication.vectorized",
    "maxplus.matmul",
    "search.uncached",
    "search.memoized",
    "evaluate_many.strict.uncached",
    "evaluate_many.strict.cached",
    "campaign.cold",
    "campaign.resume",
    "service.cold",
    "service.warm",
    "service.coalesced",
    "service.overload",
    "service.fleet.single",
    "service.fleet.quad",
    "service.selfheal",
)


def available_workloads() -> tuple[str, ...]:
    """Engine names the benchmark suite can time (``--workloads`` targets)."""
    return WORKLOAD_ENGINES


def _timed(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Median wall time over ``repeats`` runs and the last return value.

    One untimed warm-up call precedes the measurement, so lazy imports and
    first-touch allocations don't skew whichever engine runs first.
    """
    fn()
    times = []
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), value


def _mid_size_strict_net(quick: bool):
    """A bounded Strict-model net sized for the reachability benchmark.

    ``quick`` keeps the state space near 1k markings (CI smoke); the full
    benchmark explores ~10k markings / 44k arcs, matching the mid-size
    nets of ``benchmarks/bench_solvers.py``.
    """
    from repro import Application, Mapping, Platform
    from repro.petri import build_strict_tpn

    teams = [[0], [1, 2], [3, 4, 5]] if quick else [[0, 1], [2, 3, 4], [5, 6, 7]]
    n = len(teams)
    m = max(p for team in teams for p in team) + 1
    app = Application.from_work([1.0] * n, [1.0] * (n - 1))
    r = np.random.default_rng(1)
    speeds = r.uniform(0.5, 2.0, m).tolist()
    bw = r.uniform(0.5, 2.0, (m, m))
    bw = np.triu(bw, 1)
    bw = bw + bw.T + np.eye(m)
    platform = Platform.from_speeds(speeds, bw)
    return build_strict_tpn(Mapping(app, platform, teams))


def _sim_run(tpn, n_datasets: int, engine: str, rng: np.random.Generator):
    from repro.sim import simulate_tpn

    return simulate_tpn(tpn, n_datasets=n_datasets, rng=rng, engine=engine)


def run_benchmarks(
    *,
    quick: bool = False,
    repeats: int | None = None,
    workloads: list[str] | tuple[str, ...] | None = None,
) -> dict:
    """Run the engine micro-benchmarks and return the report dict.

    ``workloads`` filters the suite by substring match on engine names.
    Engines are timed in slower/faster blocks, so matching either side of
    a pair runs the whole block (``["replication"]`` re-times
    ``replication.loop`` *and* ``replication.vectorized`` — a ratio needs
    both). ``None`` / empty runs everything.
    """
    from repro.markov import tpn_throughput_exponential
    from repro.maxplus.matrix import MaxPlusMatrix
    from repro.petri import build_overlap_tpn
    from repro.petri.reachability import explore, explore_reference
    from repro.experiments.fig10 import paper_system
    from repro.sim import replicate, simulate_tpn

    if repeats is None:
        repeats = 2 if quick else 5
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    selected = tuple(s for s in (workloads or ()) if s)

    def _want(*names: str) -> bool:
        return not selected or any(
            sub in name for name in names for sub in selected
        )

    engines: dict[str, dict] = {}
    max_states = 500_000

    # Shared fixtures, built once on first use so a filtered run only
    # pays for what it times.
    fixtures: dict[str, object] = {}

    def _strict_net():
        if "strict" not in fixtures:
            net = _mid_size_strict_net(quick)
            net.kernel  # build the cached incidence structures up front
            fixtures["strict"] = net
        return fixtures["strict"]

    def _overlap_net():
        if "overlap" not in fixtures:
            net = build_overlap_tpn(paper_system())
            net.kernel
            fixtures["overlap"] = net
        return fixtures["overlap"]

    def _strict_reach():
        if "reach" not in fixtures:
            fixtures["reach"] = explore(_strict_net(), max_states=max_states)
        return fixtures["reach"]

    # -- reachability -------------------------------------------------
    if _want("reachability.vectorized", "reachability.reference"):
        strict = _strict_net()
        vec_t, reach = _timed(
            partial(explore, strict, max_states=max_states), repeats
        )
        fixtures["reach"] = reach
        n_arcs = sum(len(moves) for moves in reach.arcs)
        engines["reachability.vectorized"] = {
            "median_s": vec_t, "n_states": reach.n_states, "n_arcs": n_arcs,
        }
        ref_t, ref = _timed(
            partial(explore_reference, strict, max_states=max_states),
            max(1, repeats // 2),
        )
        engines["reachability.reference"] = {
            "median_s": ref_t, "n_states": ref.n_states,
            "n_arcs": sum(len(moves) for moves in ref.arcs),
        }

    # -- exact exponential throughput (Theorem 2, end to end) ---------
    if _want("markov.throughput"):
        thr_t, rho = _timed(
            partial(
                tpn_throughput_exponential, _strict_net(),
                max_states=max_states,
            ),
            max(1, repeats // 2),
        )
        engines["markov.throughput"] = {
            "median_s": thr_t, "n_states": _strict_reach().n_states,
            "throughput": float(rho),
        }

    # -- discrete-event simulation ------------------------------------
    if _want("sim.fast", "sim.reference"):
        overlap = _overlap_net()
        n_datasets = 500 if quick else 2000
        fast_t, fast = _timed(
            lambda: simulate_tpn(
                overlap, n_datasets=n_datasets, seed=7, engine="fast"
            ),
            repeats,
        )
        engines["sim.fast"] = {"median_s": fast_t, "n_events": fast.n_events,
                               "n_datasets": n_datasets}
        ref_sim_t, ref_sim = _timed(
            lambda: simulate_tpn(overlap, n_datasets=n_datasets, seed=7,
                                 engine="reference"),
            max(1, repeats // 2),
        )
        engines["sim.reference"] = {
            "median_s": ref_sim_t, "n_events": ref_sim.n_events,
            "n_datasets": n_datasets,
        }

    # -- replication runner (process pool) ----------------------------
    if _want("replicate.serial", "replicate.parallel"):
        n_rep = 4 if quick else 16
        rep_datasets = 100 if quick else 300
        run = partial(_sim_run, _overlap_net(), rep_datasets, "fast")
        serial_t, serial = _timed(
            partial(replicate, run, n_replications=n_rep, seed=11),
            max(1, repeats // 2),
        )
        engines["replicate.serial"] = {
            "median_s": serial_t, "n_replications": n_rep, "mean": serial.mean,
        }
        n_jobs = max(1, os.cpu_count() or 1)
        par_t, par = _timed(
            partial(replicate, run, n_replications=n_rep, seed=11,
                    n_jobs=n_jobs),
            max(1, repeats // 2),
        )
        engines["replicate.parallel"] = {
            "median_s": par_t, "n_replications": n_rep, "n_jobs": n_jobs,
            "mean": par.mean, "bit_identical_to_serial": par == serial,
        }

    # -- batched replication study: loop vs vectorized engine ---------
    if _want("replication.loop", "replication.vectorized"):
        from repro.sim import ReplicationSpec, replication_values

        # The paper workload: 500 replications of the Fig. 10 Overlap
        # system under exponential times (quick mode shrinks it to the
        # 32-replication CI smoke study).
        n_rep = 32 if quick else 500
        rep_nd = 200 if quick else 1000
        rspec = ReplicationSpec(
            paper_system(), "overlap", n_datasets=rep_nd, law="exponential"
        )
        loop_t, loop_sum = _timed(
            partial(replicate, rspec, n_replications=n_rep, seed=11,
                    engine="loop"),
            max(1, repeats // 2),
        )
        engines["replication.loop"] = {
            "median_s": loop_t, "n_replications": n_rep,
            "n_datasets": rep_nd, "mean": loop_sum.mean,
        }
        vec_t, vec_sum = _timed(
            partial(replicate, rspec, n_replications=n_rep, seed=11,
                    engine="vectorized"),
            repeats,
        )
        loop_vals = replication_values(
            rspec, n_replications=n_rep, seed=11, engine="loop"
        )
        vec_vals = replication_values(
            rspec, n_replications=n_rep, seed=11, engine="vectorized"
        )
        engines["replication.vectorized"] = {
            "median_s": vec_t, "n_replications": n_rep,
            "n_datasets": rep_nd, "mean": vec_sum.mean,
            "summary_identical_to_loop": vec_sum == loop_sum,
            "per_replication_identical": (
                loop_vals.tobytes() == vec_vals.tobytes()
            ),
        }

    # -- (max,+) matrix product ---------------------------------------
    if _want("maxplus.matmul"):
        n = 96 if quick else 192
        rng = np.random.default_rng(2)
        a = rng.uniform(0.0, 5.0, (n, n))
        a[rng.random((n, n)) < 0.5] = -np.inf
        mat = MaxPlusMatrix(a)
        mm_t, _ = _timed(lambda: mat @ mat, repeats)
        engines["maxplus.matmul"] = {"median_s": mm_t, "n": n}

    # -- batched mapping search (repro.evaluate) ----------------------
    from repro import Application, Mapping, Platform
    from repro.evaluate import StructureCache, evaluate_many
    from repro.mapping.heuristics import random_restart_search

    if _want("search.uncached", "search.memoized"):
        # A paper-style instance: heterogeneous works on a homogeneous
        # platform, where many search moves are throughput-isomorphic and
        # the fingerprint memo shines (heterogeneous platforms still
        # dedupe repeats, just fewer of them).
        s_rng = np.random.default_rng(0)
        s_app = Application.from_work(
            s_rng.uniform(1.0, 8.0, 4).tolist(),
            s_rng.uniform(0.5, 2.0, 3).tolist(),
        )
        s_plat = Platform.homogeneous(12, 2.0, 1.0)
        n_restarts = 1 if quick else 3

        def _search(enabled: bool):
            cache = StructureCache(enabled=enabled)
            return random_restart_search(
                s_app, s_plat, n_restarts=n_restarts, seed=2, cache=cache
            )

        un_t, un = _timed(partial(_search, False), max(1, repeats // 2))
        engines["search.uncached"] = {
            "median_s": un_t, "n_restarts": n_restarts,
            "evaluations": un.evaluations, "solver_runs": un.cache_misses,
        }
        memo_t, memo = _timed(partial(_search, True), max(1, repeats // 2))
        engines["search.memoized"] = {
            "median_s": memo_t, "n_restarts": n_restarts,
            "evaluations": memo.evaluations, "solver_runs": memo.cache_misses,
            "cache_hits": memo.cache_hits,
            "same_optimum": memo.throughput == un.throughput,
        }

    # -- same-topology Strict batch: shared reachability ---------------
    if _want("evaluate_many.strict.uncached", "evaluate_many.strict.cached"):
        n_cand = 4 if quick else 8
        b_rng = np.random.default_rng(3)
        b_app = Application.from_work([1.0, 1.0, 1.0], [0.5, 0.5])
        teams = [[0], [1, 2], [3, 4, 5]]
        candidates = [
            Mapping(
                b_app,
                Platform.from_speeds(
                    b_rng.uniform(0.5, 2.0, 6).tolist(), 1.0
                ),
                teams,
            )
            for _ in range(n_cand)
        ]

        def _batch(enabled: bool):
            return evaluate_many(
                candidates,
                solver="exponential",
                model="strict",
                cache=StructureCache(enabled=enabled),
            )

        bu_t, bu = _timed(partial(_batch, False), max(1, repeats // 2))
        engines["evaluate_many.strict.uncached"] = {
            "median_s": bu_t, "n_candidates": n_cand,
        }
        bc_t, bc = _timed(partial(_batch, True), max(1, repeats // 2))
        engines["evaluate_many.strict.cached"] = {
            "median_s": bc_t, "n_candidates": n_cand,
            "bit_identical_to_uncached": bu == bc,
        }

    # -- campaign runner: cold run vs --resume ------------------------
    import tempfile

    from repro.campaign import ResultStore, get_preset, run_campaign

    if _want("campaign.cold", "campaign.resume"):
        campaign_spec = get_preset("smoke" if quick else "fig13")

        def _campaign_cold():
            with tempfile.TemporaryDirectory() as td:
                return run_campaign(
                    campaign_spec,
                    ResultStore(os.path.join(td, "campaign.jsonl")),
                )

        cold_t, cold = _timed(_campaign_cold, max(1, repeats // 2))
        engines["campaign.cold"] = {
            "median_s": cold_t, "preset": campaign_spec.name,
            "units": cold.total, "executed": cold.executed,
        }
        with tempfile.TemporaryDirectory() as td:
            store_path = os.path.join(td, "campaign.jsonl")
            run_campaign(campaign_spec, ResultStore(store_path))
            resume_t, resumed = _timed(
                lambda: run_campaign(
                    campaign_spec, ResultStore(store_path), resume=True
                ),
                repeats,
            )
        engines["campaign.resume"] = {
            "median_s": resume_t, "preset": campaign_spec.name,
            "units": resumed.total, "executed": resumed.executed,
            "skipped": resumed.skipped,
        }

    # -- evaluation service: cold vs warm restart vs coalescing --------
    import threading

    from repro.campaign import expand, unit_task_payload
    from repro.service import (
        DiskScoreCache,
        EvaluationEngine,
        ServiceClient,
        serve_in_thread,
    )

    if _want("service.cold", "service.warm"):
        # Quick mode reuses the cheap smoke grid; the full benchmark
        # sends a mixed batch heavy enough (Strict marking chains, a long
        # simulation) that the warm restart ratio reflects recomputation
        # actually saved, not just socket round-trips.
        if quick:
            service_tasks = [
                unit_task_payload(u) for u in expand(get_preset("smoke"))
            ]
        else:
            def _pattern(u: int, v: int, solver: str) -> dict:
                return {
                    "system": {
                        "kind": "single_communication",
                        "params": {"u": u, "v": v, "comm_time": 1.0},
                    },
                    "solver": solver, "model": "strict", "options": {},
                }

            service_tasks = [
                _pattern(3, 4, "exponential"),
                _pattern(4, 3, "exponential"),
                _pattern(3, 4, "deterministic"),
                {
                    "system": {
                        "kind": "single_communication",
                        "params": {"u": 3, "v": 4, "comm_time": 1.0},
                    },
                    "solver": "simulation", "model": "overlap",
                    "options": {"n_datasets": 2000, "seed": 1},
                },
            ]

        def _serve_batch(cache_path: str | None) -> dict:
            """One server lifetime: start, submit the smoke batch, stop."""
            disk = DiskScoreCache(cache_path) if cache_path else None
            engine = EvaluationEngine(disk=disk)
            server, thread = serve_in_thread(engine)
            try:
                with ServiceClient(*server.endpoint) as client:
                    _values, _failures, stats = client.evaluate_batch(
                        service_tasks
                    )
                return stats
            finally:
                server.shutdown()
                server.server_close()
                engine.close()
                thread.join()

        def _service_cold() -> dict:
            with tempfile.TemporaryDirectory() as std:
                return _serve_batch(os.path.join(std, "svc.jsonl"))

        cold_svc_t, cold_svc = _timed(_service_cold, max(1, repeats // 2))
        engines["service.cold"] = {
            "median_s": cold_svc_t, "units": len(service_tasks),
            "executed": cold_svc["executed"],
            "disk_hits": cold_svc["disk_hits"],
        }
        with tempfile.TemporaryDirectory() as std:
            svc_path = os.path.join(std, "svc.jsonl")
            _serve_batch(svc_path)  # populate the tier-2 cache once
            # Every timed call is a fresh server process-equivalent (new
            # engine, new memo) on the *existing* disk cache — the restart
            # scenario. It must answer without a single evaluator run.
            warm_svc_t, warm_svc = _timed(
                partial(_serve_batch, svc_path), max(1, repeats // 2)
            )
        engines["service.warm"] = {
            "median_s": warm_svc_t, "units": len(service_tasks),
            "executed": warm_svc["executed"],
            "disk_hits": warm_svc["disk_hits"],
        }

    if _want("service.coalesced"):
        n_clients = 4 if quick else 8
        # The burst must still be in flight when the followers arrive, so
        # the full benchmark uses a marking chain that takes ~0.3 s; quick
        # mode keeps a small one (executed=1 holds either way — followers
        # that miss the flight window are absorbed by the memo instead).
        coalesce_uv = (3, 3) if quick else (3, 4)
        coalesce_task = {
            "system": {
                "kind": "single_communication",
                "params": {"u": coalesce_uv[0], "v": coalesce_uv[1]},
            },
            "solver": "exponential", "model": "strict", "options": {},
        }

        def _service_coalesced() -> dict:
            """N concurrent identical submissions against a cold server."""
            engine = EvaluationEngine()
            server, thread = serve_in_thread(engine)
            barrier = threading.Barrier(n_clients)

            def _one_client() -> None:
                with ServiceClient(*server.endpoint) as client:
                    client.ping()  # connect before the synchronized burst
                    barrier.wait()
                    client.evaluate(coalesce_task)

            try:
                workers = [
                    threading.Thread(target=_one_client)
                    for _ in range(n_clients)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                return {
                    "executed": engine.executed,
                    "coalesced": engine.queue.coalesced,
                }
            finally:
                server.shutdown()
                server.server_close()
                engine.close()
                thread.join()

        co_t, co = _timed(_service_coalesced, max(1, repeats // 2))
        engines["service.coalesced"] = {
            "median_s": co_t, "n_clients": n_clients,
            "executed": co["executed"], "coalesced": co["coalesced"],
        }

    if _want("service.overload"):
        from repro.exceptions import ServiceOverloaded

        n_burst = 8 if quick else 16
        overload_capacity = 2
        overload_nd = 500 if quick else 3000

        def _overload_task(i: int) -> dict:
            # Distinct seeds → distinct digests: neither the coalescing
            # queue nor the memo may absorb the burst, every admitted
            # request is real work and every excess one must be shed.
            return {
                "system": {
                    "kind": "single_communication",
                    "params": {"u": 3, "v": 3},
                },
                "solver": "simulation", "model": "overlap",
                "options": {"n_datasets": overload_nd, "seed": 100 + i},
            }

        def _service_overload() -> dict:
            """Burst M > capacity; record shed count and per-request latency."""
            engine = EvaluationEngine()
            server, thread = serve_in_thread(
                engine, capacity=overload_capacity, retry_after=0.05
            )
            barrier = threading.Barrier(n_burst)
            latencies = [0.0] * n_burst
            accepted = [False] * n_burst

            def _one_client(i: int) -> None:
                # No retry policy: a shed request records its instant
                # rejection, not a masked second attempt.
                with ServiceClient(*server.endpoint, retry=None) as client:
                    client.ping()  # connect before the synchronized burst
                    barrier.wait()
                    t0 = time.perf_counter()
                    try:
                        client.evaluate(_overload_task(i))
                        accepted[i] = True
                    except ServiceOverloaded:
                        pass
                    latencies[i] = time.perf_counter() - t0

            try:
                workers = [
                    threading.Thread(target=_one_client, args=(i,))
                    for i in range(n_burst)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                return {
                    "shed": server.shed,
                    "accepted": sum(accepted),
                    "latencies": latencies,
                }
            finally:
                server.shutdown()
                server.server_close()
                engine.close()
                thread.join()

        ov_t, ov = _timed(_service_overload, max(1, repeats // 2))
        lat = np.asarray(ov["latencies"])
        engines["service.overload"] = {
            "median_s": ov_t, "n_clients": n_burst,
            "capacity": overload_capacity,
            "accepted": ov["accepted"], "shed": ov["shed"],
            "shed_rate": ov["shed"] / n_burst,
            "p50_s": float(np.percentile(lat, 50)),
            "p99_s": float(np.percentile(lat, 99)),
        }

    # -- fleet: single worker vs affinity-sharded quad ------------------
    if _want("service.fleet.single", "service.fleet.quad"):
        from repro.service import local_fleet

        # A cyclic trace over K distinct structures with each worker's
        # structure cache LRU-bounded to B < K: one worker thrashes
        # (every revisit re-explores and re-solves), while 4
        # fingerprint-affinity shards each hold their ~K/4 keys hot —
        # on one core the fleet speedup is aggregate cache capacity,
        # not CPU parallelism. K ≡ 2 (mod 4) keeps round_robin honest:
        # the rotation never re-aligns a key with one worker, so the
        # same trace scatters repeats and pays extra cold misses —
        # that is the affinity-vs-round_robin hit-rate comparison.
        if quick:
            fleet_pairs = [(2, 2), (2, 3), (3, 2), (2, 4), (4, 2), (3, 3)]
            fleet_bound, fleet_rounds = 3, 2
        else:
            # Interleaved so the odd (exponential/strict) slots land on
            # the mid-cost topologies (~0.05-0.3 s each): revisits are
            # dominated by recomputation, not socket round-trips.
            fleet_pairs = [
                (2, 3), (2, 5), (3, 2), (5, 2), (2, 4), (3, 4), (4, 2),
                (4, 3), (3, 3), (2, 6), (5, 5), (6, 2), (2, 2), (4, 4),
            ]
            fleet_bound, fleet_rounds = 7, 3
        fleet_tasks = [
            {
                "system": {
                    "kind": "single_communication",
                    "params": {"u": u, "v": v, "comm_time": 1.0},
                },
                # Alternate a cheap and an expensive solver so the trace
                # mixes both cost classes across every shard.
                "solver": "deterministic" if i % 2 == 0 else "exponential",
                "model": "overlap" if i % 2 == 0 else "strict",
                "options": {},
            }
            for i, (u, v) in enumerate(fleet_pairs)
        ]
        # Mixed single-evaluate and batch ops, issued sequentially from
        # one client: coalescing-free by construction (no two identical
        # requests are ever in flight together).
        if quick:
            fleet_groups = [slice(0, 2), 2, 3, slice(4, 6)]
        else:
            fleet_groups = [slice(0, 4), 4, 5, slice(6, 10), 10, 11,
                            slice(12, 14)]

        def _run_fleet(n_workers: int, strategy: str) -> dict:
            """One full fleet lifetime over the cyclic trace."""
            values: list = []
            with local_fleet(
                n_workers, strategy=strategy, max_entries=fleet_bound
            ) as fleet:
                with fleet.client() as client:
                    for _ in range(fleet_rounds):
                        for group in fleet_groups:
                            if isinstance(group, slice):
                                vals, fails, _stats = client.evaluate_batch(
                                    fleet_tasks[group]
                                )
                                assert not fails
                                values.extend(vals)
                            else:
                                values.append(
                                    client.evaluate(fleet_tasks[group])
                                )
                    stats = client.stats()
            cache = stats["structure_cache"]
            return {
                "values": values,
                "executed": stats["totals"]["executed"],
                "hits": cache["hits"],
                "misses": cache["misses"],
                "hit_rate": cache["hit_rate"],
            }

        fleet_units = fleet_rounds * len(fleet_pairs)
        single_t, single = _timed(
            partial(_run_fleet, 1, "fingerprint_affinity"),
            max(1, repeats // 2),
        )
        engines["service.fleet.single"] = {
            "median_s": single_t, "n_workers": 1,
            "units": fleet_units,
            "distinct_structures": len(fleet_pairs),
            "max_entries": fleet_bound,
            "executed": single["executed"],
            "structure_hit_rate": single["hit_rate"],
        }
        quad_t, quad = _timed(
            partial(_run_fleet, 4, "fingerprint_affinity"),
            max(1, repeats // 2),
        )
        # Same trace through round_robin (untimed): the hit-rate
        # comparison isolates routing quality from wall-clock noise.
        rr = _run_fleet(4, "round_robin")
        engines["service.fleet.quad"] = {
            "median_s": quad_t, "n_workers": 4,
            "units": fleet_units,
            "distinct_structures": len(fleet_pairs),
            "max_entries": fleet_bound,
            "executed": quad["executed"],
            "affinity_hit_rate": quad["hit_rate"],
            "round_robin_hit_rate": rr["hit_rate"],
            "round_robin_executed": rr["executed"],
            "affinity_beats_round_robin": quad["hit_rate"] > rr["hit_rate"],
            "values_identical_to_single": quad["values"] == single["values"],
        }

    if _want("service.selfheal"):
        from repro.service import local_fleet

        # Kill-every-k chaos against a supervised fleet. The clean pass
        # times the trace on a healthy fleet; the chaos pass abruptly
        # kills a worker every `heal_kill_every` batches (cycling the
        # victim) and blocks until the supervisor has respawned it, so
        # the measured wall time *includes* every recovery. Recovery is
        # the kill -> respawn latency; goodput retained is clean/chaos
        # wall time; the values must match the clean pass exactly —
        # supervised respawn, breaker probes and re-dispatch must never
        # lose or duplicate a unit.
        if quick:
            heal_pairs = [(2, 2), (2, 3), (3, 2), (2, 4), (4, 2), (3, 3)]
            heal_rounds = 2
        else:
            heal_pairs = [
                (2, 3), (2, 5), (3, 2), (5, 2), (2, 4), (3, 4), (4, 2),
                (4, 3), (3, 3), (2, 6), (5, 5), (6, 2), (2, 2), (4, 4),
            ]
            heal_rounds = 3
        heal_tasks = [
            {
                "system": {
                    "kind": "single_communication",
                    "params": {"u": u, "v": v, "comm_time": 1.0},
                },
                "solver": "deterministic",
                "model": "overlap",
                "options": {},
            }
            for (u, v) in heal_pairs
        ]
        heal_batch = 2
        heal_kill_every = 3

        def _run_selfheal(chaos: bool) -> dict:
            values: list = []
            recoveries: list[float] = []
            batches = 0
            victim = 1
            with local_fleet(
                4,
                strategy="fingerprint_affinity",
                breaker_cooldown_s=0.05,
            ) as fleet:
                supervisor = fleet.make_supervisor(
                    check_interval=0.02, max_restarts=1000,
                )
                supervisor.start()
                with fleet.client() as client:
                    for _ in range(heal_rounds):
                        for start in range(0, len(heal_tasks), heal_batch):
                            if (
                                chaos and batches
                                and batches % heal_kill_every == 0
                            ):
                                name = f"w{victim}"
                                victim = victim % 3 + 1  # cycle w1..w3
                                before = supervisor.respawns
                                t0 = time.monotonic()
                                fleet.kill_worker(name)
                                deadline = t0 + 30.0
                                while supervisor.respawns == before:
                                    if time.monotonic() > deadline:
                                        raise RuntimeError(
                                            f"supervisor never respawned "
                                            f"{name}"
                                        )
                                    time.sleep(0.005)
                                recoveries.append(time.monotonic() - t0)
                            vals, fails, _stats = client.evaluate_batch(
                                heal_tasks[start:start + heal_batch]
                            )
                            assert not fails
                            values.extend(vals)
                            batches += 1
                    stats = client.stats()
            orch = stats["orchestrator"]
            return {
                "values": values,
                "failovers": orch["failovers"],
                "hedges_sent": orch.get("hedges_sent", 0),
                "hedges_won": orch.get("hedges_won", 0),
                "respawns": stats["supervisor"]["respawns"],
                "recoveries": recoveries,
            }

        heal_units = heal_rounds * len(heal_pairs)
        clean_t, clean = _timed(
            partial(_run_selfheal, False), max(1, repeats // 2)
        )
        chaos_t, chaos = _timed(
            partial(_run_selfheal, True), max(1, repeats // 2)
        )
        engines["service.selfheal"] = {
            "median_s": chaos_t,
            "clean_s": clean_t,
            "n_workers": 4,
            "units": heal_units,
            "kill_every_batches": heal_kill_every,
            "kills": len(chaos["recoveries"]),
            "respawns": chaos["respawns"],
            "recovery_p50_s": (
                statistics.median(chaos["recoveries"])
                if chaos["recoveries"] else None
            ),
            "recovery_max_s": (
                max(chaos["recoveries"]) if chaos["recoveries"] else None
            ),
            "failovers": chaos["failovers"],
            "hedges_sent": chaos["hedges_sent"],
            "hedges_won": chaos["hedges_won"],
            "goodput_clean_units_per_s": heal_units / max(clean_t, 1e-12),
            "goodput_chaos_units_per_s": heal_units / max(chaos_t, 1e-12),
            "goodput_retained": clean_t / max(chaos_t, 1e-12),
            "values_identical_to_clean": chaos["values"] == clean["values"],
            "no_lost_or_duplicated_units": (
                len(chaos["values"]) == heal_units
            ),
        }

    if not engines:
        raise ValueError(
            f"--workloads {list(selected)!r} matched no benchmark engine"
        )

    def _ratio(num: str, den: str) -> float:
        return engines[num]["median_s"] / max(engines[den]["median_s"], 1e-12)

    #: slower / faster engine per speedup key — ratios are only reported
    #: for pairs the (possibly filtered) run actually timed.
    ratio_pairs = {
        "reachability": ("reachability.reference", "reachability.vectorized"),
        "sim": ("sim.reference", "sim.fast"),
        "replicate": ("replicate.serial", "replicate.parallel"),
        "replication": ("replication.loop", "replication.vectorized"),
        "search": ("search.uncached", "search.memoized"),
        "evaluate_many.strict": ("evaluate_many.strict.uncached",
                                 "evaluate_many.strict.cached"),
        "campaign.resume": ("campaign.cold", "campaign.resume"),
        "service.warm_restart": ("service.cold", "service.warm"),
        "service.fleet": ("service.fleet.single", "service.fleet.quad"),
    }
    return {
        "meta": {
            "bench": "engine microbenchmarks",
            "quick": quick,
            "repeats": repeats,
            "workloads": list(selected),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "git_revision": _git_revision(),
        },
        "engines": engines,
        "speedups": {
            key: _ratio(num, den)
            for key, (num, den) in ratio_pairs.items()
            if num in engines and den in engines
        },
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_report(report: dict) -> str:
    lines = ["engine                       median_s      scale"]
    for name, row in sorted(report["engines"].items()):
        scale = {k: v for k, v in row.items() if k != "median_s"}
        detail = ", ".join(f"{k}={v}" for k, v in scale.items())
        lines.append(f"{name:28s} {row['median_s']:9.4f}      {detail}")
    lines.append("")
    for key, ratio in sorted(report["speedups"].items()):
        lines.append(f"speedup[{key}] = {ratio:.2f}x")
    return "\n".join(lines)
