"""repro — throughput of probabilistic and replicated streaming applications.

A complete reproduction of Benoit, Gallet, Gaujal & Robert,
*Computing the throughput of probabilistic and replicated streaming
applications* (SPAA 2010 / INRIA RR-7510): linear-chain workflows mapped
one-to-many onto heterogeneous platforms, timed-event-graph modelling,
deterministic critical cycles, exponential Markov analysis, N.B.U.E.
throughput bounds, and the full experimental campaign of Section 7.

Quick start::

    from repro import Application, Platform, Mapping, StreamingSystem

    app  = Application.from_work([4e9, 8e9, 5e9], files=[1e8, 2e8])
    plat = Platform.homogeneous(n=6, speed=2e9, bandwidth=1e9)
    mp   = Mapping(app, plat, teams=[[0], [1, 2, 3], [4, 5]])
    sys  = StreamingSystem(mp, model="overlap")
    print(sys.deterministic_throughput(), sys.exponential_throughput())
"""

from repro._version import __version__
from repro.application import Application, Stage
from repro.platform import Platform, Processor
from repro.mapping import Mapping
from repro.types import ExecutionModel
from repro.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    HyperExponential,
    ScaledBeta,
    TruncatedNormal,
    Uniform,
    Weibull,
    make_distribution,
)
from repro.core import (
    StreamingSystem,
    ThroughputBounds,
    deterministic_throughput,
    exponential_throughput,
    throughput_bounds,
)
from repro.evaluate import (
    StructureCache,
    available_solvers,
    evaluate,
    evaluate_many,
    get_solver,
    register_solver,
)

__all__ = [
    "__version__",
    "Application",
    "Stage",
    "Platform",
    "Processor",
    "Mapping",
    "ExecutionModel",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Gamma",
    "ScaledBeta",
    "TruncatedNormal",
    "Weibull",
    "HyperExponential",
    "make_distribution",
    "StreamingSystem",
    "ThroughputBounds",
    "deterministic_throughput",
    "exponential_throughput",
    "throughput_bounds",
    "StructureCache",
    "available_solvers",
    "evaluate",
    "evaluate_many",
    "get_solver",
    "register_solver",
]
