"""Ready-made campaign specs, including ports of the paper's drivers.

Four of the hand-coded experiment drivers (``fig10``, ``fig11``,
``fig13``, ``timing`` — see :mod:`repro.experiments`) are re-expressed
here as pure data: the same systems, solvers and parameter grids, but
run by the generic sweep engine with a resumable store instead of
bespoke loops. Their descriptions come straight from the experiment
registry, so ``repro.cli list`` and the presets stay one source.

``smoke`` is the tiny 4-unit grid used by CI and the benchmark
harness.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.campaign.spec import CampaignSpec, ScenarioSpec, SystemSpec
from repro.exceptions import CampaignError
from repro.experiments import experiment_description


def _smoke() -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        description="tiny 4-unit deterministic grid (CI / bench smoke)",
        seed=0,
        scenarios=[
            ScenarioSpec(
                name="smoke/pattern",
                description="single communication, 2x2 (u, v) grid",
                system=SystemSpec("single_communication", {"comm_time": 1.0}),
                solver="deterministic",
                axes={"system.u": [2, 3], "system.v": [2, 3]},
            ),
        ],
    )


def _fig10() -> CampaignSpec:
    system = SystemSpec(
        "uniform_chain",
        {"replication": [1, 3, 4, 5, 6, 7, 1], "work": 10.0, "file_size": 10.0},
    )
    return CampaignSpec(
        name="fig10",
        description=experiment_description("fig10"),
        seed=10,
        scenarios=[
            ScenarioSpec(
                name="fig10/theory",
                description="constant and exponential theoretical values",
                system=system,
                axes={"solver": ["deterministic", "exponential"]},
            ),
            ScenarioSpec(
                name="fig10/convergence",
                description="simulated throughput vs processed data sets",
                system=system,
                solver="simulation",
                axes={"solver.n_datasets": [100, 500, 1000, 5000]},
            ),
        ],
    )


def _fig11() -> CampaignSpec:
    system = SystemSpec(
        "uniform_chain",
        {"replication": [1, 3, 4, 5, 6, 7, 1], "work": 10.0, "file_size": 10.0},
    )
    return CampaignSpec(
        name="fig11",
        description=experiment_description("fig11"),
        seed=11,
        scenarios=[
            ScenarioSpec(
                name="fig11/dispersion",
                description="mean replicated throughput vs run length "
                "(vectorized replication engine)",
                system=system,
                solver="simulation",
                options={"n_replications": 100, "engine": "vectorized"},
                axes={"solver.n_datasets": [10, 100, 1000]},
            ),
        ],
    )


def _fig13() -> CampaignSpec:
    return CampaignSpec(
        name="fig13",
        description=experiment_description("fig13"),
        seed=13,
        scenarios=[
            ScenarioSpec(
                name="fig13/pattern",
                description="theory over the (u, v) sender/receiver grid",
                system=SystemSpec("single_communication", {"comm_time": 1.0}),
                axes={
                    "system.u": [2, 3, 4, 5],
                    "system.v": [2, 3, 4, 5],
                    "solver": ["deterministic", "exponential"],
                },
            ),
        ],
    )


def _timing() -> CampaignSpec:
    system = SystemSpec(
        "uniform_chain",
        {"replication": [1, 3, 4, 5, 6, 7, 1], "work": 10.0, "file_size": 10.0},
    )
    return CampaignSpec(
        name="timing",
        description=experiment_description("timing"),
        seed=77,
        scenarios=[
            ScenarioSpec(
                name="timing/theory",
                description="both theoretical tools on the Fig. 10 system",
                system=system,
                axes={"solver": ["deterministic", "exponential"]},
            ),
            ScenarioSpec(
                name="timing/simulation",
                description="system simulator at several workload sizes",
                system=system,
                solver="simulation",
                axes={"solver.n_datasets": [100, 1000, 10_000]},
            ),
        ],
    )


PRESETS: dict[str, Callable[[], CampaignSpec]] = {
    "smoke": _smoke,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig13": _fig13,
    "timing": _timing,
}


def available_presets() -> tuple[str, ...]:
    """Preset names, sorted."""
    return tuple(sorted(PRESETS))


def get_preset(name: str) -> CampaignSpec:
    """Build the preset campaign registered under ``name``."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign preset {name!r}; "
            f"available: {', '.join(available_presets())}"
        ) from None
    return factory()
