"""Persistent, resumable campaign result store (JSONL + fingerprint index).

One record per line, each a JSON object carrying at least the unit
``fingerprint``; lines are written with sorted keys and fsync'd, so

* **crash-safe append** — a kill mid-write loses at most the trailing
  partial line, which the loader drops (and counts) instead of failing;
* **dedup** — a fingerprint already present is never appended twice;
* **resume** — a runner checks ``fingerprint in store`` and skips
  completed units; records survive process restarts byte-identically.

Records are written deterministically (sorted keys, ``repr``-stable
floats), so two stores produced by equivalent runs — e.g. serial vs
``n_jobs > 1`` — are byte-identical line for line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exceptions import CampaignError


class ResultStore:
    """Append-only JSONL store indexed by unit fingerprint."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.dropped_lines = 0
        self._records: list[dict] = []
        self._index: dict[str, dict] = {}
        self._load()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        # _good_size: byte offset of the end of the last intact record —
        # where a repairing append truncates a torn tail back to.
        self._good_size = 0
        self._tail_torn = False
        self._needs_newline = False
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        pos, lineno = 0, 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            end = len(raw) if newline == -1 else newline
            line = raw[pos:end]
            unterminated = newline == -1
            lineno += 1
            if line.strip():
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    record = None
                if not isinstance(record, dict) or "fingerprint" not in record:
                    if unterminated:
                        # Torn trailing write from a crash: drop, don't
                        # fail. The next append truncates it away.
                        self.dropped_lines += 1
                        self._tail_torn = True
                        return
                    raise CampaignError(
                        f"{self.path}: line {lineno} is not a campaign "
                        "record (corrupt store?)"
                    )
                if record["fingerprint"] in self._index:
                    self.dropped_lines += 1
                else:
                    self._records.append(record)
                    self._index[record["fingerprint"]] = record
            if unterminated:
                # Intact content that lost only its newline: keep it and
                # restore the terminator now so line-oriented consumers
                # count correctly even if nothing is ever appended.
                self._good_size = len(raw)
                self._needs_newline = True
                self._repair_newline()
                return
            pos = end + 1
            self._good_size = pos

    def _repair_newline(self) -> None:
        """Re-terminate an intact trailing record, if the file allows."""
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            return  # read-only context: the next append() repairs instead
        self._needs_newline = False

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> bool:
        """Persist ``record`` unless its fingerprint is already stored.

        Returns ``True`` when the record was written. The line is
        flushed and fsync'd before the index is updated, so a crash can
        only ever lose (part of) the line being written — never a
        record the index already claims to hold.
        """
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise CampaignError("campaign records need a string 'fingerprint'")
        if fingerprint in self._index:
            return False
        line = json.dumps(record, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._tail_torn:
            with open(self.path, "r+b") as fh:
                fh.truncate(self._good_size)
                fh.flush()
                os.fsync(fh.fileno())
            self._tail_torn = False
        prefix = "\n" if self._needs_newline else ""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(prefix + line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._needs_newline = False
        self._records.append(record)
        self._index[fingerprint] = record
        return True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """All records in append order (shallow copies)."""
        return [dict(r) for r in self._records]

    def get(self, fingerprint: str) -> dict | None:
        record = self._index.get(fingerprint)
        return dict(record) if record is not None else None

    def fingerprints(self) -> tuple[str, ...]:
        return tuple(self._index)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._index

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r}, records={len(self)})"
