"""Sweep engine: expand scenario grids into fingerprint-keyed run units.

Expansion is deterministic by construction — scenarios in spec order,
axes in sorted-name order, values in the cartesian-product order of
:func:`itertools.product` — so the same spec always yields the same
unit list. Each :class:`RunUnit` carries a *fingerprint*: a content
digest of everything defining the unit (campaign, scenario, resolved
system, solver, model, options — plus the base seed for stochastic
units). The fingerprint is the unit's identity in the
result store (dedup, ``--resume``) and the source of its derived seed,
which therefore cannot depend on worker count or execution order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignSpec, ScenarioSpec, SystemSpec
from repro.evaluate.solvers import (
    available_solvers,
    solver_is_stochastic,
    solver_options,
)
from repro.exceptions import CampaignError

#: Mask keeping derived seeds in the non-negative int64 range NumPy's
#: ``default_rng`` accepts directly.
_SEED_MASK = (1 << 63) - 1


@dataclass(frozen=True)
class RunUnit:
    """One independently executable, reproducible evaluation."""

    campaign: str
    scenario: str
    system: SystemSpec
    solver: str
    model: str
    options: dict = field(compare=False)
    params: dict = field(compare=False)
    fingerprint: str = ""
    seed: int = 0

    def __hash__(self) -> int:
        # The fingerprint digests every identity field, so hash/eq stay
        # consistent (and the dict-valued fields stay out of hashing).
        return hash(self.fingerprint)


def unit_fingerprint(payload: dict) -> str:
    """Stable hex digest of a JSON-serializable unit payload.

    Canonical JSON (sorted keys, no whitespace drift) feeds a 128-bit
    BLAKE2b digest, so fingerprints are stable across Python builds and
    processes — the property the resumable store relies on.
    """
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        # E.g. numpy scalars in a programmatic spec's axes: fingerprints
        # (and the store) speak plain JSON types only.
        raise CampaignError(
            "campaign parameters must be JSON-serializable (plain "
            f"int/float/str/bool/list values): {exc}"
        ) from None
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def derive_seed(base_seed: int, fingerprint: str) -> int:
    """Per-unit seed from the campaign seed and the unit fingerprint.

    Content-derived, hence bit-identical whatever the worker count or
    execution order; distinct units get independent streams because the
    fingerprint differs.
    """
    payload = f"{base_seed}:{fingerprint}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") & _SEED_MASK


def expand_scenario(
    campaign: str, base_seed: int, scenario: ScenarioSpec
) -> list[RunUnit]:
    """All run units of one scenario, in deterministic grid order."""
    axis_names = sorted(scenario.axes)
    known_solvers = available_solvers()
    units: list[RunUnit] = []
    # No axes → product() yields one empty combo: a single-unit scenario.
    for combo in itertools.product(*(scenario.axes[a] for a in axis_names)):
        assignment = dict(zip(axis_names, combo))
        solver = assignment.get("solver", scenario.solver)
        model = assignment.get("model", scenario.model)
        system_overrides: dict = {}
        options = dict(scenario.options)
        for axis, value in assignment.items():
            if axis.startswith("system."):
                system_overrides[axis[len("system."):]] = value
            elif axis.startswith("solver."):
                options[axis[len("solver."):]] = value
        if solver not in known_solvers:
            raise CampaignError(
                f"scenario {scenario.name!r}: unknown solver {solver!r}; "
                f"available: {', '.join(known_solvers)}"
            )
        allowed = solver_options(solver)
        unknown = set(options) - set(allowed)
        if unknown:
            hint = ""
            if "solver" in scenario.axes:
                # Scenario options apply to every solver the axis swaps
                # in — solver-specific ones need their own scenario.
                hint = (
                    "; scenario options apply to every value of the "
                    "'solver' axis — put solver-specific options in a "
                    "separate scenario for that solver"
                )
            raise CampaignError(
                f"scenario {scenario.name!r}: solver {solver!r} does not "
                f"accept option(s) {', '.join(sorted(unknown))}; "
                f"allowed: {', '.join(allowed)}{hint}"
            )
        system = scenario.system.with_params(system_overrides)
        stochastic = solver_is_stochastic(solver) and "seed" not in options
        payload = {
            "campaign": campaign,
            "scenario": scenario.name,
            "system": system.to_dict(),
            "solver": solver,
            "model": model,
            "options": options,
        }
        if stochastic:
            # A stochastic unit's value depends on the campaign seed, so
            # the seed joins its identity: two base seeds are two units,
            # never deduplicated against each other by the store.
            # Deterministic units stay seed-independent (their value is).
            payload["base_seed"] = base_seed
        fingerprint = unit_fingerprint(payload)
        seed = derive_seed(base_seed, fingerprint)
        if stochastic:
            # A stochastic backend's stream seed is the unit's derived
            # seed unless the spec pins one explicitly (then the pinned
            # value is already part of the fingerprinted options).
            options["seed"] = seed
        units.append(
            RunUnit(
                campaign=campaign,
                scenario=scenario.name,
                system=system,
                solver=solver,
                model=model,
                options=options,
                params=assignment,
                fingerprint=fingerprint,
                seed=seed,
            )
        )
    return units


def expand(spec: CampaignSpec) -> list[RunUnit]:
    """Every run unit of the campaign, scenario by scenario."""
    units: list[RunUnit] = []
    for scenario in spec.scenarios:
        units.extend(expand_scenario(spec.name, spec.seed, scenario))
    return units
