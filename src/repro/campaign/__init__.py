"""Declarative campaigns: scenario specs, sweep engine, resumable store.

The campaign subsystem turns the paper's hand-coded experiment drivers
into data-driven sweeps served at scale:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` /
  :class:`ScenarioSpec` / :class:`SystemSpec`, dataclasses with a full
  dict/JSON round-trip;
* :mod:`repro.campaign.grid` — deterministic expansion of parameter
  grids into fingerprint-keyed :class:`RunUnit` work items with
  content-derived seeds;
* :mod:`repro.campaign.runner` — execution through the
  :mod:`repro.evaluate` registry with ``n_jobs`` fan-out and a shared
  :class:`~repro.evaluate.cache.StructureCache`, plus status/report;
* :mod:`repro.campaign.store` — the crash-safe, deduplicating JSONL
  :class:`ResultStore` behind ``--resume``;
* :mod:`repro.campaign.presets` — ready-made campaigns, including
  ports of the ``fig10`` / ``fig13`` / ``timing`` drivers.

Driven from the command line as ``python -m repro.cli campaign
run|status|report``.
"""

from repro.campaign.grid import RunUnit, derive_seed, expand, unit_fingerprint
from repro.campaign.presets import PRESETS, available_presets, get_preset
from repro.campaign.runner import (
    CampaignRunSummary,
    campaign_report,
    campaign_status,
    run_campaign,
    unit_record,
    unit_task_payload,
)
from repro.campaign.spec import CampaignSpec, ScenarioSpec, SystemSpec
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignSpec",
    "ScenarioSpec",
    "SystemSpec",
    "RunUnit",
    "expand",
    "unit_fingerprint",
    "derive_seed",
    "ResultStore",
    "run_campaign",
    "unit_record",
    "unit_task_payload",
    "campaign_status",
    "campaign_report",
    "CampaignRunSummary",
    "PRESETS",
    "available_presets",
    "get_preset",
]
