"""Declarative scenario specifications for throughput campaigns.

A campaign is data, not code: a :class:`CampaignSpec` names a set of
:class:`ScenarioSpec` sweeps, each combining a *system* description
(:class:`SystemSpec` — how to build the :class:`~repro.mapping.mapping.Mapping`),
a solver from the :mod:`repro.evaluate` registry, an execution model,
frozen solver options, and parameter *axes* whose cartesian product the
sweep engine (:mod:`repro.campaign.grid`) expands into run units.

Everything round-trips through plain dicts / JSON, so campaigns can be
checked into a repo, diffed, and re-run bit-identically::

    spec = CampaignSpec.from_json(path.read_text())
    assert CampaignSpec.from_dict(spec.to_dict()) == spec

Axis names address the three override targets:

* ``"solver"`` / ``"model"`` — replace the scenario's solver or model;
* ``"system.<param>"`` — override a system builder parameter;
* ``"solver.<param>"`` — override a solver constructor option.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import CampaignError, ReproError
from repro.types import ExecutionModel

#: System kinds understood by :meth:`SystemSpec.build`.
SYSTEM_KINDS = ("named", "single_communication", "chain", "uniform_chain")

_MODELS = tuple(m.value for m in ExecutionModel)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignError(message)


def _jsonable(value):
    """Tuples → lists, recursively: the canonical in-memory form.

    Specs normalize to what JSON can express, so
    ``from_dict(spec.to_dict()) == spec`` holds whether a programmatic
    caller wrote tuples or lists.
    """
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def _int_param(kind: str, name: str, value: object) -> int:
    """A structural count from a spec: integers only, never truncated."""
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise CampaignError(
        f"system kind {kind!r}: parameter {name!r} must be an integer, "
        f"got {value!r}"
    )


@dataclass
class SystemSpec:
    """How to build a mapping: a kind plus builder parameters.

    * ``named`` — one of :data:`repro.mapping.examples.NAMED_SYSTEMS`
      (``params["name"]`` plus builder keywords);
    * ``single_communication`` — the Section 7 two-stage pattern system
      (``u``, ``v``, optional ``comm_time`` / ``compute_time``);
    * ``chain`` — explicit ``works`` / ``files`` / ``speeds`` /
      ``bandwidth`` / ``teams``;
    * ``uniform_chain`` — identical stages replicated per ``replication``
      on a homogeneous platform (``work``, ``file_size``, ``speed``,
      ``bandwidth``).
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(
            self.kind in SYSTEM_KINDS,
            f"unknown system kind {self.kind!r}; "
            f"available: {', '.join(SYSTEM_KINDS)}",
        )
        _require(
            isinstance(self.params, dict)
            and all(isinstance(k, str) for k in self.params),
            f"system params must be a str-keyed dict, got {self.params!r}",
        )
        if self.kind == "named":
            _require(
                isinstance(self.params.get("name"), str),
                'a "named" system needs params["name"]',
            )
        self.params = _jsonable(self.params)

    # ------------------------------------------------------------------
    def with_params(self, overrides: dict) -> "SystemSpec":
        """A copy with ``overrides`` merged into the builder parameters."""
        return SystemSpec(self.kind, {**self.params, **overrides})

    def build(self):
        """Instantiate the described :class:`~repro.mapping.mapping.Mapping`."""
        from repro.application.chain import Application
        from repro.mapping.examples import (
            named_system,
            single_communication,
            uniform_chain,
        )
        from repro.mapping.mapping import Mapping
        from repro.platform.topology import Platform

        p = dict(self.params)
        # "named" / "single_communication" forward extras to the builder
        # (unknown keywords fail loudly there); the two dict-read kinds
        # need their own guard or a typo would silently use a default.
        allowed = {
            "chain": {"works", "files", "speeds", "bandwidth", "teams"},
            "uniform_chain": {
                "replication", "work", "file_size", "speed", "bandwidth",
            },
        }.get(self.kind)
        if allowed is not None and set(p) - allowed:
            raise CampaignError(
                f"system kind {self.kind!r} does not accept parameter(s) "
                f"{', '.join(sorted(set(p) - allowed))}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        try:
            if self.kind == "named":
                return named_system(p.pop("name"), **p)
            if self.kind == "single_communication":
                return single_communication(
                    _int_param(self.kind, "u", p.pop("u")),
                    _int_param(self.kind, "v", p.pop("v")),
                    **p,
                )
            if self.kind == "chain":
                app = Application.from_work(p["works"], p.get("files"))
                platform = Platform.from_speeds(
                    p["speeds"], p.get("bandwidth", 1.0)
                )
                return Mapping(app, platform, p["teams"])
            # uniform_chain
            reps = [
                _int_param(self.kind, "replication", r)
                for r in p["replication"]
            ]
            return uniform_chain(
                reps,
                work=p.get("work", 1.0),
                file_size=p.get("file_size", 1.0),
                speed=p.get("speed", 1.0),
                bandwidth=p.get("bandwidth", 1.0),
            )
        except KeyError as exc:
            raise CampaignError(
                f"system kind {self.kind!r} is missing parameter {exc}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"invalid parameters for system kind {self.kind!r}: {exc}"
            ) from None
        except ReproError as exc:
            # Library validation (unknown named system, bad teams, …)
            # surfaces as a spec problem, not a mid-run traceback.
            raise CampaignError(
                f"system kind {self.kind!r} cannot be built: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "SystemSpec":
        _require(
            isinstance(data, dict), f"a system spec must be an object: {data!r}"
        )
        unknown = set(data) - {"kind", "params"}
        _require(
            not unknown,
            f"unknown SystemSpec keys: {', '.join(sorted(map(str, unknown)))}",
        )
        _require("kind" in data, "SystemSpec needs a 'kind'")
        params = data.get("params", {})
        _require(
            isinstance(params, dict),
            f"system params must be an object, got {params!r}",
        )
        return cls(kind=data["kind"], params=dict(params))


@dataclass
class ScenarioSpec:
    """One sweep: a system, a solver/model baseline, and parameter axes."""

    name: str
    system: SystemSpec
    solver: str = "deterministic"
    model: str = "overlap"
    options: dict = field(default_factory=dict)
    axes: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            "a scenario needs a non-empty name",
        )
        _require(
            isinstance(self.solver, str),
            f"scenario {self.name!r}: solver must be a registry name",
        )
        _require(
            self.model in _MODELS,
            f"scenario {self.name!r}: model must be one of {_MODELS}, "
            f"got {self.model!r}",
        )
        _require(
            isinstance(self.options, dict),
            f"scenario {self.name!r}: options must be a dict",
        )
        _require(
            isinstance(self.axes, dict),
            f"scenario {self.name!r}: axes must be a dict",
        )
        for axis, values in self.axes.items():
            _require(
                axis in ("solver", "model")
                or axis.startswith("system.")
                or axis.startswith("solver."),
                f"scenario {self.name!r}: axis {axis!r} must be 'solver', "
                "'model', 'system.<param>' or 'solver.<param>'",
            )
            _require(
                isinstance(values, (list, tuple)) and len(values) > 0,
                f"scenario {self.name!r}: axis {axis!r} needs a non-empty "
                "list of values",
            )
        if "model" in self.axes:
            for v in self.axes["model"]:
                _require(
                    v in _MODELS,
                    f"scenario {self.name!r}: axis 'model' value {v!r} "
                    f"must be one of {_MODELS}",
                )
        self.options = _jsonable(self.options)
        self.axes = {a: _jsonable(list(v)) for a, v in self.axes.items()}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "system": self.system.to_dict(),
            "solver": self.solver,
            "model": self.model,
            "options": dict(self.options),
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        _require(
            isinstance(data, dict), f"a scenario must be an object: {data!r}"
        )
        unknown = set(data) - {
            "name", "system", "solver", "model", "options", "axes", "description",
        }
        _require(
            not unknown,
            f"unknown ScenarioSpec keys: {', '.join(sorted(map(str, unknown)))}",
        )
        _require(
            "name" in data and "system" in data,
            "ScenarioSpec needs at least 'name' and 'system'",
        )
        options = data.get("options", {})
        _require(
            isinstance(options, dict),
            f"scenario options must be an object, got {options!r}",
        )
        axes = data.get("axes", {})
        _require(
            isinstance(axes, dict),
            f"scenario axes must be an object, got {axes!r}",
        )
        return cls(
            name=data["name"],
            system=SystemSpec.from_dict(data["system"]),
            solver=data.get("solver", "deterministic"),
            model=data.get("model", "overlap"),
            options=dict(options),
            # Pass non-list axis values through untouched so validation
            # rejects them (list("abc") would explode into characters).
            axes={
                a: list(v) if isinstance(v, (list, tuple)) else v
                for a, v in axes.items()
            },
            description=data.get("description", ""),
        )


@dataclass
class CampaignSpec:
    """A named collection of scenarios sharing one base seed."""

    name: str
    scenarios: list[ScenarioSpec] = field(default_factory=list)
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            "a campaign needs a non-empty name",
        )
        _require(
            bool(self.scenarios),
            f"campaign {self.name!r} needs at least one scenario",
        )
        names = [s.name for s in self.scenarios]
        _require(
            len(names) == len(set(names)),
            f"campaign {self.name!r} has duplicate scenario names",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"campaign {self.name!r}: seed must be an int",
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        _require(
            isinstance(data, dict), f"a campaign spec must be an object: {data!r}"
        )
        unknown = set(data) - {"name", "seed", "description", "scenarios"}
        _require(
            not unknown,
            f"unknown CampaignSpec keys: {', '.join(sorted(map(str, unknown)))}",
        )
        _require("name" in data, "CampaignSpec needs a 'name'")
        scenarios = data.get("scenarios", [])
        _require(
            isinstance(scenarios, list),
            f"'scenarios' must be a list of objects, got {scenarios!r}",
        )
        return cls(
            name=data["name"],
            scenarios=[ScenarioSpec.from_dict(s) for s in scenarios],
            # Not coerced: a float or string seed is a spec mistake that
            # __post_init__ rejects, not something to truncate silently.
            seed=data.get("seed", 0),
            description=data.get("description", ""),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign spec is not valid JSON: {exc}") from None
        _require(isinstance(data, dict), "campaign spec JSON must be an object")
        return cls.from_dict(data)
