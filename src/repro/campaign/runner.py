"""Campaign runner: execute run units through the solver registry.

:func:`run_campaign` expands a spec, skips units the store already
holds (``resume``), and scores the rest through
:func:`repro.evaluate.evaluate_tasks` — heterogeneous chunks sharing a
single :class:`~repro.evaluate.cache.StructureCache` and fanning unique
work over ``n_jobs`` workers. Results are appended to the store in
deterministic unit order as each chunk completes (every unit when
serial), so

* a crash loses at most the in-flight chunk; everything already
  appended resumes cleanly (completed units skip);
* serial and ``n_jobs > 1`` runs produce byte-identical stores
  (solvers are pure, and the fold-back preserves submission order);
* seeds derive from unit fingerprints, never from execution order.

:func:`campaign_status` and :func:`campaign_report` are the read side:
progress counts against a spec, and per-scenario
:class:`~repro.experiments.common.ExperimentResult` tables (rows sorted
by fingerprint, hence identical however the store was produced).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.campaign.grid import RunUnit, expand
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.evaluate.batch import evaluate_tasks
from repro.evaluate.cache import StructureCache
from repro.evaluate.solvers import get_solver
from repro.exceptions import (
    CampaignError,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.experiments.common import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.client import ServiceClient


def unit_record(unit: RunUnit, value: float) -> dict:
    """The JSON record persisted for one scored unit.

    Every field is deterministic given the spec — no timestamps, no
    host data — which is what makes equivalent stores byte-identical.
    ``seed`` is recorded only when a random stream actually used it
    (stochastic solvers carry it in their options); exact analyses get
    no phantom provenance.
    """
    record = {
        "campaign": unit.campaign,
        "scenario": unit.scenario,
        "fingerprint": unit.fingerprint,
        "system": unit.system.to_dict(),
        "solver": unit.solver,
        "model": unit.model,
        "options": dict(unit.options),
        "params": dict(unit.params),
        "value": float(value),
    }
    if "seed" in unit.options:
        record["seed"] = unit.options["seed"]
    return record


def unit_task_payload(unit: RunUnit) -> dict:
    """The wire-format task dict of one unit (the service protocol shape).

    Exactly the data :func:`repro.service.workers.normalize_task` builds
    a solver and mapping back from — so a unit executed through a
    running service resolves to the very same computation as the local
    :func:`_unit_task` path, and the stores stay byte-identical.
    """
    return {
        "system": unit.system.to_dict(),
        "solver": unit.solver,
        "model": unit.model,
        "options": dict(unit.options),
    }


@dataclass
class CampaignRunSummary:
    """What one :func:`run_campaign` call did."""

    campaign: str
    store_path: str
    total: int
    executed: int
    skipped: int
    scenarios: list[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(
            [
                f"campaign   : {self.campaign} "
                f"({self.total} units in {len(self.scenarios)} scenarios)",
                f"store      : {self.store_path}",
                f"executed   : {self.executed}",
                f"skipped    : {self.skipped} (already stored or duplicate)",
            ]
        )


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    n_jobs: int = 1,
    resume: bool = False,
    cache: StructureCache | None = None,
    client: "ServiceClient | None" = None,
    record_request_ids: bool = False,
) -> CampaignRunSummary:
    """Execute every pending unit of ``spec`` into ``store``.

    A populated store is refused unless ``resume=True`` (mirroring the
    ``bench --force`` overwrite guard): resuming skips every unit whose
    fingerprint the store already holds and executes only the rest, so
    a completed campaign re-runs as a no-op.

    With a ``client`` (``campaign run --via-service``), chunks are
    scored by a running :mod:`repro.service` daemon instead of this
    process — same solvers, same pure functions, so the store's bytes
    are identical, but the daemon's warm caches (and its tier-2 disk
    cache) carry across campaigns and process restarts. Units travel in
    chunks of at least 16 (one round trip and one crash-loss bound per
    chunk, batches big enough for the server's pool to fan out); worker
    fan-out belongs to the server, not this process's ``n_jobs``.

    ``record_request_ids=True`` (service runs only) stamps every store
    row with the ``request_id`` of the chunk that scored it, joinable
    against the fleet's flight recorders via ``repro.cli trace``. It is
    opt-in precisely because it breaks the byte-identity guarantee
    above: rows gain a provenance field an in-process run cannot have.
    """
    if record_request_ids and client is None:
        raise CampaignError(
            "record_request_ids needs a service client: trace ids are "
            "minted per request by ServiceClient"
        )
    units = expand(spec)
    if len(store) and not resume:
        raise CampaignError(
            f"store {store.path} already holds {len(store)} result(s); "
            "pass resume=True (--resume) to continue it, or point the "
            "campaign at a fresh store path"
        )
    if cache is None:
        cache = StructureCache()

    # Partition into per-scenario pending lists (store hits and in-batch
    # duplicates skip), then *validate* every pending unit by building
    # its solver and mapping once and discarding them: a spec mistake in
    # the last scenario is reported before the first scenario burns any
    # compute, while peak memory stays O(chunk), not O(campaign).
    skipped = 0
    prepared: list[list[RunUnit]] = []
    for scenario in spec.scenarios:
        scenario_units = [u for u in units if u.scenario == scenario.name]
        in_flight: set[str] = set()
        pending: list[RunUnit] = []
        for unit in scenario_units:
            if unit.fingerprint in store or unit.fingerprint in in_flight:
                skipped += 1
            else:
                in_flight.add(unit.fingerprint)
                pending.append(unit)
        if pending:
            prepared.append(pending)
    for pending in prepared:
        for unit in pending:
            _unit_task(unit)

    executed = 0
    # One worker pool serves every chunk of the whole campaign — created
    # lazily, so a fully-resumed run (0 pending units) never spawns it.
    # Via a service client, no pool: fan-out is the server's business.
    pool: ProcessPoolExecutor | None = None
    try:
        for pending in prepared:
            # Chunked execution bounds what a crash can lose: serial
            # runs persist after every unit, parallel runs after every
            # chunk (sized to amortize dispatch). Chunks run in
            # deterministic order and the cache memo dedups across them,
            # so chunking never changes the store's bytes. Service
            # chunks are sized for the *server* (one round trip per
            # chunk, batches big enough for its pool to fan out), not
            # for this process's n_jobs.
            if client is not None:
                chunk_size = max(16, 4 * n_jobs)
            else:
                chunk_size = 1 if n_jobs == 1 else 4 * n_jobs
            if n_jobs > 1 and client is None and pool is None:
                pool = ProcessPoolExecutor(max_workers=n_jobs)
            for start in range(0, len(pending), chunk_size):
                chunk = pending[start:start + chunk_size]
                request_id = None
                if client is not None:
                    values = _run_chunk_via_service(chunk, client)
                    request_id = client.last_request_id
                else:
                    values = evaluate_tasks(
                        [_unit_task(u) for u in chunk],
                        cache=cache,
                        n_jobs=n_jobs,
                        pool=pool,
                    )
                for unit, value in zip(chunk, values):
                    record = unit_record(unit, value)
                    if record_request_ids and request_id is not None:
                        record["request_id"] = request_id
                    store.append(record)
                    executed += 1
    finally:
        if pool is not None:
            pool.shutdown()
    return CampaignRunSummary(
        campaign=spec.name,
        store_path=str(store.path),
        total=len(units),
        executed=executed,
        skipped=skipped,
        scenarios=[s.name for s in spec.scenarios],
    )


def _run_chunk_via_service(
    chunk: list[RunUnit], client: "ServiceClient"
) -> list[float]:
    """Score one chunk through a running service; failures abort the run.

    The store only ever holds completed scores, so a unit the service
    could not evaluate (or a dead server, a blown deadline, an
    exhausted retry budget) surfaces as :class:`CampaignError` —
    everything already appended resumes cleanly, exactly like a local
    crash. The client's retry policy has already absorbed transient
    faults by the time an exception reaches this frame. Error messages
    carry the chunk's trace id when one was minted, so a failed chunk
    can be walked through the fleet's flight recorders with
    ``repro.cli trace``.
    """
    def _trace_hint() -> str:
        rid = client.last_request_id
        return f" [request {rid}]" if rid else ""

    try:
        values, failures, _stats = client.evaluate_batch(
            [unit_task_payload(u) for u in chunk]
        )
    except ServiceOverloaded as exc:
        raise CampaignError(
            f"service execution failed: server overloaded and retries "
            f"exhausted ({exc}){_trace_hint()}; rerun to resume from the store"
        ) from None
    except ServiceTimeout as exc:
        raise CampaignError(
            f"service execution failed: deadline exceeded "
            f"({exc}){_trace_hint()}; "
            "raise --request-timeout or rerun to resume from the store"
        ) from None
    except ServiceError as exc:
        raise CampaignError(
            f"service execution failed: {exc}{_trace_hint()}"
        ) from None
    if failures:
        first = failures[0]
        unit = chunk[first.get("index", 0)]
        quarantined = sum(
            1 for f in failures if f.get("reason") == "quarantined"
        )
        poison_hint = (
            f" ({quarantined} quarantined as poison after failing on "
            f"distinct workers)" if quarantined else ""
        )
        raise CampaignError(
            f"service failed {len(failures)} unit(s){poison_hint}; "
            f"first: scenario "
            f"{unit.scenario!r} ({first.get('error')}: "
            f"{first.get('message')}){_trace_hint()}"
        )
    if len(values) != len(chunk):
        raise CampaignError(
            f"service returned {len(values)} value(s) for {len(chunk)} unit(s)"
        )
    return values


def _unit_task(unit: RunUnit) -> tuple:
    """The ``(solver, mapping, model)`` evaluation task of one unit.

    Solver-constructor failures (bad option values that name-level
    validation can't see) surface as :class:`CampaignError` here, at
    prepare time, not as a traceback mid-run.
    """
    try:
        solver = get_solver(unit.solver, **unit.options)
    except (TypeError, ValueError) as exc:
        raise CampaignError(
            f"scenario {unit.scenario!r}: cannot configure solver "
            f"{unit.solver!r} with options {unit.options!r}: {exc}"
        ) from None
    return (solver, unit.system.build(), unit.model)


def campaign_status(
    spec: CampaignSpec, store: ResultStore
) -> list[tuple[str, int, int]]:
    """Per-scenario ``(name, completed, total)`` progress against a spec."""
    units = expand(spec)
    rows: list[tuple[str, int, int]] = []
    for scenario in spec.scenarios:
        fingerprints = {
            u.fingerprint for u in units if u.scenario == scenario.name
        }
        done = sum(1 for fp in fingerprints if fp in store)
        rows.append((scenario.name, done, len(fingerprints)))
    return rows


def campaign_report(
    store: ResultStore, *, campaign: str | None = None
) -> list[ExperimentResult]:
    """One :class:`ExperimentResult` table per scenario in the store.

    Rows are sorted by grid parameters (fingerprint as tie-break), so
    the report is identical whatever order the store was filled in — a
    resumed, re-ordered or parallel run reports exactly like the cold
    serial one.
    """
    records = store.records()
    if campaign is not None:
        records = [r for r in records if r.get("campaign") == campaign]
    by_scenario: dict[str, list[dict]] = {}
    for record in records:
        by_scenario.setdefault(record.get("scenario", "?"), []).append(record)
    results: list[ExperimentResult] = []
    for scenario, recs in by_scenario.items():
        # "solver" / "model" axes are already surfaced by the dedicated
        # columns; only the remaining grid parameters get their own.
        param_keys = sorted(
            {k for r in recs for k in r.get("params", {})} - {"solver", "model"}
        )
        # Stochastic units carry a stream seed in their options; surface
        # it so runs of the same scenario under two campaign seeds stay
        # distinguishable row by row.
        show_seed = any("seed" in r.get("options", {}) for r in recs)
        columns = [*param_keys, "solver", "model"]
        if show_seed:
            columns.append("seed")
        columns.append("value")
        campaigns = sorted({r.get("campaign", "?") for r in recs})
        result = ExperimentResult(
            name=scenario,
            description=(
                f"campaign {', '.join(campaigns)}: {len(recs)} completed unit(s)"
            ),
            columns=columns,
        )
        def value_key(v: object) -> tuple:
            # Numbers sort numerically, everything else lexically —
            # n_datasets = [100, 500, 1000], not [100, 1000, 500].
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return (1, repr(v))
            return (0, float(v))

        def sort_key(r: dict, keys=tuple(param_keys)) -> tuple:
            params = r.get("params", {})
            return (
                [value_key(params.get(k)) for k in keys],
                r.get("solver", ""),
                r.get("model", ""),
                repr(r.get("options", {}).get("seed", "")),
                r["fingerprint"],
            )

        for record in sorted(recs, key=sort_key):
            row = {k: record.get("params", {}).get(k, "") for k in param_keys}
            row["solver"] = record.get("solver", "")
            row["model"] = record.get("model", "")
            if show_seed:
                row["seed"] = record.get("options", {}).get("seed", "")
            row["value"] = record.get("value", "")
            result.rows.append(row)
        results.append(result)
    return results
