"""Shared structure cache backing the throughput solvers.

One :class:`StructureCache` instance memoizes, across any number of
``evaluate`` / ``evaluate_many`` calls:

* **scores** — ``(solver, options, timing fingerprint)`` → throughput.
  This is the memo behind the mapping-search guarantee that no candidate
  is ever evaluated twice;
* **nets** — timing fingerprint → built :class:`TimedEventGraph` (with
  its lazily built incidence kernel), shared between solvers looking at
  the same mapping (e.g. both halves of the Theorem 7 sandwich);
* **reachability** — structure fingerprint → :class:`ReachabilityResult`.
  The reachable-marking graph of a bounded net depends only on the
  topology, so candidates differing only in their times (every swap move
  of a hill climb) reuse one exploration and pay only the CTMC solve.

The cache is a plain in-process object: share one instance to share
work, pass ``StructureCache(enabled=False)`` to measure the uncached
cost (the ``repro.bench`` search workload does exactly that).

A long-lived holder — the :mod:`repro.service` daemon keeps one cache
for its whole lifetime — can bound memory with ``max_entries``: each of
the three maps becomes an LRU of at most that many entries, and
evictions are counted in :meth:`stats` (the service surfaces them in
its ``ping`` reply).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.evaluate.fingerprint import mapping_fingerprint, structure_fingerprint
from repro.mapping.mapping import Mapping
from repro.telemetry.profile import profile_span
from repro.types import ExecutionModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.petri.net import TimedEventGraph
    from repro.petri.reachability import ReachabilityResult


class StructureCache:
    """Score memo + structural artefact cache for the solver registry."""

    def __init__(
        self, *, enabled: bool = True, max_entries: int | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._scores: OrderedDict[tuple, float] = OrderedDict()
        self._nets: OrderedDict[tuple, TimedEventGraph] = OrderedDict()
        self._reach: OrderedDict[tuple, ReachabilityResult] = OrderedDict()

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _touch(self, table: OrderedDict, key: tuple) -> None:
        """Mark ``key`` most-recently-used (no-op when unbounded)."""
        if self.max_entries is not None:
            table.move_to_end(key)

    def _insert(self, table: OrderedDict, key: tuple, value) -> None:
        """Insert, evicting the least-recently-used entry when over cap."""
        table[key] = value
        if self.max_entries is not None and len(table) > self.max_entries:
            table.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Score memo
    # ------------------------------------------------------------------
    def score_key(
        self,
        mapping: Mapping,
        model: ExecutionModel | str,
        solver_name: str,
        options_key: tuple,
    ) -> tuple:
        with profile_span("fingerprint"):
            return (solver_name, options_key, mapping_fingerprint(mapping, model))

    def lookup(self, key: tuple) -> float | None:
        """Memoized score for ``key``; counts the hit when present."""
        with profile_span("cache_lookup"):
            if self.enabled and key in self._scores:
                self.hits += 1
                self._touch(self._scores, key)
                return self._scores[key]
            return None

    def store(self, key: tuple, value: float) -> float:
        """Record a freshly computed score (counts the miss)."""
        self.misses += 1
        if self.enabled:
            self._insert(self._scores, key, value)
        return value

    def score(self, key: tuple, compute: Callable[[], float]) -> float:
        cached = self.lookup(key)
        if cached is not None:
            return cached
        return self.store(key, compute())

    # ------------------------------------------------------------------
    # Structural artefacts
    # ------------------------------------------------------------------
    def net(
        self,
        mapping: Mapping,
        model: ExecutionModel | str,
        build: Callable[[], "TimedEventGraph"],
        **builder_options,
    ) -> "TimedEventGraph":
        """Built (and kernel-cached) net for a timing fingerprint."""
        if not self.enabled:
            return build()
        key = (
            mapping_fingerprint(mapping, model),
            tuple(sorted(builder_options.items())),
        )
        net = self._nets.get(key)
        if net is None:
            net = build()
            self._insert(self._nets, key, net)
        else:
            self._touch(self._nets, key)
        return net

    def reachability(
        self,
        mapping: Mapping,
        model: ExecutionModel | str,
        explore: Callable[[], "ReachabilityResult"],
        *,
        max_states: int,
        place_bound: int,
        **builder_options,
    ) -> "ReachabilityResult":
        """Reachability result shared across a structure fingerprint.

        ``max_states``/``place_bound`` join the key so a cached success
        can never mask the :class:`StateSpaceLimitError` a stricter limit
        would have raised.
        """
        if not self.enabled:
            return explore()
        key = (
            structure_fingerprint(mapping, model, **builder_options),
            max_states,
            place_bound,
        )
        reach = self._reach.get(key)
        if reach is None:
            reach = explore()
            self._insert(self._reach, key, reach)
        else:
            self._touch(self._reach, key)
        return reach

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        """Total score requests routed through the memo."""
        return self.hits + self.misses

    def stats(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "nets": len(self._nets),
            "reachability": len(self._reach),
            "scores": len(self._scores),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"StructureCache(requests={s['requests']}, hits={s['hits']}, "
            f"misses={s['misses']}, evictions={s['evictions']}, "
            f"nets={s['nets']}, reach={s['reachability']}, "
            f"enabled={self.enabled})"
        )
