"""Unified throughput-solver subsystem (the paper's evaluators, pluggable).

One seam ties every mapping-scoring path of the library together:

* a :class:`ThroughputSolver` protocol and a registry of named backends —
  ``deterministic`` (Section 4), ``exponential`` (Section 5, Theorems
  2-4), ``bounds`` (Theorem 7 sandwich) and ``simulation`` (Section 7);
* a :class:`StructureCache` keyed by canonical mapping fingerprints,
  sharing built nets, reachability graphs and memoized scores across
  repeated or isomorphic candidates;
* :func:`evaluate` / :func:`evaluate_many` — the single and batched
  front doors, with fingerprint deduplication and an optional process
  pool (bit-identical to the serial loop).

``StreamingSystem``, ``throughput_bounds`` and the mapping-search
heuristics all delegate here; new backends only need ``@register_solver``.
"""

from repro.evaluate.batch import (
    TaskFailure,
    evaluate,
    evaluate_many,
    evaluate_tasks,
    resolve_solver,
)
from repro.evaluate.cache import StructureCache
from repro.evaluate.fingerprint import (
    fingerprint_digest,
    mapping_fingerprint,
    structure_fingerprint,
)
from repro.evaluate.solvers import (
    BoundsSolver,
    DeterministicSolver,
    ExponentialSolver,
    SimulationSolver,
    ThroughputSolver,
    available_solvers,
    get_solver,
    register_solver,
    solver_is_stochastic,
    solver_options,
)

__all__ = [
    "evaluate",
    "evaluate_many",
    "evaluate_tasks",
    "resolve_solver",
    "TaskFailure",
    "StructureCache",
    "mapping_fingerprint",
    "structure_fingerprint",
    "fingerprint_digest",
    "ThroughputSolver",
    "DeterministicSolver",
    "ExponentialSolver",
    "BoundsSolver",
    "SimulationSolver",
    "available_solvers",
    "get_solver",
    "register_solver",
    "solver_is_stochastic",
    "solver_options",
]
