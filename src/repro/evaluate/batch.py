"""Single and batched mapping evaluation through the solver registry.

:func:`evaluate` scores one mapping; :func:`evaluate_many` scores a
whole candidate batch under one solver; :func:`evaluate_tasks` scores a
heterogeneous batch where every task brings its own solver and model
(the campaign runner's shape). Both batch APIs share one core:
fingerprint-level deduplication through an optional
:class:`~repro.evaluate.cache.StructureCache` memo, and an optional
process pool with the same fan-out discipline as
:func:`repro.sim.runner.replicate` — work is dispatched in stream order
and folded back by index, so ``n_jobs > 1`` is bit-identical to the
serial loop.

:func:`evaluate_tasks` additionally accepts ``on_error="record"``: a
task that raises (bad solver configuration, a state-space limit, a
numerical failure) yields a :class:`TaskFailure` record in its result
slot instead of aborting the whole batch — the mode a long-lived
evaluation service needs to survive one poisoned request.
"""

from __future__ import annotations

import dataclasses
import pickle
import warnings
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor

from repro.evaluate.cache import StructureCache
from repro.evaluate.solvers import ThroughputSolver, get_solver
from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel

#: One unit of batched work: a ready solver, a mapping, a coerced model.
Task = tuple[ThroughputSolver, Mapping, ExecutionModel]


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """Structured record of one failed task in an ``on_error="record"`` batch.

    Carries the exception class name and message, never the exception
    object itself — failures must survive a trip through a worker
    process, a JSON protocol frame, or a result log unchanged.
    """

    error: str
    message: str
    #: Trace id of the request this failure was answered under, when it
    #: travelled through the service (None for direct batch runs).
    request_id: str | None = None
    #: Structured cause beyond the exception, e.g. ``"quarantined"`` for
    #: a unit the orchestrator refused to keep re-dispatching after it
    #: failed on ``max_unit_attempts`` distinct workers.
    reason: str | None = None

    def to_dict(self) -> dict:
        record = {"error": self.error, "message": self.message}
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.reason is not None:
            record["reason"] = self.reason
        return record

    @classmethod
    def of(cls, exc: BaseException) -> "TaskFailure":
        return cls(error=type(exc).__name__, message=str(exc))

    def stamp(self, request_id: str | None) -> "TaskFailure":
        """A copy carrying the trace id (self when there is nothing to add)."""
        if request_id is None or self.request_id is not None:
            return self
        return dataclasses.replace(self, request_id=request_id)


def resolve_solver(solver: ThroughputSolver | str, options: dict) -> ThroughputSolver:
    """Turn a registry name (plus options) or a ready instance into a solver."""
    if isinstance(solver, str):
        return get_solver(solver, **options)
    if options:
        raise TypeError(
            "solver options are only accepted together with a registry name; "
            "configure the instance directly instead"
        )
    return solver


def _options_key(solver: ThroughputSolver) -> tuple:
    """Canonical, hashable key of a solver's frozen configuration."""
    if dataclasses.is_dataclass(solver):
        return tuple(
            (f.name, getattr(solver, f.name))
            for f in dataclasses.fields(solver)
        )
    return (repr(solver),)


def evaluate(
    mapping: Mapping,
    *,
    solver: ThroughputSolver | str = "deterministic",
    model: ExecutionModel | str = "overlap",
    cache: StructureCache | None = None,
    **options,
) -> float:
    """Score one mapping with a named (or given) solver.

    With a ``cache``, the score is memoized under the mapping's canonical
    timing fingerprint and structural artefacts (nets, reachability) are
    shared with every other evaluation routed through the same cache.
    """
    s = resolve_solver(solver, options)
    model = ExecutionModel.coerce(model)
    if cache is None:
        return s.solve(mapping, model)
    key = cache.score_key(mapping, model, s.name, _options_key(s))
    return cache.score(key, lambda: s.solve(mapping, model, cache=cache))


def _solve_payload(payload: tuple) -> float:
    solver, mapping, model_value = payload
    return solver.solve(mapping, ExecutionModel(model_value))


def _solve_payload_record(payload: tuple) -> tuple:
    """Worker-side solve that tags failures instead of raising.

    Returns ``("ok", value)`` or ``("err", class_name, message)`` — plain
    tuples, so a failure crosses the process boundary even when the
    exception object itself would not pickle.
    """
    try:
        return ("ok", _solve_payload(payload))
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))


def evaluate_many(
    mappings: Iterable[Mapping],
    *,
    solver: ThroughputSolver | str = "deterministic",
    model: ExecutionModel | str = "overlap",
    cache: StructureCache | None = None,
    n_jobs: int = 1,
    pool: ProcessPoolExecutor | None = None,
    **options,
) -> list[float]:
    """Score a batch of candidate mappings, deduplicated and parallel.

    Candidates are keyed by their canonical timing fingerprint: repeated
    or isomorphic candidates (same replication and slot-wise mean times,
    whatever the processor identities) are evaluated once. ``cache``
    carries the memo across calls — a search loop passing the same cache
    never re-evaluates any candidate it has seen.

    ``n_jobs > 1`` fans the unique evaluations over a process pool.
    Solvers are pure functions of ``(mapping, model)`` (the simulation
    solver derives its stream from the candidate fingerprint, not from
    evaluation order), and results are folded back in submission order,
    so the output is bit-identical to the serial loop. A caller scoring
    many batches (a search loop, a resident service) can pass its own
    ``pool`` to amortize one executor across all of them; it is ignored
    when ``n_jobs == 1`` and never shut down here.
    """
    s = resolve_solver(solver, options)
    model = ExecutionModel.coerce(model)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if cache is None:
        cache = StructureCache()
    tasks: list[Task] = [(s, mapping, model) for mapping in mappings]
    if not cache.enabled:
        return _run_uncached(tasks, cache, n_jobs, pool=pool)
    return _evaluate_batch(tasks, cache, n_jobs, pool=pool)


def evaluate_tasks(
    tasks: Iterable[tuple[ThroughputSolver | str, Mapping, ExecutionModel | str]],
    *,
    cache: StructureCache | None = None,
    n_jobs: int = 1,
    pool: ProcessPoolExecutor | None = None,
    on_error: str = "raise",
) -> list[float | TaskFailure]:
    """Score a heterogeneous batch where every task brings its own solver.

    Each task is a ``(solver, mapping, model)`` triple — a ready solver
    instance or a registry name (names get default options; configure an
    instance for anything else). Unlike :func:`evaluate_many`, one batch
    may mix solvers, options and models, which is what the campaign
    runner needs: a sweep's units differ per-axis in all three.

    The guarantees match :func:`evaluate_many`: tasks are deduplicated
    on ``(solver, options, timing fingerprint)`` through the shared
    ``cache`` memo, unique work is dispatched in stream order and folded
    back by index, and because solvers are pure functions of
    ``(mapping, model)``, ``n_jobs > 1`` is bit-identical to the serial
    loop.

    ``pool`` lets a caller issuing many batches (the campaign runner's
    crash-safe chunks) amortize one executor across all of them instead
    of spawning workers per call; it is ignored when ``n_jobs == 1`` and
    never shut down here.

    ``on_error="record"`` turns any per-task exception — at solver
    resolution or at solve time — into a :class:`TaskFailure` in that
    task's result slot, leaving the rest of the batch intact. Failures
    are never memoized (a retried request recomputes), and duplicates of
    a failed task share the leader's failure record without counting as
    cache hits. The default ``"raise"`` keeps the historical fail-fast
    contract.
    """
    if on_error not in ("raise", "record"):
        raise ValueError("on_error must be 'raise' or 'record'")
    record = on_error == "record"
    seq = list(tasks)
    # Per-task resolution failures (unknown solver name, a mapping whose
    # model coercion fails) are recorded against their slot, so one
    # malformed task cannot poison the batch.
    pre: dict[int, TaskFailure] = {}
    norm: list[Task] = []
    for i, (solver, mapping, model) in enumerate(seq):
        try:
            norm.append(
                (resolve_solver(solver, {}), mapping, ExecutionModel.coerce(model))
            )
        except Exception as exc:
            if not record:
                raise
            pre[i] = TaskFailure.of(exc)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if cache is None:
        cache = StructureCache()
    if not cache.enabled:
        values = _run_uncached(norm, cache, n_jobs, pool=pool, record=record)
    else:
        values = _evaluate_batch(norm, cache, n_jobs, pool=pool, record=record)
    if not pre:
        return values
    healthy = iter(values)
    return [pre[i] if i in pre else next(healthy) for i in range(len(seq))]


def _task_options_key(memo: dict[int, tuple], solver: ThroughputSolver) -> tuple:
    """``_options_key`` memoized per solver instance (one, not N, per batch)."""
    key = memo.get(id(solver))
    if key is None:
        key = memo[id(solver)] = _options_key(solver)
    return key


def _run_uncached(
    tasks: list[Task],
    cache: StructureCache,
    n_jobs: int,
    pool: ProcessPoolExecutor | None = None,
    record: bool = False,
) -> list[float | TaskFailure]:
    """Disabled-cache semantics: every request evaluated independently.

    This is the pre-refactor cost model (no dedup, no memo) that the
    bench baselines measure; the disabled cache still counts misses.
    """
    values = _run_tasks(tasks, n_jobs, pool=pool, record=record)
    opts_keys: dict[int, tuple] = {}
    out: list[float | TaskFailure] = []
    for (s, mapping, model), value in zip(tasks, values):
        if isinstance(value, TaskFailure):
            out.append(value)
            continue
        out.append(
            cache.store(
                cache.score_key(
                    mapping, model, s.name, _task_options_key(opts_keys, s)
                ),
                value,
            )
        )
    return out


def _evaluate_batch(
    tasks: list[Task],
    cache: StructureCache,
    n_jobs: int,
    pool: ProcessPoolExecutor | None = None,
    record: bool = False,
) -> list[float | TaskFailure]:
    """Shared dedup + dispatch + fold core of the two batch APIs."""
    results: list[float | TaskFailure | None] = [None] * len(tasks)
    firsts: dict[tuple, int] = {}
    keys: list[tuple] = []
    pending: list[int] = []
    dups: list[int] = []
    opts_keys: dict[int, tuple] = {}
    for idx, (s, mapping, model) in enumerate(tasks):
        key = cache.score_key(
            mapping, model, s.name, _task_options_key(opts_keys, s)
        )
        keys.append(key)
        cached = cache.lookup(key)
        if cached is not None:
            results[idx] = cached
        elif key in firsts:
            dups.append(idx)
        else:
            firsts[key] = idx
            pending.append(idx)

    values = _run_tasks(
        [tasks[i] for i in pending], n_jobs, cache=cache, pool=pool, record=record
    )
    fresh: dict[tuple, float | TaskFailure] = {}
    for i, value in zip(pending, values):
        if isinstance(value, TaskFailure):
            # Never memoized: a failure is not a score, and a retried
            # request must get a fresh chance to compute one.
            fresh[keys[i]] = value
        else:
            fresh[keys[i]] = cache.store(keys[i], value)
    for idx in dups:
        if not isinstance(fresh[keys[idx]], TaskFailure):
            cache.hits += 1  # satisfied by the in-flight duplicate
    for idx in range(len(tasks)):
        if results[idx] is None:
            results[idx] = fresh[keys[idx]]
    return results  # type: ignore[return-value]


def _run_tasks(
    tasks: list[Task],
    n_jobs: int,
    cache: StructureCache | None = None,
    pool: ProcessPoolExecutor | None = None,
    record: bool = False,
) -> list[float | TaskFailure]:
    """Evaluate ``tasks`` serially or over a process pool, in order.

    A caller-provided ``pool`` is reused (and left running); otherwise a
    fresh executor is spawned per call. On any serialization failure the
    batch falls back to the serial loop with a :func:`_warn_serial_fallback`
    warning pointed at the public API's caller.

    With ``record=True``, solve-time exceptions become :class:`TaskFailure`
    values in their slot (worker-side ones cross the pool as tagged
    tuples); serialization failures still fall back to the serial loop.
    """
    n_jobs = min(n_jobs, len(tasks))
    if n_jobs > 1:
        payloads = [(s, mapping, model.value) for s, mapping, model in tasks]
        worker = _solve_payload_record if record else _solve_payload
        # Pre-flight probe: every *distinct* solver instance plus one
        # representative mapping payload. Solvers are where pickling
        # varies in a heterogeneous batch (custom backends may hold
        # closures); probing them all stays O(#solvers), not O(batch),
        # and a worker-side solve() exception is never mistaken for a
        # serialization failure.
        probes = list({id(s): s for s, _, _ in tasks}.values())
        if not _picklable((payloads[0], probes)):
            _warn_serial_fallback()
        else:
            chunksize = max(1, len(payloads) // (4 * n_jobs))
            try:
                if pool is not None:
                    raw = list(pool.map(worker, payloads, chunksize=chunksize))
                else:
                    with ProcessPoolExecutor(max_workers=n_jobs) as own:
                        raw = list(
                            own.map(worker, payloads, chunksize=chunksize)
                        )
                if not record:
                    return raw
                return [
                    r[1] if r[0] == "ok" else TaskFailure(error=r[1], message=r[2])
                    for r in raw
                ]
            except (pickle.PicklingError, TypeError, AttributeError):
                # The probe covers solvers and the first mapping; a later
                # unpicklable mapping surfaces here as any of these types
                # (CPython raises TypeError/AttributeError for most). A
                # retro-probe separates that from a genuine worker-side
                # error of the same type, which must propagate.
                if _picklable(payloads):
                    raise
                _warn_serial_fallback()
    if not record:
        return [s.solve(mapping, model, cache=cache) for s, mapping, model in tasks]
    out: list[float | TaskFailure] = []
    for s, mapping, model in tasks:
        try:
            out.append(s.solve(mapping, model, cache=cache))
        except Exception as exc:
            out.append(TaskFailure.of(exc))
    return out


def _warn_serial_fallback() -> None:
    # stacklevel 5: this helper → _run_tasks → (_evaluate_batch |
    # _run_uncached) → public API → its caller.
    warnings.warn(
        "batched evaluation: a solver or mapping is not picklable; "
        "falling back to serial evaluation",
        RuntimeWarning,
        stacklevel=5,
    )


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True
