"""Single and batched mapping evaluation through the solver registry.

:func:`evaluate` scores one mapping; :func:`evaluate_many` scores a
whole candidate batch with fingerprint-level deduplication, an optional
shared :class:`~repro.evaluate.cache.StructureCache` memo, and an
optional process pool (the same fan-out discipline as
:func:`repro.sim.runner.replicate`: work is dispatched in stream order
and folded back by index, so ``n_jobs > 1`` is bit-identical to the
serial loop).
"""

from __future__ import annotations

import dataclasses
import pickle
import warnings
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor

from repro.evaluate.cache import StructureCache
from repro.evaluate.solvers import ThroughputSolver, get_solver
from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel


def resolve_solver(solver: ThroughputSolver | str, options: dict) -> ThroughputSolver:
    """Turn a registry name (plus options) or a ready instance into a solver."""
    if isinstance(solver, str):
        return get_solver(solver, **options)
    if options:
        raise TypeError(
            "solver options are only accepted together with a registry name; "
            "configure the instance directly instead"
        )
    return solver


def _options_key(solver: ThroughputSolver) -> tuple:
    """Canonical, hashable key of a solver's frozen configuration."""
    if dataclasses.is_dataclass(solver):
        return tuple(
            (f.name, getattr(solver, f.name))
            for f in dataclasses.fields(solver)
        )
    return (repr(solver),)


def evaluate(
    mapping: Mapping,
    *,
    solver: ThroughputSolver | str = "deterministic",
    model: ExecutionModel | str = "overlap",
    cache: StructureCache | None = None,
    **options,
) -> float:
    """Score one mapping with a named (or given) solver.

    With a ``cache``, the score is memoized under the mapping's canonical
    timing fingerprint and structural artefacts (nets, reachability) are
    shared with every other evaluation routed through the same cache.
    """
    s = resolve_solver(solver, options)
    model = ExecutionModel.coerce(model)
    if cache is None:
        return s.solve(mapping, model)
    key = cache.score_key(mapping, model, s.name, _options_key(s))
    return cache.score(key, lambda: s.solve(mapping, model, cache=cache))


def _solve_payload(payload: tuple) -> float:
    solver, mapping, model_value = payload
    return solver.solve(mapping, ExecutionModel(model_value))


def evaluate_many(
    mappings: Iterable[Mapping],
    *,
    solver: ThroughputSolver | str = "deterministic",
    model: ExecutionModel | str = "overlap",
    cache: StructureCache | None = None,
    n_jobs: int = 1,
    **options,
) -> list[float]:
    """Score a batch of candidate mappings, deduplicated and parallel.

    Candidates are keyed by their canonical timing fingerprint: repeated
    or isomorphic candidates (same replication and slot-wise mean times,
    whatever the processor identities) are evaluated once. ``cache``
    carries the memo across calls — a search loop passing the same cache
    never re-evaluates any candidate it has seen.

    ``n_jobs > 1`` fans the unique evaluations over a process pool.
    Solvers are pure functions of ``(mapping, model)`` (the simulation
    solver derives its stream from the candidate fingerprint, not from
    evaluation order), and results are folded back in submission order,
    so the output is bit-identical to the serial loop.
    """
    s = resolve_solver(solver, options)
    model = ExecutionModel.coerce(model)
    batch = list(mappings)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if cache is None:
        cache = StructureCache()

    results: list[float | None] = [None] * len(batch)
    opts_key = _options_key(s)

    if not cache.enabled:
        # Uncached semantics: every request is evaluated independently
        # (the pre-refactor cost model; used by the bench baseline).
        order = list(range(len(batch)))
        values = _run(s, [batch[i] for i in order], model, n_jobs)
        for i, value in zip(order, values):
            results[i] = cache.store(
                cache.score_key(batch[i], model, s.name, opts_key), value
            )
        return results  # type: ignore[return-value]

    firsts: dict[tuple, int] = {}
    keys: list[tuple] = []
    pending: list[int] = []
    for idx, mapping in enumerate(batch):
        key = cache.score_key(mapping, model, s.name, opts_key)
        keys.append(key)
        cached = cache.lookup(key)
        if cached is not None:
            results[idx] = cached
        elif key in firsts:
            cache.hits += 1  # satisfied by the in-flight duplicate below
        else:
            firsts[key] = idx
            pending.append(idx)

    values = _run(s, [batch[i] for i in pending], model, n_jobs, cache=cache)
    fresh: dict[tuple, float] = {}
    for i, value in zip(pending, values):
        fresh[keys[i]] = cache.store(keys[i], value)
    for idx in range(len(batch)):
        if results[idx] is None:
            results[idx] = fresh[keys[idx]]
    return results  # type: ignore[return-value]


def _run(
    solver: ThroughputSolver,
    mappings: list[Mapping],
    model: ExecutionModel,
    n_jobs: int,
    cache: StructureCache | None = None,
) -> list[float]:
    """Evaluate ``mappings`` serially or over a process pool, in order."""
    n_jobs = min(n_jobs, len(mappings))
    if n_jobs > 1:
        payloads = [(solver, mapping, model.value) for mapping in mappings]
        if not _picklable(payloads[0]):
            warnings.warn(
                "evaluate_many(): solver or mapping is not picklable; "
                "falling back to serial evaluation",
                RuntimeWarning,
                stacklevel=3,
            )
        else:
            chunksize = max(1, len(payloads) // (4 * n_jobs))
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                return list(pool.map(_solve_payload, payloads, chunksize=chunksize))
    return [solver.solve(mapping, model, cache=cache) for mapping in mappings]


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True
