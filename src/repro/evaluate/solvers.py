"""The pluggable throughput solvers and their registry.

Every way the library can score a mapping — the Section 4 deterministic
evaluators, the Section 5 exponential analysis, the Theorem 7 N.B.U.E.
sandwich and the Section 7 simulators — is wrapped behind one protocol
and registered under a short name::

    >>> from repro.evaluate import get_solver
    >>> get_solver("deterministic").solve(mapping, "overlap")
    >>> get_solver("bounds").bounds(mapping, "strict").width

Solvers are small frozen dataclasses: construction freezes the options,
``solve`` is a pure function of ``(mapping, model)`` — which is what
makes the score memo of :class:`~repro.evaluate.cache.StructureCache`
sound and lets :func:`~repro.evaluate.batch.evaluate_many` ship solver
instances to worker processes byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, ClassVar, Protocol, runtime_checkable

import numpy as np

from repro.evaluate.cache import StructureCache
from repro.evaluate.fingerprint import fingerprint_digest, mapping_fingerprint
from repro.exceptions import UnsupportedModelError
from repro.mapping.mapping import Mapping
from repro.telemetry.profile import profile_span
from repro.types import ExecutionModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bounds import ThroughputBounds

# NOTE: `repro.core` is imported lazily inside the solve methods. The core
# façade (`StreamingSystem`, `throughput_bounds`) delegates to this
# registry, so importing core eagerly here would close an import cycle.


@runtime_checkable
class ThroughputSolver(Protocol):
    """A named, deterministic mapping → throughput evaluator."""

    name: str

    def solve(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> float:
        """Throughput of ``mapping`` under ``model``."""
        ...


_REGISTRY: dict[str, type] = {}


def register_solver(name: str):
    """Class decorator adding a solver to the registry under ``name``."""

    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


def _lookup(name: str) -> type:
    """Registry lookup with the canonical unknown-solver error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnsupportedModelError(
            f"unknown solver {name!r}; available: {', '.join(available_solvers())}"
        ) from None


def solver_is_stochastic(name: str) -> bool:
    """Whether the backend's value depends on a random stream.

    Backends declare it with a ``stochastic = True`` class attribute
    (see :class:`SimulationSolver`); deterministic analyses leave it
    unset. The campaign grid uses this to decide which units are
    seed-keyed: a stochastic unit's identity must include the campaign
    seed, an exact analysis' must not.
    """
    return bool(getattr(_lookup(name), "stochastic", False))


def solver_options(name: str) -> tuple[str, ...]:
    """Constructor option names the solver registered under ``name`` accepts.

    Lets generic callers (the search heuristics, the CLI) forward only
    the options a backend understands instead of hard-coding per-solver
    signatures.
    """
    cls = _lookup(name)
    if is_dataclass(cls):
        return tuple(f.name for f in fields(cls))
    return ()


def get_solver(name: str, **options) -> ThroughputSolver:
    """Instantiate the solver registered under ``name``.

    ``options`` are the solver's constructor keywords (e.g. ``semantics``
    or ``max_states``); unknown names raise ``UnsupportedModelError`` with
    the available choices.
    """
    return _lookup(name)(**options)


def _strict_net(mapping: Mapping, cache: StructureCache | None):
    from repro.petri.builder_strict import build_strict_tpn

    def build():
        with profile_span("net_build"):
            return build_strict_tpn(mapping)

    if cache is None:
        return build()
    return cache.net(mapping, ExecutionModel.STRICT, build)


# ----------------------------------------------------------------------
# Exact solvers
# ----------------------------------------------------------------------
@register_solver("deterministic")
@dataclass(frozen=True)
class DeterministicSolver:
    """Section 4 static throughput (symbolic Overlap / critical cycles)."""

    semantics: str = "unbounded"
    max_states: int = 200_000

    def solve(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> float:
        from repro.core.components import overlap_throughput
        from repro.core.deterministic import tpn_throughput_deterministic

        model = ExecutionModel.coerce(model)
        if model is ExecutionModel.OVERLAP:
            return overlap_throughput(
                mapping,
                "deterministic",
                semantics=self.semantics,
                max_states=self.max_states,
            )
        with profile_span("deterministic_tpn"):
            return tpn_throughput_deterministic(_strict_net(mapping, cache))


@register_solver("exponential")
@dataclass(frozen=True)
class ExponentialSolver:
    """Section 5 exponential throughput (Theorems 2-4).

    Mirrors :func:`repro.core.exponential.exponential_throughput` but
    routes the Strict marking chain through the structure cache: the net
    build and the reachability exploration are reused across candidates
    sharing the timing / topology fingerprint, only the CTMC solve runs
    per candidate.
    """

    method: str = "auto"
    semantics: str = "unbounded"
    buffer_capacity: int | None = None
    max_states: int = 200_000

    def solve(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> float:
        from repro.core.exponential import exponential_throughput
        from repro.markov.builder import tpn_throughput_exponential
        from repro.petri.reachability import PLACE_BOUND, explore

        model = ExecutionModel.coerce(model)
        if model is ExecutionModel.STRICT and self.method in ("auto", "full"):
            # Cache-aware Strict path: the net build and the reachability
            # exploration are shared across same-fingerprint / same-topology
            # candidates, only the CTMC solve runs per candidate.
            tpn = _strict_net(mapping, cache)

            def _explore():
                with profile_span("reachability"):
                    return explore(
                        tpn, max_states=self.max_states, place_bound=PLACE_BOUND
                    )

            reach = None
            if cache is not None:
                reach = cache.reachability(
                    mapping,
                    model,
                    _explore,
                    max_states=self.max_states,
                    place_bound=PLACE_BOUND,
                )
            return tpn_throughput_exponential(
                tpn, max_states=self.max_states, reach=reach
            )
        return exponential_throughput(
            mapping,
            model,
            method=self.method,
            semantics=self.semantics,
            buffer_capacity=self.buffer_capacity,
            max_states=self.max_states,
        )


@register_solver("bounds")
@dataclass(frozen=True)
class BoundsSolver:
    """Theorem 7 N.B.U.E. sandwich built from the two exact solvers.

    ``solve`` returns the guaranteed floor (the exponential lower bound —
    the value a variability-robust search should maximize); ``bounds``
    returns the full :class:`~repro.core.bounds.ThroughputBounds`. Both
    halves share one structure cache, so the Strict net is built (and its
    marking graph explored) once per mapping, not once per bound.
    """

    semantics: str = "unbounded"
    max_states: int = 200_000

    def bounds(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> ThroughputBounds:
        from repro.core.bounds import ThroughputBounds

        if cache is None:
            cache = StructureCache()
        upper = DeterministicSolver(
            semantics=self.semantics, max_states=self.max_states
        ).solve(mapping, model, cache=cache)
        lower = ExponentialSolver(
            semantics=self.semantics, max_states=self.max_states
        ).solve(mapping, model, cache=cache)
        return ThroughputBounds(lower=lower, upper=upper)

    def solve(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> float:
        return self.bounds(mapping, model, cache=cache).lower


# ----------------------------------------------------------------------
# Monte-Carlo solver
# ----------------------------------------------------------------------
@register_solver("simulation")
@dataclass(frozen=True)
class SimulationSolver:
    """Section 7 discrete-event estimate with deterministic seeding.

    The per-candidate random stream is derived from ``seed`` *and* the
    mapping's timing fingerprint, never from evaluation order — so a
    batch scored with ``n_jobs=8`` is bit-identical to the serial loop,
    and memoized repeats are exact (the same candidate always replays the
    same stream).

    ``n_replications > 1`` turns the estimate into a Section 7.2/7.3
    replication study: the solver scores the mean throughput across
    independent replications, evaluated by the runner ``engine`` of
    choice (``"auto"`` batches them through one vectorized recurrence
    pass; ``"loop"`` and ``"vectorized"`` force an engine, with
    bit-identical values either way).
    """

    #: This backend's value depends on its random stream (campaign
    #: units scored by it are therefore seed-keyed).
    stochastic: ClassVar[bool] = True

    n_datasets: int = 1_000
    law: str = "exponential"
    law_params: tuple[tuple[str, float], ...] = field(default=())
    seed: int = 0
    estimator: str = "total"
    n_replications: int = 1
    engine: str = "auto"

    def __post_init__(self) -> None:
        # Accept a dict or any pair sequence (JSON specs can only say
        # lists); store the canonical sorted-tuple form, which is what
        # keeps the solver hashable for the score-memo cache keys.
        if isinstance(self.law_params, dict):
            items = self.law_params.items()
        else:
            items = (tuple(p) for p in self.law_params)
        object.__setattr__(self, "law_params", tuple(sorted(items)))
        if self.n_replications < 1:
            raise ValueError("n_replications must be >= 1")

    def rng_for(self, mapping: Mapping, model: ExecutionModel | str) -> np.random.Generator:
        digest = fingerprint_digest(mapping_fingerprint(mapping, model))
        return np.random.default_rng([self.seed, digest])

    def solve(
        self,
        mapping: Mapping,
        model: ExecutionModel | str = "overlap",
        *,
        cache: StructureCache | None = None,
    ) -> float:
        from repro.sim.sampling import LawSpec
        from repro.sim.system_sim import simulate_system

        model = ExecutionModel.coerce(model)
        spec = LawSpec.of(self.law, **dict(self.law_params))
        if self.n_replications > 1:
            from repro.sim.runner import ReplicationSpec, replicate

            # Replication streams are spawned from the same
            # fingerprint-keyed entropy as the single-run stream, so the
            # study stays independent of evaluation order and exact under
            # memoization.
            digest = fingerprint_digest(mapping_fingerprint(mapping, model))
            with profile_span("simulate"):
                summary = replicate(
                    ReplicationSpec(
                        mapping, model, n_datasets=self.n_datasets, law=spec
                    ),
                    n_replications=self.n_replications,
                    seed=[self.seed, digest],
                    estimator=self.estimator,
                    engine=self.engine,
                )
            return summary.mean
        with profile_span("simulate"):
            result = simulate_system(
                mapping,
                model,
                n_datasets=self.n_datasets,
                law=spec,
                rng=self.rng_for(mapping, model),
            )
        if self.estimator == "steady":
            return result.steady_state_throughput()
        return result.throughput
