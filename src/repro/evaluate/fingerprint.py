"""Canonical mapping fingerprints for the solver structure cache.

Two mappings with the same *timing fingerprint* are throughput-isomorphic:
the unrolled timed event graphs (both models) and the symbolic component
DAG depend only on the replication vector, the per-slot computation means
and the per-row communication means — not on processor identities. The
fingerprint canonicalizes exactly that data, so relabelled platforms,
repeated candidates and structurally identical neighbours all collapse
onto one cache entry.

A coarser *structure fingerprint* keeps only the topology (model,
replication vector, builder options). The reachable-marking graph of a
bounded net depends on the topology alone — firing times only decorate
the CTMC rates — so one reachability exploration serves every candidate
sharing the structure key (e.g. all swap moves of a hill climb).
"""

from __future__ import annotations

import hashlib
import math

from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel

#: Timing fingerprint: nested tuples of ints/floats, hashable and
#: ``repr``-stable (floats round-trip exactly through ``repr``).
Fingerprint = tuple


def mapping_fingerprint(
    mapping: Mapping, model: ExecutionModel | str = "overlap"
) -> Fingerprint:
    """Canonical timing fingerprint of a mapping under one model.

    Collects, slot-wise, every mean time entering the throughput
    computation: computation means per team position and communication
    means per row of each adjacent-pair unrolling (period
    ``lcm(R_i, R_{i+1})``, after which the round-robin pairing repeats).
    """
    model = ExecutionModel.coerce(model)
    n = mapping.n_stages
    reps = mapping.replication
    compute = tuple(
        tuple(mapping.compute_time(i, p) for p in team)
        for i, team in enumerate(mapping.teams)
    )
    comm = []
    for i in range(n - 1):
        r_i, r_j = reps[i], reps[i + 1]
        period = r_i * r_j // math.gcd(r_i, r_j)
        comm.append(
            tuple(
                mapping.comm_time(
                    i,
                    mapping.teams[i][j % r_i],
                    mapping.teams[i + 1][j % r_j],
                )
                for j in range(period)
            )
        )
    return (model.value, reps, compute, tuple(comm))


def structure_fingerprint(
    mapping: Mapping,
    model: ExecutionModel | str = "overlap",
    **builder_options,
) -> Fingerprint:
    """Topology-only fingerprint: the unrolled net up to firing times."""
    model = ExecutionModel.coerce(model)
    return (
        model.value,
        mapping.replication,
        tuple(sorted(builder_options.items())),
    )


def fingerprint_digest(fingerprint: Fingerprint) -> int:
    """Stable 64-bit digest of a fingerprint.

    Used to derive per-candidate simulation seeds: ``hash()`` would do for
    tuples of numbers, but a content digest stays stable across Python
    builds and documents the intent.
    """
    payload = repr(fingerprint).encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")
