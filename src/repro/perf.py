"""Performance trajectory across committed benchmark baselines.

Every PR that touches an engine commits a ``BENCH_PR<n>.json`` report
(see :mod:`repro.bench`). This module reads that history back:

* :func:`load_trajectory` loads every committed report (plus any extra
  files), normalizing ``meta`` across the schema generations the repo
  accumulated (early reports lack ``workloads``; pre-telemetry reports
  lack ``python``/``platform``/``git_revision``);
* :func:`render_trajectory` renders the per-workload median-seconds
  trajectory and the speedup-ratio history — the ``cli bench
  trajectory`` view of how each engine's cost moved across PRs;
* :func:`compare_reports` is the regression gate behind ``cli bench
  compare``: engine-by-engine ``median_s`` ratios against a tolerance,
  with scale-mismatched engines *skipped* rather than misjudged (a
  ``--quick`` run must never be compared against a full-size run of the
  same engine).

The gate is wired into CI: a quick benchmark of the cheap workloads is
compared against the committed ``BENCH_QUICK_BASELINE.json`` with a
generous tolerance, so a pathological slowdown fails the build while
ordinary CI jitter does not.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

#: Engine-result keys that describe problem scale (state counts, net
#: sizes, replication counts, presets — not timings). Two reports are
#: comparable on an engine only when every scale key they *share*
#: agrees; ``n_jobs``-style machine facts deliberately stay out so a
#: laptop report can be compared against a CI report of the same sizes.
SCALE_KEYS = frozenset({
    "n_states",
    "n_arcs",
    "n_events",
    "n_datasets",
    "n_replications",
    "n_candidates",
    "n_restarts",
    "n",
    "n_clients",
    "n_workers",
    "units",
    "capacity",
    "distinct_structures",
    "max_entries",
    "preset",
})

#: Canonical meta keys, oldest schema generation first. Normalization
#: fills the gaps with ``None`` so consumers never branch on vintage.
META_KEYS = (
    "bench",
    "quick",
    "repeats",
    "workloads",
    "numpy",
    "cpu_count",
    "python",
    "platform",
    "git_revision",
)

_REPORT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


# ----------------------------------------------------------------------
# Loading and normalization
# ----------------------------------------------------------------------
def load_report(path: str | Path) -> dict:
    """One benchmark report, schema-checked and meta-normalized."""
    path = Path(path)
    with open(path) as fh:
        try:
            report = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(report, dict) or not isinstance(
        report.get("engines"), dict
    ):
        raise ValueError(
            f"{path} is not a benchmark report (no 'engines' table)"
        )
    report["meta"] = normalize_meta(report.get("meta"))
    report.setdefault("speedups", {})
    return report


def normalize_meta(meta: dict | None) -> dict:
    """Fold any schema generation of ``meta`` onto the current keys.

    PR 1-4 reports carry ``[bench, cpu_count, numpy, quick, repeats]``;
    PR 5+ add ``workloads``; the telemetry era added ``python``,
    ``platform`` and ``git_revision``. Missing keys become ``None``
    (and ``workloads`` an empty list) so every vintage reads alike.
    """
    meta = dict(meta or {})
    normalized = {key: meta.get(key) for key in META_KEYS}
    if normalized["workloads"] is None:
        normalized["workloads"] = []
    # Unknown future keys ride along rather than being dropped.
    for key, value in meta.items():
        normalized.setdefault(key, value)
    return normalized


def report_paths(directory: str | Path = ".") -> list[Path]:
    """Committed ``BENCH_PR<n>.json`` files, ordered by PR number."""
    directory = Path(directory)
    found = []
    for path in directory.glob("BENCH_PR*.json"):
        match = _REPORT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def load_trajectory(
    directory: str | Path = ".",
    extra: tuple[str, ...] | list[str] = (),
) -> list[dict]:
    """Every committed report plus ``extra`` files, oldest first.

    Returns ``[{"label", "path", "meta", "engines", "speedups"}, ...]``;
    labels are ``PR<n>`` for committed baselines and the file stem for
    extras. Unreadable committed files are skipped (a half-written
    report must not break the trajectory view); extras raise.
    """
    entries = []
    for path in report_paths(directory):
        try:
            report = load_report(path)
        except (OSError, ValueError):
            continue
        match = _REPORT_RE.match(path.name)
        entries.append({
            "label": f"PR{match.group(1)}",
            "path": str(path),
            "meta": report["meta"],
            "engines": report["engines"],
            "speedups": report["speedups"],
        })
    for name in extra:
        path = Path(name)
        report = load_report(path)
        entries.append({
            "label": path.stem,
            "path": str(path),
            "meta": report["meta"],
            "engines": report["engines"],
            "speedups": report["speedups"],
        })
    return entries


# ----------------------------------------------------------------------
# Trajectory rendering
# ----------------------------------------------------------------------
def render_trajectory(entries: list[dict]) -> str:
    """Per-workload median-seconds table plus the speedup history.

    One row per engine ever benchmarked, one column per report; ``-``
    marks reports that did not time the engine (filtered runs, engines
    that did not exist yet). A trailing block does the same for the
    speedup ratios.
    """
    if not entries:
        return "no benchmark reports"
    labels = [e["label"] for e in entries]
    width = max(9, max(len(label) for label in labels) + 1)
    engine_names = sorted({name for e in entries for name in e["engines"]})
    lines = [
        "median seconds per workload:",
        f"{'workload':30s}" + "".join(f"{label:>{width}s}" for label in labels),
    ]
    for name in engine_names:
        cells = []
        for entry in entries:
            row = entry["engines"].get(name)
            cells.append(
                f"{row['median_s']:>{width}.4f}" if row else f"{'-':>{width}s}"
            )
        lines.append(f"{name:30s}" + "".join(cells))
    speedup_keys = sorted({key for e in entries for key in e["speedups"]})
    if speedup_keys:
        lines.append("")
        lines.append("speedup ratios (slower / faster):")
        lines.append(
            f"{'speedup':30s}"
            + "".join(f"{label:>{width}s}" for label in labels)
        )
        for key in speedup_keys:
            cells = []
            for entry in entries:
                ratio = entry["speedups"].get(key)
                cells.append(
                    f"{ratio:>{width}.2f}" if ratio is not None
                    else f"{'-':>{width}s}"
                )
            lines.append(f"{key:30s}" + "".join(cells))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
def compare_reports(
    baseline: dict, new: dict, *, tolerance: float = 0.5
) -> dict:
    """Engine-by-engine regression verdicts between two reports.

    For every engine present in both reports whose shared scale keys
    agree, the verdict is driven by ``ratio = new / baseline`` of the
    median seconds: ``regression`` when ``ratio > 1 + tolerance``,
    ``improved`` when ``ratio < 1 / (1 + tolerance)``, ``ok`` between.
    Scale-mismatched engines are ``skipped`` with the offending keys
    (comparing a quick run against a full run proves nothing). The
    result's ``ok`` flag is False exactly when any regression fired.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    base_engines = baseline.get("engines") or {}
    new_engines = new.get("engines") or {}
    engines: dict[str, dict] = {}
    regressions: list[str] = []
    skipped: list[str] = []
    for name in sorted(set(base_engines) & set(new_engines)):
        base_row, new_row = base_engines[name], new_engines[name]
        mismatched = sorted(
            key
            for key in set(base_row) & set(new_row) & SCALE_KEYS
            if base_row[key] != new_row[key]
        )
        if mismatched:
            engines[name] = {"status": "skipped", "mismatched": mismatched}
            skipped.append(name)
            continue
        base_s = float(base_row["median_s"])
        new_s = float(new_row["median_s"])
        ratio = new_s / max(base_s, 1e-12)
        if ratio > 1.0 + tolerance:
            status = "regression"
            regressions.append(name)
        elif ratio < 1.0 / (1.0 + tolerance):
            status = "improved"
        else:
            status = "ok"
        engines[name] = {
            "status": status,
            "baseline_s": base_s,
            "new_s": new_s,
            "ratio": ratio,
        }
    return {
        "tolerance": tolerance,
        "engines": engines,
        "regressions": regressions,
        "skipped": skipped,
        "missing": sorted(set(base_engines) - set(new_engines)),
        "added": sorted(set(new_engines) - set(base_engines)),
        "ok": not regressions,
    }


def render_comparison(result: dict) -> str:
    """Operator-readable verdict table for :func:`compare_reports`."""
    lines = [
        f"{'workload':30s} {'baseline_s':>11s} {'new_s':>11s} "
        f"{'ratio':>7s}  status"
    ]
    for name, row in result["engines"].items():
        if row["status"] == "skipped":
            lines.append(
                f"{name:30s} {'-':>11s} {'-':>11s} {'-':>7s}  "
                f"skipped (scale mismatch: {', '.join(row['mismatched'])})"
            )
            continue
        lines.append(
            f"{name:30s} {row['baseline_s']:>11.4f} {row['new_s']:>11.4f} "
            f"{row['ratio']:>7.2f}  {row['status']}"
        )
    for name in result["missing"]:
        lines.append(f"{name:30s} (in baseline only)")
    for name in result["added"]:
        lines.append(f"{name:30s} (new engine, no baseline)")
    verdict = (
        "PASS" if result["ok"]
        else f"FAIL ({len(result['regressions'])} regression(s))"
    )
    lines.append(
        f"verdict: {verdict} at tolerance {result['tolerance']:g} "
        f"({len(result['skipped'])} skipped)"
    )
    return "\n".join(lines)
