"""Command-line driver for the experiments, solvers, campaigns and service.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig13
    python -m repro.cli run all --scale 0.1
    python -m repro.cli solve example_a --solver bounds --model strict
    python -m repro.cli search --solver deterministic --restarts 5 --n-jobs 4
    python -m repro.cli campaign run --preset smoke --store campaign.jsonl
    python -m repro.cli campaign run --spec my_campaign.json --store c.jsonl \
        --n-jobs 4 --resume
    python -m repro.cli campaign run --preset fig13 --store f13.jsonl \
        --via-service 127.0.0.1:7781
    python -m repro.cli campaign status --preset smoke --store campaign.jsonl
    python -m repro.cli campaign report --store campaign.jsonl
    python -m repro.cli serve --port 7781 --cache service_cache.jsonl
    python -m repro.cli serve --port 7781 --capacity 8 --retry-after 0.5
    python -m repro.cli serve --port 7781 --faults drop:2,crash:1   # chaos
    python -m repro.cli serve --port 7781 --recorder flight.jsonl \
        --slow-threshold 0.5
    python -m repro.cli serve --role orchestrator --port 7790 \
        --workers 127.0.0.1:7781,127.0.0.1:7782
    python -m repro.cli fleet --n-workers 4 --port 7790 --max-entries 64
    python -m repro.cli fleet --n-workers 2 --recorder-dir flight/
    python -m repro.cli submit --port 7781 --preset smoke
    python -m repro.cli ping --port 7781
    python -m repro.cli stats --port 7781
    python -m repro.cli stats --port 7790 --watch --interval 2
    python -m repro.cli metrics --port 7790             # Prometheus text
    python -m repro.cli metrics --port 7790 --json      # raw snapshot
    python -m repro.cli trace 1f2e3d4c5b6a7988 --recorder-dir flight/
    python -m repro.cli shutdown --port 7781
    python -m repro.cli bench --quick --output BENCH_PR4.json
    python -m repro.cli bench --workloads replication --output rep.json

Exit-code contract of the service probes (for CI and operators):
``ping``/``stats``/``metrics`` exit 0 when a server answers on the
endpoint and 1 when none does; ``submit`` exits 0 when every unit
scored and 1 when any failed; ``shutdown`` exits 0 once the server
acknowledged, 1 if unreachable; ``trace`` exits 0 when the request id
was found in at least one recorder file and 1 otherwise.

Global flags: ``-v``/``--verbose`` (repeatable: INFO, then DEBUG) and
``--log-json`` (one JSON object per log line) configure the ``repro``
logger tree before the subcommand runs.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def _scaled_config(name: str, module, scale: float):
    """Best-effort scaled-down configuration per experiment."""
    if scale >= 1.0:
        return None
    if name == "table1":
        return module.scaled_config(scale)
    cfg = None
    cfg_cls = getattr(module, f"{name.capitalize()}Config", None)
    if cfg_cls is None:
        return None
    cfg = cfg_cls()
    for attr in ("n_datasets", "tpn_datasets", "n_replications"):
        if hasattr(cfg, attr):
            setattr(cfg, attr, max(200, int(getattr(cfg, attr) * scale)))
    for attr in ("dataset_counts",):
        if hasattr(cfg, attr):
            counts = [max(10, int(k * scale)) for k in getattr(cfg, attr)]
            setattr(cfg, attr, sorted(set(counts)))
    if hasattr(cfg, "include_exp_theory") and scale < 0.5:
        cfg.include_exp_theory = False
    return cfg


def _system_choices() -> tuple[str, ...]:
    from repro.mapping.examples import NAMED_SYSTEMS

    return tuple(sorted(NAMED_SYSTEMS))


def _cmd_solve(args, parser) -> int:
    from repro.evaluate import StructureCache, evaluate, get_solver
    from repro.mapping.examples import named_system

    mapping = named_system(args.system)
    if args.solver == "simulation":
        options = {"n_datasets": args.n_datasets, "seed": args.sim_seed}
    else:
        options = {"max_states": args.max_states, "semantics": args.semantics}
    cache = StructureCache()
    if args.solver == "bounds":
        bounds = get_solver("bounds", **options).bounds(
            mapping, args.model, cache=cache
        )
        print(f"system     : {args.system}  {mapping!r}")
        print(f"model      : {args.model}")
        print(f"lower (exp): {bounds.lower:.6g}")
        print(f"upper (cst): {bounds.upper:.6g}")
        print(f"width      : {bounds.width:.6g}")
        return 0
    rho = evaluate(
        mapping, solver=args.solver, model=args.model, cache=cache, **options
    )
    print(f"system     : {args.system}  {mapping!r}")
    print(f"model      : {args.model}")
    print(f"solver     : {args.solver}")
    print(f"throughput : {rho:.6g}")
    return 0


def _cmd_search(args, parser) -> int:
    import numpy as np

    from repro.application.chain import Application
    from repro.evaluate import StructureCache
    from repro.mapping.heuristics import random_restart_search
    from repro.platform.topology import Platform

    rng = np.random.default_rng(args.seed)
    app = Application.from_work(
        rng.uniform(1.0, 8.0, args.stages).tolist(),
        rng.uniform(0.1, 0.5, args.stages - 1).tolist(),
    )
    platform = Platform.from_speeds(
        rng.uniform(1.0, 3.0, args.processors).tolist(), bandwidth=5.0
    )
    cache = StructureCache()
    result = random_restart_search(
        app,
        platform,
        mode=args.solver,
        n_restarts=args.restarts,
        seed=args.seed,
        n_jobs=args.n_jobs,
        cache=cache,
    )
    print(f"instance   : N={args.stages} stages on M={args.processors} "
          f"processors (seed {args.seed})")
    print(f"solver     : {args.solver}")
    print(f"best       : {result.throughput:.6g}  {result.mapping!r}")
    print(f"teams      : {[list(t) for t in result.mapping.teams]}")
    print(f"evaluations: {result.evaluations} requests = "
          f"{result.cache_misses} solver runs + {result.cache_hits} cache hits")
    return 0


#: Units per `submit` protocol frame — far below the 32 MB frame
#: ceiling whatever the spec size.
_SUBMIT_CHUNK = 256


def _make_recorder(args, parser):
    """Build the serve command's optional flight recorder from its flags."""
    if args.slow_threshold is not None and args.slow_threshold <= 0:
        parser.error("--slow-threshold must be > 0")
    if args.recorder_max_bytes < 4096:
        parser.error("--recorder-max-bytes must be >= 4096")
    if not args.recorder:
        if args.slow_threshold is not None:
            parser.error("--slow-threshold requires --recorder")
        return None
    from repro.telemetry import FlightRecorder

    try:
        return FlightRecorder(
            args.recorder,
            max_bytes=args.recorder_max_bytes,
            slow_threshold_s=args.slow_threshold,
        )
    except OSError as exc:
        parser.error(f"cannot open --recorder {args.recorder}: {exc}")


def _cmd_serve_orchestrator(args, parser) -> int:
    from repro.exceptions import ServiceError
    from repro.service import (
        OrchestratorServer,
        RetryPolicy,
        WorkerCatalog,
        parse_endpoints,
    )

    if not args.workers:
        parser.error("--role orchestrator requires --workers HOST:PORT,...")
    if args.max_worker_failures < 1:
        parser.error("--max-worker-failures must be >= 1")
    if args.ping_interval is not None and args.ping_interval <= 0:
        parser.error("--ping-interval must be > 0")
    if args.failover_sweeps < 1:
        parser.error("--failover-sweeps must be >= 1")
    if args.breaker_cooldown < 0:
        parser.error("--breaker-cooldown must be >= 0")
    if args.hedge_threshold is not None and args.hedge_threshold <= 0:
        parser.error("--hedge-threshold must be > 0")
    if args.max_unit_attempts < 1:
        parser.error("--max-unit-attempts must be >= 1")
    try:
        endpoints = parse_endpoints(args.workers)
    except ServiceError as exc:
        parser.error(str(exc))
    catalog = WorkerCatalog(
        max_consecutive_failures=args.max_worker_failures,
        breaker_cooldown_s=args.breaker_cooldown,
    )
    for worker_host, worker_port in endpoints:
        catalog.register(worker_host, worker_port)
    retry = (
        RetryPolicy(max_attempts=args.failover_sweeps)
        if args.failover_sweeps > 1 else None
    )
    recorder = _make_recorder(args, parser)
    try:
        server = OrchestratorServer(
            catalog,
            strategy=args.strategy,
            host=args.host,
            port=args.port,
            retry=retry,
            ping_interval=args.ping_interval,
            hedge=not args.no_hedge,
            hedge_threshold=args.hedge_threshold,
            max_unit_attempts=args.max_unit_attempts,
            recorder=recorder,
        )
    except OSError as exc:
        parser.error(f"cannot bind {args.host}:{args.port}: {exc}")
    except ServiceError as exc:
        parser.error(str(exc))
    host, port = server.endpoint
    if args.ready_file:
        server.write_ready_file(args.ready_file)
    print(f"serving    : {host}:{port} (orchestrator)")
    print(f"strategy   : {args.strategy}")
    print("workers    : " + ", ".join(
        f"{w.name}={w.endpoint}" for w in catalog.workers()
    ))
    if recorder is not None:
        print(f"recorder   : {args.recorder}")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        server.wait_for_inflight(timeout=600.0)
        if recorder is not None:
            recorder.close()
    print("stopped")
    return 0


def _cmd_serve(args, parser) -> int:
    from repro.exceptions import ServiceError
    from repro.service import (
        DiskScoreCache,
        EvaluationEngine,
        FaultInjector,
        ServiceServer,
    )

    if args.role == "orchestrator":
        return _cmd_serve_orchestrator(args, parser)
    if args.workers:
        parser.error("--workers only applies to --role orchestrator")
    if args.n_jobs < 1:
        parser.error("--n-jobs must be >= 1")
    if args.max_entries is not None and args.max_entries < 1:
        parser.error("--max-entries must be >= 1")
    if args.capacity is not None and args.capacity < 1:
        parser.error("--capacity must be >= 1")
    if args.retry_after <= 0:
        parser.error("--retry-after must be > 0")
    if args.max_pool_restarts < 0:
        parser.error("--max-pool-restarts must be >= 0")
    try:
        if args.faults:
            faults = FaultInjector.from_spec(args.faults)
        else:
            faults = FaultInjector.from_env()
    except ServiceError as exc:
        parser.error(str(exc))
    disk = None
    if args.cache:
        from repro.exceptions import CampaignError

        try:
            disk = DiskScoreCache(args.cache)
        except (CampaignError, OSError) as exc:
            parser.error(str(exc))
    recorder = _make_recorder(args, parser)
    engine = EvaluationEngine(
        n_jobs=args.n_jobs,
        disk=disk,
        max_entries=args.max_entries,
        max_pool_restarts=args.max_pool_restarts,
        faults=faults,
    )
    try:
        server = ServiceServer(
            engine,
            host=args.host,
            port=args.port,
            capacity=args.capacity,
            retry_after=args.retry_after,
            faults=faults,
            recorder=recorder,
        )
    except OSError as exc:
        parser.error(f"cannot bind {args.host}:{args.port}: {exc}")
    host, port = server.endpoint
    if args.ready_file:
        server.write_ready_file(args.ready_file)
    print(f"serving    : {host}:{port}")
    print(f"cache      : {args.cache or '(memory only)'}")
    print(f"n-jobs     : {args.n_jobs}")
    print(f"capacity   : {args.capacity or '(unbounded)'}")
    if faults is not None:
        print(f"faults     : {faults!r}")
    if recorder is not None:
        print(f"recorder   : {args.recorder}")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        # A shutdown from one client must not discard another client's
        # mid-evaluation batch: dispatched requests finish and reply
        # before the process exits (idle connections don't block it).
        server.wait_for_inflight(timeout=600.0)
        engine.close()
        if recorder is not None:
            recorder.close()
    print("stopped")
    return 0


def _parse_fleet_faults(spec: str, n_workers: int) -> dict[int, str]:
    """Expand a ``fleet --faults`` value into ``{worker index: spec}``.

    Two shapes: a plain injector spec (``"drop:1"``) arms every worker
    identically, and per-index clauses (``"0=crash:1;2=hang:1:5"``) arm
    only the named workers. Each sub-spec is validated eagerly via
    :meth:`FaultInjector.from_spec`, so a bad clause fails the command
    instead of a worker at startup.
    """
    from repro.exceptions import ServiceError
    from repro.service import FaultInjector

    plans: dict[int, str] = {}
    if "=" in spec:
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            index_text, _, sub_spec = clause.partition("=")
            try:
                index = int(index_text)
            except ValueError:
                raise ServiceError(
                    f"invalid fleet fault clause {clause!r}: "
                    f"{index_text!r} is not a worker index"
                ) from None
            if not 0 <= index < n_workers:
                raise ServiceError(
                    f"invalid fleet fault clause {clause!r}: worker index "
                    f"{index} out of range for {n_workers} worker(s)"
                )
            plans[index] = sub_spec
    else:
        plans = {index: spec for index in range(n_workers)}
    for sub_spec in plans.values():
        FaultInjector.from_spec(sub_spec)  # validate eagerly
    return plans


def _cmd_fleet(args, parser) -> int:
    import tempfile

    from repro.exceptions import ServiceError
    from repro.service import (
        FleetSupervisor,
        OrchestratorServer,
        RetryPolicy,
        WorkerCatalog,
        spawn_worker,
        wait_for_ready_file,
    )

    if args.n_workers < 1:
        parser.error("--n-workers must be >= 1")
    if args.worker_n_jobs < 1:
        parser.error("--worker-n-jobs must be >= 1")
    if args.max_entries is not None and args.max_entries < 1:
        parser.error("--max-entries must be >= 1")
    if args.max_worker_failures < 1:
        parser.error("--max-worker-failures must be >= 1")
    if args.ping_interval is not None and args.ping_interval <= 0:
        parser.error("--ping-interval must be > 0")
    if args.breaker_cooldown < 0:
        parser.error("--breaker-cooldown must be >= 0")
    if args.hedge_threshold is not None and args.hedge_threshold <= 0:
        parser.error("--hedge-threshold must be > 0")
    if args.max_unit_attempts < 1:
        parser.error("--max-unit-attempts must be >= 1")
    if args.capacity is not None and args.capacity < 1:
        parser.error("--capacity must be >= 1")
    if args.max_pool_restarts is not None and args.max_pool_restarts < 0:
        parser.error("--max-pool-restarts must be >= 0")
    if args.slow_threshold is not None and args.slow_threshold <= 0:
        parser.error("--slow-threshold must be > 0")
    if args.slow_threshold is not None and not args.recorder_dir:
        parser.error("--slow-threshold requires --recorder-dir")
    if args.max_worker_restarts < 0:
        parser.error("--max-worker-restarts must be >= 0")
    if args.supervisor_interval <= 0:
        parser.error("--supervisor-interval must be > 0")
    fault_plans: dict[int, str] = {}
    if args.faults:
        try:
            fault_plans = _parse_fleet_faults(args.faults, args.n_workers)
        except ServiceError as exc:
            parser.error(str(exc))
    if args.cache_dir:
        try:
            os.makedirs(args.cache_dir, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot create --cache-dir {args.cache_dir}: {exc}")
    recorder = None
    if args.recorder_dir:
        from repro.telemetry import FlightRecorder

        try:
            os.makedirs(args.recorder_dir, exist_ok=True)
            recorder = FlightRecorder(
                os.path.join(args.recorder_dir, "orchestrator.jsonl")
            )
        except OSError as exc:
            parser.error(
                f"cannot create --recorder-dir {args.recorder_dir}: {exc}"
            )

    catalog = WorkerCatalog(
        max_consecutive_failures=args.max_worker_failures,
        breaker_cooldown_s=args.breaker_cooldown,
    )

    def worker_spawn_kwargs(index: int) -> dict:
        return dict(
            n_jobs=args.worker_n_jobs,
            max_entries=args.max_entries,
            cache=(
                os.path.join(args.cache_dir, f"worker{index}.jsonl")
                if args.cache_dir else None
            ),
            capacity=args.capacity,
            max_pool_restarts=args.max_pool_restarts,
            slow_threshold=args.slow_threshold,
            recorder=(
                os.path.join(args.recorder_dir, f"w{index}.jsonl")
                if args.recorder_dir else None
            ),
        )

    procs: dict[int, subprocess.Popen] = {}
    respawn_seq: dict[int, int] = {}
    server = None
    supervisor = None
    exit_code = 0
    # The temp dir holds the ready-file handshakes — including the ones
    # respawned workers publish mid-flight — so it lives as long as the
    # fleet does.
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        try:
            for index in range(args.n_workers):
                ready = os.path.join(tmp, f"worker{index}.json")
                procs[index] = spawn_worker(
                    ready,
                    faults=fault_plans.get(index),
                    **worker_spawn_kwargs(index),
                )
            try:
                for index in range(args.n_workers):
                    ready = os.path.join(tmp, f"worker{index}.json")
                    worker_host, worker_port = wait_for_ready_file(
                        ready,
                        timeout=args.startup_timeout,
                        process=procs[index],
                    )
                    catalog.register(
                        worker_host, worker_port,
                        name=f"w{index}", capacity=args.capacity,
                    )
            except ServiceError as exc:
                print(f"fleet startup failed: {exc}", file=sys.stderr)
                return 1
            try:
                server = OrchestratorServer(
                    catalog,
                    strategy=args.strategy,
                    host=args.host,
                    port=args.port,
                    retry=RetryPolicy(),
                    ping_interval=args.ping_interval,
                    hedge=not args.no_hedge,
                    hedge_threshold=args.hedge_threshold,
                    max_unit_attempts=args.max_unit_attempts,
                    recorder=recorder,
                )
            except OSError as exc:
                print(
                    f"cannot bind {args.host}:{args.port}: {exc}",
                    file=sys.stderr,
                )
                return 1
            if args.supervise:
                def make_respawn(index: int):
                    def respawn() -> tuple[str, int]:
                        old = procs.get(index)
                        if old is not None and old.poll() is not None:
                            old.wait()  # reap the corpse
                        info = catalog.get(f"w{index}")
                        respawn_seq[index] = respawn_seq.get(index, 0) + 1
                        ready = os.path.join(
                            tmp,
                            f"worker{index}.respawn{respawn_seq[index]}.json",
                        )
                        # Prefer the registered port so the worker's
                        # rendezvous shard flows straight back; fall back
                        # to an ephemeral port if it is still held.
                        proc = spawn_worker(
                            ready, port=info.port, **worker_spawn_kwargs(index)
                        )
                        try:
                            endpoint = wait_for_ready_file(
                                ready,
                                timeout=args.startup_timeout,
                                process=proc,
                            )
                        except ServiceError:
                            if proc.poll() is None:
                                proc.kill()
                            proc.wait()
                            ready = ready + ".ephemeral"
                            proc = spawn_worker(
                                ready, port=0, **worker_spawn_kwargs(index)
                            )
                            endpoint = wait_for_ready_file(
                                ready,
                                timeout=args.startup_timeout,
                                process=proc,
                            )
                        procs[index] = proc
                        return endpoint

                    return respawn

                supervisor = FleetSupervisor(
                    catalog,
                    check_interval=args.supervisor_interval,
                    max_restarts=args.max_worker_restarts,
                )
                for index in range(args.n_workers):
                    supervisor.watch(
                        f"w{index}",
                        is_alive=lambda i=index: procs[i].poll() is None,
                        respawn=make_respawn(index),
                    )
                server.supervisor = supervisor
                supervisor.start()
            host, port = server.endpoint
            if args.ready_file:
                server.write_ready_file(args.ready_file)
            print(f"serving    : {host}:{port} (orchestrator)")
            print(f"strategy   : {args.strategy}")
            print("workers    : " + ", ".join(
                f"{w.name}={w.endpoint}" for w in catalog.workers()
            ))
            if args.supervise:
                print(
                    f"supervisor : every {args.supervisor_interval}s, "
                    f"budget {args.max_worker_restarts} restarts/worker"
                )
            if args.recorder_dir:
                print(f"recorders  : {args.recorder_dir}")
            sys.stdout.flush()
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                pass
        finally:
            if supervisor is not None:
                supervisor.stop()
            if server is not None:
                server.server_close()
                server.wait_for_inflight(timeout=600.0)
                # The fleet owns its workers: ask each daemon to stop,
                # then reap the subprocesses (hard-kill only the
                # unresponsive).
                server.stop_workers()
            if recorder is not None:
                recorder.close()
            for proc in procs.values():
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
                    exit_code = 1
    print("stopped")
    return exit_code


def _service_client(args):
    from repro.service import RetryPolicy, ServiceClient

    retries = getattr(args, "retries", 1)
    return ServiceClient(
        args.host,
        args.port,
        connect_timeout=args.timeout,
        timeout=getattr(args, "request_timeout", None),
        retry=RetryPolicy(max_attempts=retries) if retries > 1 else None,
    )


def _cmd_ping(args, parser) -> int:
    from repro.exceptions import ServiceError

    try:
        with _service_client(args) as client:
            reply = client.ping()
    except ServiceError as exc:
        print(f"ping failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # Pure-JSON mode: nothing else on stdout, pipeable to jq.
        payload = {
            "version": reply["version"],
            "uptime_s": reply["uptime_s"],
            "in_flight": reply["in_flight"],
            "counters": reply["counters"],
        }
        for key in ("role", "strategy", "workers"):
            if key in reply:
                payload[key] = reply[key]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"service    : {args.host}:{args.port}")
    print(f"version    : {reply['version']}")
    uptime = reply.get("uptime_s")
    if uptime is not None:
        print(f"uptime     : {uptime:.1f}s, {reply.get('in_flight')} in flight")
    counters = reply["counters"]
    if counters is None and reply.get("role") == "orchestrator":
        # An orchestrator has no engine of its own: its ping carries the
        # fleet summary instead of evaluator counters ('stats' has the
        # per-worker breakdown).
        workers = reply.get("workers") or {}
        print(f"role       : orchestrator ({reply.get('strategy')})")
        print(
            f"workers    : {workers.get('live', 0)}/{workers.get('total', 0)} "
            "live"
        )
        return 0
    totals = counters["requests"]
    cache = counters["structure_cache"]
    queue = counters["queue"]
    print(
        f"requests   : {totals['batches']} batches, {totals['units']} units, "
        f"{totals['failures']} failures"
    )
    print(
        f"evaluator  : {totals['executed']} runs, "
        f"{totals['disk_hits']} disk hits, {totals['memo_hits']} memo hits, "
        f"{queue['coalesced']} coalesced"
    )
    print(
        f"memo       : {cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['evictions']} evictions "
        f"({cache['scores']} scores, {cache['nets']} nets, "
        f"{cache['reachability']} reach)"
    )
    disk = counters.get("disk_cache")
    if disk:
        print(
            f"disk cache : {disk['entries']} entries, {disk['hits']} hits, "
            f"{disk['dropped_lines']} dropped lines"
        )
    pool = counters.get("pool")
    if pool:
        degraded = ", DEGRADED to serial" if pool.get("degraded") else ""
        print(
            f"pool       : {pool['n_jobs']} jobs, "
            f"{pool['restarts']}/{pool['max_restarts']} restarts{degraded}"
        )
    return 0


def _render_fleet_stats(stats: dict) -> None:
    """Per-worker table of an orchestrator's aggregated ``stats`` reply."""
    orch = stats.get("orchestrator") or {}
    totals = stats.get("totals") or {}
    cache = stats.get("structure_cache") or {}
    print(
        f"orchestrator: strategy={stats.get('strategy')}, "
        f"{orch.get('requests', 0)} requests, {orch.get('batches', 0)} "
        f"batches, {orch.get('units', 0)} units, "
        f"{orch.get('failovers', 0)} failovers, "
        f"{orch.get('hedges_sent', 0)} hedges sent "
        f"({orch.get('hedges_won', 0)} won), "
        f"{orch.get('quarantined', 0)} quarantined"
    )
    supervisor = stats.get("supervisor")
    if supervisor:
        abandoned = sum(
            1 for w in supervisor.get("workers") or [] if w.get("abandoned")
        )
        print(
            f"supervisor  : {supervisor.get('respawns', 0)} respawns "
            f"(budget {supervisor.get('max_restarts', 0)}/worker, "
            f"{abandoned} abandoned)"
        )
    print(
        f"fleet totals: {totals.get('units', 0)} units, "
        f"{totals.get('executed', 0)} executed, "
        f"{totals.get('disk_hits', 0)} disk hits, "
        f"{totals.get('memo_hits', 0)} memo hits, "
        f"{totals.get('failures', 0)} failures"
    )
    print(
        f"structure cache: {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses "
        f"(hit rate {cache.get('hit_rate', 0.0):.1%}, "
        f"{cache.get('evictions', 0)} evictions)"
    )
    print(
        f"{'worker':8s} {'endpoint':22s} {'breaker':9s} {'inflt':>5s} "
        f"{'routed':>6s} {'failov':>6s} {'trips':>5s} {'units':>8s} "
        f"{'executed':>8s}"
    )
    for row in stats.get("workers") or []:
        reported = row.get("reported") or {}
        requests = reported.get("requests") or {}
        units = requests.get("units", "-")
        executed = requests.get("executed", "-")
        breaker = (row.get("breaker") or {}).get("state") or (
            "closed" if row.get("live") else "open"
        )
        print(
            f"{row.get('name', '?'):8s} {row.get('endpoint', '?'):22s} "
            f"{breaker:9s} "
            f"{row.get('in_flight', 0):>5d} {row.get('routed', 0):>6d} "
            f"{row.get('failovers', 0):>6d} {row.get('evictions', 0):>5d} "
            f"{units!s:>8s} {executed!s:>8s}"
        )


def _cmd_stats(args, parser) -> int:
    import time

    from repro.exceptions import ServiceError

    if args.interval <= 0:
        parser.error("--interval must be > 0")
    if args.count is not None and args.count < 1:
        parser.error("--count must be >= 1")
    rounds = (args.count or (2 ** 31)) if args.watch else 1
    for round_index in range(rounds):
        if round_index:
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                return 0
            print()
        try:
            with _service_client(args) as client:
                stats = client.stats()
        except ServiceError as exc:
            print(f"stats failed: {exc}", file=sys.stderr)
            return 1
        if stats.get("role") == "orchestrator" and not args.json:
            # The fleet view gets an operator table; --json restores the
            # raw aggregate for jq/grep consumers.
            _render_fleet_stats(stats)
        else:
            # Worker daemons always dump pure JSON: this is the
            # operator/CI introspection surface, meant for jq/grep
            # (admission depth, shed count, pool restarts).
            print(json.dumps(stats, indent=2, sort_keys=True))
        sys.stdout.flush()
    return 0


def _cmd_metrics(args, parser) -> int:
    from repro.exceptions import ServiceError

    try:
        with _service_client(args) as client:
            reply = client.metrics()
    except ServiceError as exc:
        print(f"metrics failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # Pure-JSON mode: the merged snapshot, pipeable to jq.
        payload = {
            "role": reply.get("role"),
            "version": reply.get("version"),
            "metrics": reply.get("metrics") or {},
        }
        if "workers_reporting" in reply:
            payload["workers_reporting"] = reply["workers_reporting"]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    # Default: Prometheus text exposition, scrapeable as-is.
    print(reply.get("exposition", ""), end="")
    return 0


def _cmd_bench_trajectory(args, parser) -> int:
    from repro.perf import load_trajectory, render_trajectory

    try:
        entries = load_trajectory(args.dir, extra=tuple(args.report or ()))
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    if not entries:
        parser.error(f"no BENCH_PR*.json reports found in {args.dir}")
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    print(render_trajectory(entries))
    return 0


def _cmd_bench_compare(args, parser) -> int:
    from repro.perf import compare_reports, load_report, render_comparison

    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    try:
        baseline = load_report(args.baseline)
        new = load_report(args.new)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    result = compare_reports(baseline, new, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_comparison(result))
    return 0 if result["ok"] else 1


def _render_top(stats: dict, metrics: dict, prof: dict, *, top_k: int) -> None:
    """One dashboard frame: totals, workers, latency, hottest phases."""
    from repro.telemetry.profile import flatten_phases

    role = stats.get("role", "worker")
    uptime = stats.get("uptime_s")
    line = f"repro top — {role}"
    if isinstance(uptime, (int, float)):
        line += f", up {uptime:.0f}s"
    line += f", in-flight {stats.get('in_flight', 0)}"
    print(line)

    if role == "orchestrator":
        totals = stats.get("totals") or {}
        cache = stats.get("structure_cache") or {}
        hit_rate = cache.get("hit_rate", 0.0)
        orch = stats.get("orchestrator") or {}
        supervisor = stats.get("supervisor") or {}
        print(
            f"fleet: {totals.get('units', 0)} units, "
            f"{totals.get('executed', 0)} executed, "
            f"{totals.get('disk_hits', 0)} disk hits, "
            f"{totals.get('memo_hits', 0)} memo hits, "
            f"{totals.get('failures', 0)} failures"
        )
        print(
            f"health: {orch.get('failovers', 0)} failovers, "
            f"{orch.get('hedges_sent', 0)} hedges sent "
            f"({orch.get('hedges_won', 0)} won), "
            f"{orch.get('quarantined', 0)} quarantined, "
            f"{supervisor.get('respawns', 0)} respawns"
        )
        print(
            f"cache: hit rate {hit_rate:.1%} ({cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('evictions', 0)} evictions)"
        )
        rows = stats.get("workers") or []
        if rows:
            print(
                f"{'worker':8s} {'breaker':9s} {'inflt':>5s} {'routed':>6s} "
                f"{'failov':>6s} {'units':>8s} {'executed':>8s}"
            )
        for row in rows:
            reported = row.get("reported") or {}
            requests = reported.get("requests") or {}
            breaker = (row.get("breaker") or {}).get("state") or (
                "closed" if row.get("live") else "open"
            )
            print(
                f"{row.get('name', '?'):8s} "
                f"{breaker:9s} "
                f"{row.get('in_flight', 0):>5d} {row.get('routed', 0):>6d} "
                f"{row.get('failovers', 0):>6d} "
                f"{requests.get('units', '-')!s:>8s} "
                f"{requests.get('executed', '-')!s:>8s}"
            )
    else:
        counters = stats.get("counters") or {}
        requests = counters.get("requests") or {}
        cache = counters.get("structure_cache") or {}
        cache_requests = cache.get("requests", 0)
        hit_rate = cache.get("hits", 0) / cache_requests if cache_requests else 0.0
        print(
            f"worker: {requests.get('units', 0)} units, "
            f"{requests.get('executed', 0)} executed, "
            f"{requests.get('disk_hits', 0)} disk hits, "
            f"{requests.get('memo_hits', 0)} memo hits, "
            f"{requests.get('failures', 0)} failures, "
            f"shed {stats.get('shed', 0)}"
        )
        print(
            f"cache: hit rate {hit_rate:.1%} ({cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('evictions', 0)} evictions)"
        )

    shown_latency = False
    for name in (
        "repro_orchestrator_request_seconds",
        "repro_engine_batch_seconds",
    ):
        entry = metrics.get(name)
        if not isinstance(entry, dict) or not entry.get("count"):
            continue
        if not shown_latency:
            print()
            shown_latency = True
        print(
            f"{name}: n={entry['count']} "
            f"p50={entry.get('p50', 0.0) * 1e3:.1f}ms "
            f"p95={entry.get('p95', 0.0) * 1e3:.1f}ms "
            f"p99={entry.get('p99', 0.0) * 1e3:.1f}ms"
        )

    rows = list(flatten_phases((prof.get("profile") or {}).get("phases") or {}))
    rows.extend(
        (f"orch/{path}", node)
        for path, node in flatten_phases(
            (prof.get("orchestrator") or {}).get("phases") or {}
        )
    )
    rows.sort(key=lambda r: (-r[1].get("self_s", 0.0), r[0]))
    if rows:
        print()
        print(
            f"{'hottest phases':34s} {'calls':>8s} {'total_s':>11s} "
            f"{'self_s':>11s}"
        )
        for path, node in rows[:top_k]:
            print(
                f"{path:34s} {node.get('calls', 0):>8d} "
                f"{node.get('total_s', 0.0):>11.6f} "
                f"{node.get('self_s', 0.0):>11.6f}"
            )


def _cmd_top(args, parser) -> int:
    import time

    from repro.exceptions import ServiceError

    if args.interval <= 0:
        parser.error("--interval must be > 0")
    if args.count is not None and args.count < 1:
        parser.error("--count must be >= 1")
    if args.top < 1:
        parser.error("--top must be >= 1")
    rounds = args.count if args.count is not None else (2 ** 31)
    for round_index in range(rounds):
        if round_index:
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                return 0
        try:
            with _service_client(args) as client:
                stats = client.stats()
                metrics = client.metrics()
                prof = client.profile()
        except ServiceError as exc:
            print(f"top failed: {exc}", file=sys.stderr)
            return 1
        if round_index:
            if args.no_clear:
                print()
            else:
                # ANSI clear + home: refresh in place like top(1).
                print("\x1b[2J\x1b[H", end="")
        _render_top(stats, metrics.get("metrics") or {}, prof, top_k=args.top)
        sys.stdout.flush()
    return 0


def _cmd_profile(args, parser) -> int:
    from repro.exceptions import ServiceError
    from repro.telemetry.profile import render_profile

    try:
        with _service_client(args) as client:
            reply = client.profile()
    except ServiceError as exc:
        print(f"profile failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # Pure-JSON mode: the merged phase tree, pipeable to jq.
        payload = {
            "role": reply.get("role"),
            "version": reply.get("version"),
            "profile": reply.get("profile") or {},
        }
        if "workers_reporting" in reply:
            payload["workers_reporting"] = reply["workers_reporting"]
        if "orchestrator" in reply:
            payload["orchestrator"] = reply["orchestrator"]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    profile = reply.get("profile") or {}
    phases = profile.get("phases") or {}
    if reply.get("role") == "orchestrator":
        print(
            f"fleet profile "
            f"({reply.get('workers_reporting', 0)} worker(s) reporting)"
        )
    if phases:
        print(render_profile(phases))
    elif profile.get("enabled", True):
        print("no phases recorded yet")
    else:
        print("profiler disabled")
    orch_phases = (reply.get("orchestrator") or {}).get("phases") or {}
    if orch_phases:
        print()
        print("orchestrator:")
        print(render_profile(orch_phases))
    return 0


def _trace_paths(args, parser) -> list:
    from pathlib import Path

    from repro.telemetry.recorder import recorder_files

    paths: list[Path] = [Path(p) for p in (args.recorder or [])]
    if args.recorder_dir:
        directory = Path(args.recorder_dir)
        if not directory.is_dir():
            parser.error(f"--recorder-dir {args.recorder_dir} is not a directory")
        paths.extend(recorder_files(directory))
    if not paths:
        parser.error("pass --recorder FILE (repeatable) and/or --recorder-dir DIR")
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(
            "recorder file(s) not found: " + ", ".join(str(p) for p in missing)
        )
    return paths


def _cmd_trace(args, parser) -> int:
    from repro.telemetry import find_trace

    events = find_trace(args.request_id, _trace_paths(args, parser))
    if args.json:
        print(json.dumps(
            [{"file": name, **event} for name, event in events],
            indent=2, sort_keys=True,
        ))
        return 0 if events else 1
    if not events:
        print(f"request {args.request_id}: no recorder events found")
        return 1
    print(f"request {args.request_id}: {len(events)} event(s)")
    for name, event in events:
        node = event.get("node", "?")
        kind = event.get("kind", "?")
        line = f"  {name:16s} {node:12s} {kind:8s}"
        if kind == "hop":
            status = event.get("status", "?")
            line += f" -> {event.get('worker', '?')} [{status}]"
            if event.get("units") is not None:
                line += f" units={event['units']}"
            if event.get("error"):
                line += f" error={event['error']}"
        else:
            op = event.get("op")
            if op:
                line += f" op={op}"
            if event.get("ok") is False:
                line += " FAILED"
            if event.get("slow"):
                line += " SLOW"
        spans = event.get("spans") or {}
        if spans:
            line += "  " + " ".join(
                f"{key}={value * 1e3:.2f}ms"
                for key, value in sorted(spans.items())
                if isinstance(value, (int, float))
            )
        elif event.get("duration_s") is not None:
            line += f"  total_s={event['duration_s'] * 1e3:.2f}ms"
        print(line)
    return 0


def _cmd_submit(args, parser) -> int:
    from repro.campaign import expand, unit_task_payload
    from repro.exceptions import ServiceError

    single = bool(args.system)
    if single == bool(args.preset or args.spec):
        parser.error("pass either --system or one of --preset/--spec")
    if single and args.seed is not None:
        # A seed overrides a campaign spec's base seed; a bare system
        # has none to override — refusing beats silently ignoring it.
        parser.error("--seed only applies to --preset/--spec submissions")
    if not single and (args.solver is not None or args.model is not None):
        # Symmetrically: campaign specs name their own solvers/models.
        parser.error(
            "--solver/--model only apply to --system submissions; "
            "a campaign spec carries its own"
        )
    if single:
        tasks = [
            {
                "system": {
                    "kind": "named", "params": {"name": args.system},
                },
                "solver": args.solver or "deterministic",
                "model": args.model or "overlap",
                "options": {},
            }
        ]
        labels = [args.system]
    else:
        spec = _load_campaign_spec(args, parser)
        units = expand(spec)
        tasks = [unit_task_payload(u) for u in units]
        labels = [
            f"{u.scenario} "
            + " ".join(f"{k}={v}" for k, v in sorted(u.params.items()))
            for u in units
        ]
    # Chunked like the --via-service runner, so an arbitrarily large
    # spec never hits the protocol's per-frame ceiling.
    chunk_size = _SUBMIT_CHUNK
    values: list = []
    failures: list[dict] = []
    stats: dict = {}
    try:
        with _service_client(args) as client:
            for start in range(0, len(tasks), chunk_size):
                vals, fails, chunk_stats = client.evaluate_batch(
                    tasks[start:start + chunk_size]
                )
                values.extend(vals)
                failures.extend(
                    {**f, "index": f.get("index", 0) + start} for f in fails
                )
                for key, count in chunk_stats.items():
                    stats[key] = stats.get(key, 0) + count
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    failed = {f["index"]: f for f in failures}
    print(f"service    : {args.host}:{args.port}")
    print(f"units      : {stats.get('units', len(tasks))}")
    print(f"executed   : {stats.get('executed', 0)}")
    print(
        f"cache hits : {stats.get('disk_hits', 0) + stats.get('memo_hits', 0)} "
        f"({stats.get('disk_hits', 0)} disk + {stats.get('memo_hits', 0)} memo)"
    )
    print(f"coalesced  : {stats.get('coalesced', 0)}")
    print(f"failures   : {len(failures)}")
    for i, (label, value) in enumerate(zip(labels, values)):
        if i in failed:
            f = failed[i]
            print(f"  {label} : FAILED ({f.get('error')}: {f.get('message')})")
        else:
            print(f"  {label} : {value:.6g}")
    return 1 if failures else 0


def _cmd_shutdown(args, parser) -> int:
    from repro.exceptions import ServiceError

    try:
        with _service_client(args) as client:
            client.shutdown()
    except ServiceError as exc:
        print(f"shutdown failed: {exc}", file=sys.stderr)
        return 1
    print(f"service at {args.host}:{args.port} stopped")
    return 0


def _load_campaign_spec(args, parser):
    """Resolve --preset / --spec (exactly one) into a CampaignSpec."""
    from repro.campaign import CampaignSpec, get_preset
    from repro.exceptions import CampaignError

    if bool(args.preset) == bool(args.spec):
        parser.error("pass exactly one of --preset or --spec")
    try:
        if args.preset:
            spec = get_preset(args.preset)
        else:
            try:
                with open(args.spec, encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                parser.error(f"cannot read {args.spec}: {exc}")
            spec = CampaignSpec.from_json(text)
    except CampaignError as exc:
        parser.error(str(exc))
    if getattr(args, "seed", None) is not None:
        spec.seed = args.seed
    return spec


def _cmd_campaign(args, parser) -> int:
    from repro.campaign import (
        ResultStore,
        campaign_report,
        campaign_status,
        run_campaign,
    )
    from repro.exceptions import CampaignError

    try:
        store = ResultStore(args.store)
    except (CampaignError, OSError) as exc:
        parser.error(str(exc))

    if args.campaign_command == "report":
        # run/status legitimately start from a missing store; report of
        # one can only be a typo'd path.
        if not store.path.exists():
            parser.error(f"store {store.path} does not exist")
        results = campaign_report(store, campaign=args.campaign)
        payload = [r.to_dict() for r in results]
        if args.json == "-":
            # Pure-JSON mode: nothing else on stdout, pipeable to jq.
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not results:
            print(f"store {store.path} holds no campaign results")
        for result in results:
            print(result.render())
            print()
        if args.json:
            # Written even when empty, so scripted consumers always
            # find the file (an empty array, not a missing path).
            try:
                with open(args.json, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                parser.error(f"cannot write {args.json}: {exc}")
            print(f"wrote {args.json}")
        return 0

    spec = _load_campaign_spec(args, parser)

    if args.campaign_command == "status":
        try:
            rows = campaign_status(spec, store)
        except CampaignError as exc:
            parser.error(str(exc))
        remaining = 0
        for name, done, total in rows:
            remaining += total - done
            print(f"{name:32s} {done}/{total} done")
        print(f"remaining  : {remaining}")
        return 0 if remaining == 0 else 1

    # campaign run
    if args.n_jobs < 1:
        parser.error("--n-jobs must be >= 1")
    if args.record_request_ids and not args.via_service:
        # Trace ids are minted by the service client; an in-process run
        # has none to record.
        parser.error("--record-request-ids requires --via-service")
    client = None
    if args.via_service:
        from repro.exceptions import ServiceError
        from repro.service import RetryPolicy, ServiceClient, parse_endpoint

        if args.retries < 1:
            parser.error("--retries must be >= 1")
        try:
            host, port = parse_endpoint(args.via_service)
        except ServiceError as exc:
            parser.error(str(exc))
        client = ServiceClient(
            host,
            port,
            connect_timeout=args.service_timeout,
            timeout=args.request_timeout,
            retry=(
                RetryPolicy(max_attempts=args.retries)
                if args.retries > 1 else None
            ),
        )
    try:
        summary = run_campaign(
            spec,
            store,
            n_jobs=args.n_jobs,
            resume=args.resume,
            client=client,
            record_request_ids=args.record_request_ids,
        )
    except CampaignError as exc:
        parser.error(str(exc))
    finally:
        if client is not None:
            client.close()
    print(summary.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro._version import __version__
    from repro.experiments import experiment_names

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the paper (Section 7).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log INFO from the repro.* loggers; repeat for DEBUG",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON object per log line instead of plain text",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments and campaign presets")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", choices=[*experiment_names(), "all"])
    runp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; <1 shrinks dataset counts",
    )

    from repro.evaluate import available_solvers

    solvep = sub.add_parser(
        "solve", help="score a named example system with a registered solver"
    )
    solvep.add_argument("system", choices=_system_choices())
    solvep.add_argument(
        "--solver",
        choices=available_solvers(),
        default="deterministic",
        help="registered solver name (default: %(default)s)",
    )
    solvep.add_argument(
        "--model", choices=("overlap", "strict"), default="overlap"
    )
    solvep.add_argument(
        "--semantics", choices=("unbounded", "bottleneck"), default="unbounded"
    )
    solvep.add_argument("--max-states", type=int, default=200_000)
    solvep.add_argument(
        "--n-datasets", type=int, default=1_000,
        help="simulation solver: data sets per run (default: %(default)s)",
    )
    solvep.add_argument(
        "--sim-seed", type=int, default=0,
        help="simulation solver: base seed (default: %(default)s)",
    )

    searchp = sub.add_parser(
        "search",
        help="mapping search (multi-start hill climb) scored by a named solver",
    )
    searchp.add_argument(
        "--solver",
        choices=available_solvers(),
        default="deterministic",
        help="scoring solver (default: %(default)s)",
    )
    searchp.add_argument("--stages", type=int, default=3)
    searchp.add_argument("--processors", type=int, default=9)
    searchp.add_argument("--restarts", type=int, default=5)
    searchp.add_argument("--seed", type=int, default=0)
    searchp.add_argument(
        "--n-jobs", type=int, default=1,
        help="workers for batched candidate scoring (default: serial)",
    )

    from repro.campaign import available_presets

    campp = sub.add_parser(
        "campaign",
        help="declarative scenario sweeps with a persistent, resumable store",
    )
    csub = campp.add_subparsers(dest="campaign_command", required=True)
    crun = csub.add_parser(
        "run", help="execute every pending unit of a campaign into a store"
    )
    cstatus = csub.add_parser(
        "status",
        help="per-scenario completion of a store against a spec "
        "(exits 1 while units remain, 0 when complete)",
    )
    creport = csub.add_parser(
        "report", help="render per-scenario result tables from a store"
    )
    for sp in (crun, cstatus):
        sp.add_argument(
            "--preset",
            choices=available_presets(),
            help="a ready-made campaign spec",
        )
        sp.add_argument(
            "--spec", help="path of a campaign spec JSON file", metavar="FILE"
        )
        sp.add_argument(
            "--seed", type=int, default=None,
            help="override the spec's base seed",
        )
    for sp in (crun, cstatus, creport):
        sp.add_argument(
            "--store", required=True,
            help="path of the JSONL result store", metavar="FILE",
        )
    crun.add_argument(
        "--n-jobs", type=int, default=1,
        help="workers for unit evaluation (default: serial; results are "
        "bit-identical either way)",
    )
    crun.add_argument(
        "--resume",
        action="store_true",
        help="continue a populated store, skipping completed units",
    )
    crun.add_argument(
        "--via-service", default=None, metavar="HOST:PORT",
        help="score units through a running evaluation service "
        "(repro.cli serve) instead of this process; the store stays "
        "byte-identical",
    )
    crun.add_argument(
        "--service-timeout", type=float, default=10.0,
        help="connect timeout for --via-service in seconds; established "
        "chunks wait however long evaluation takes unless "
        "--request-timeout caps them (default: %(default)s)",
    )
    crun.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-chunk deadline for --via-service in seconds "
        "(default: wait however long evaluation takes)",
    )
    crun.add_argument(
        "--retries", type=int, default=3,
        help="attempts per --via-service chunk for transient faults "
        "(timeouts, dropped connections, overload); 1 disables retries "
        "(default: %(default)s)",
    )
    crun.add_argument(
        "--record-request-ids",
        action="store_true",
        help="stamp each --via-service store row with the trace id of the "
        "chunk that produced it (joinable against 'repro.cli trace'; "
        "off by default so stores stay byte-identical to in-process runs)",
    )
    creport.add_argument(
        "--campaign", default=None,
        help="only report records of this campaign name",
    )
    creport.add_argument(
        "--json", default=None, metavar="FILE",
        help="also dump the report tables as JSON ('-' for stdout)",
    )

    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

    servep = sub.add_parser(
        "serve",
        help="run the evaluation service until a shutdown request arrives",
    )
    servep.add_argument("--host", default=DEFAULT_HOST)
    servep.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="TCP port to bind (0 picks an ephemeral one; default: "
        "%(default)s)",
    )
    servep.add_argument(
        "--cache", default=None, metavar="FILE",
        help="tier-2 persistent score cache (JSONL); restartable servers "
        "answer repeat queries from it without recomputation",
    )
    servep.add_argument(
        "--n-jobs", type=int, default=1,
        help="persistent worker processes for batch fan-out "
        "(default: serial)",
    )
    servep.add_argument(
        "--max-entries", type=int, default=None,
        help="LRU bound per structure-cache map (default: unbounded)",
    )
    servep.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write {host, port, pid} JSON here once listening "
        "(for scripts that launched the server in the background)",
    )
    servep.add_argument(
        "--capacity", type=int, default=None,
        help="max concurrently dispatched work requests; arrivals past it "
        "are shed instantly with a structured 'overloaded' reply "
        "(default: unbounded)",
    )
    servep.add_argument(
        "--retry-after", type=float, default=1.0,
        help="back-off hint in seconds carried by shed replies "
        "(default: %(default)s)",
    )
    servep.add_argument(
        "--max-pool-restarts", type=int, default=3,
        help="worker-pool rebuilds after crashes before the engine "
        "degrades to in-process serial evaluation (default: %(default)s)",
    )
    servep.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec, e.g. 'drop:2,crash:1,delay:1:0.5' "
        "(chaos testing; default: the REPRO_FAULTS environment variable)",
    )
    servep.add_argument(
        "--recorder", default=None, metavar="FILE",
        help="flight-recorder JSONL file: one event per traced request "
        "('repro.cli trace' joins these across a fleet; default: off)",
    )
    servep.add_argument(
        "--recorder-max-bytes", type=int, default=16_000_000,
        help="rotate the recorder file past this size "
        "(default: %(default)s)",
    )
    servep.add_argument(
        "--slow-threshold", type=float, default=None, metavar="SECONDS",
        help="recorder events at least this slow are marked and logged "
        "at WARNING (default: off; requires --recorder)",
    )

    from repro.service.routing import available_strategies

    servep.add_argument(
        "--role", choices=("worker", "orchestrator"), default="worker",
        help="worker: evaluate requests in this process (the default); "
        "orchestrator: forward them across a fleet named by --workers",
    )
    servep.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="comma-separated worker endpoints for --role orchestrator",
    )
    fleet_tuning = [
        (
            "--strategy",
            dict(
                choices=available_strategies(),
                default="fingerprint_affinity",
                help="how the orchestrator routes requests to workers "
                "(default: %(default)s)",
            ),
        ),
        (
            "--ping-interval",
            dict(
                type=float, default=2.0, metavar="SECONDS",
                help="liveness-ping period; failed workers are evicted "
                "from the rotation, recovered ones revived "
                "(default: %(default)s)",
            ),
        ),
        (
            "--max-worker-failures",
            dict(
                type=int, default=3, metavar="N",
                help="consecutive failures before a worker's circuit "
                "breaker trips (default: %(default)s)",
            ),
        ),
        (
            "--breaker-cooldown",
            dict(
                type=float, default=5.0, metavar="SECONDS",
                help="cooldown before a tripped worker gets its single "
                "half-open probe; doubles per consecutive trip "
                "(default: %(default)s)",
            ),
        ),
        (
            "--hedge-threshold",
            dict(
                type=float, default=None, metavar="SECONDS",
                help="fixed latency past which a pending sub-batch is "
                "speculatively re-dispatched to the next-ranked live "
                "worker, first reply winning (default: derived from the "
                "shard-latency histogram's p95)",
            ),
        ),
        (
            "--no-hedge",
            dict(
                action="store_true",
                help="disable hedged dispatch entirely",
            ),
        ),
        (
            "--max-unit-attempts",
            dict(
                type=int, default=3, metavar="N",
                help="distinct workers a unit may fail on before it is "
                "quarantined as a structured failure instead of being "
                "re-dispatched forever (default: %(default)s)",
            ),
        ),
    ]
    for flag, options in fleet_tuning:
        servep.add_argument(flag, **options)
    servep.add_argument(
        "--failover-sweeps", type=int, default=3,
        help="full passes over the failover ranking before the "
        "orchestrator reports a request as failed (default: %(default)s)",
    )

    fleetp = sub.add_parser(
        "fleet",
        help="spawn N worker daemons plus an orchestrator fronting them "
        "(one endpoint, runs until shutdown)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "flag routing — per-worker vs orchestrator:\n"
            "  worker-level (applied to every spawned 'serve' daemon):\n"
            "    --worker-n-jobs, --max-entries, --cache-dir, --capacity,\n"
            "    --max-pool-restarts, --slow-threshold, --faults\n"
            "  orchestrator-level (routing, liveness and repair policy):\n"
            "    --strategy, --ping-interval, --max-worker-failures,\n"
            "    --breaker-cooldown, --hedge-threshold, --no-hedge,\n"
            "    --max-unit-attempts, --supervise, --max-worker-restarts,\n"
            "    --supervisor-interval\n"
            "  --faults takes one spec for every worker ('drop:1') or\n"
            "  per-index clauses ('0=crash:1;2=hang:1:5'); --supervise\n"
            "  respawns dead workers on their registered ports (bounded\n"
            "  budget, exponential backoff) and re-announces them for a\n"
            "  half-open breaker probe."
        ),
    )
    fleetp.add_argument(
        "--n-workers", type=int, default=2,
        help="worker daemons to spawn (default: %(default)s)",
    )
    fleetp.add_argument("--host", default=DEFAULT_HOST)
    fleetp.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="orchestrator TCP port (0 picks an ephemeral one; workers "
        "always bind ephemeral ports; default: %(default)s)",
    )
    for flag, options in fleet_tuning:
        fleetp.add_argument(flag, **options)
    fleetp.add_argument(
        "--worker-n-jobs", type=int, default=1,
        help="evaluation processes per worker (default: serial)",
    )
    fleetp.add_argument(
        "--max-entries", type=int, default=None,
        help="LRU bound per worker structure-cache map "
        "(default: unbounded)",
    )
    fleetp.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory for per-worker persistent score caches "
        "(worker<k>.jsonl; default: memory only)",
    )
    fleetp.add_argument(
        "--recorder-dir", default=None, metavar="DIR",
        help="directory for per-node flight recorders (w<k>.jsonl per "
        "worker plus orchestrator.jsonl, joinable on request_id via "
        "'repro.cli trace --recorder-dir DIR'; default: off)",
    )
    fleetp.add_argument(
        "--ready-file", default=None, metavar="FILE",
        help="write the orchestrator's {host, port, pid} JSON here once "
        "the whole fleet is up",
    )
    fleetp.add_argument(
        "--startup-timeout", type=float, default=30.0,
        help="seconds to wait for each worker's ready file "
        "(default: %(default)s)",
    )
    fleetp.add_argument(
        "--capacity", type=int, default=None,
        help="per-worker admission bound: max concurrently dispatched "
        "work requests on each spawned daemon (default: unbounded)",
    )
    fleetp.add_argument(
        "--max-pool-restarts", type=int, default=None,
        help="per-worker pool rebuilds after crashes before that worker "
        "degrades to serial evaluation (default: the daemon's own "
        "default)",
    )
    fleetp.add_argument(
        "--slow-threshold", type=float, default=None, metavar="SECONDS",
        help="per-worker slow-request mark for the flight recorders "
        "(requires --recorder-dir; default: off)",
    )
    fleetp.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault injection on the spawned workers: one spec for all "
        "('drop:1') or per-index clauses ('0=crash:1;2=hang:1:5'; "
        "chaos testing; default: none)",
    )
    fleetp.add_argument(
        "--supervise", action="store_true",
        help="watch the spawned workers and respawn dead ones on their "
        "registered endpoints (bounded restart budget, exponential "
        "backoff), re-announcing them to the catalog for a half-open "
        "breaker probe (default: off)",
    )
    fleetp.add_argument(
        "--max-worker-restarts", type=int, default=3, metavar="N",
        help="respawns each supervised worker may consume before it is "
        "abandoned (default: %(default)s)",
    )
    fleetp.add_argument(
        "--supervisor-interval", type=float, default=1.0, metavar="SECONDS",
        help="supervisor health-check cadence (default: %(default)s)",
    )

    pingp = sub.add_parser(
        "ping",
        help="probe a running service (exit 0: alive, 1: unreachable)",
    )
    statsp = sub.add_parser(
        "stats",
        help="dump a running service's admission/shedding/pool statistics "
        "as JSON (exit 0: alive, 1: unreachable)",
    )
    metricsp = sub.add_parser(
        "metrics",
        help="scrape a running service's metrics registry (Prometheus "
        "text by default; orchestrators merge the whole fleet's "
        "histograms; exit 0: alive, 1: unreachable)",
    )
    profilep = sub.add_parser(
        "profile",
        help="dump a running service's per-phase cost-attribution tree "
        "(orchestrators merge the whole fleet's phase trees; "
        "exit 0: alive, 1: unreachable)",
    )
    topp = sub.add_parser(
        "top",
        help="live fleet dashboard: totals, per-worker rows, cache hit "
        "rates, latency percentiles and the hottest phases, refreshed "
        "in place (exit 0: alive, 1: unreachable)",
    )
    submitp = sub.add_parser(
        "submit",
        help="submit work to a running service "
        "(exit 0: all scored, 1: any failure)",
    )
    shutdownp = sub.add_parser(
        "shutdown", help="stop a running service cleanly"
    )
    for sp in (pingp, statsp, metricsp, profilep, topp, submitp, shutdownp):
        sp.add_argument("--host", default=DEFAULT_HOST)
        sp.add_argument("--port", type=int, default=DEFAULT_PORT)
        sp.add_argument(
            "--timeout", type=float, default=10.0,
            help="connect timeout in seconds; established requests wait "
            "for the server however long the batch takes unless "
            "--request-timeout caps them (default: %(default)s)",
        )
        sp.add_argument(
            "--request-timeout", type=float, default=None,
            help="per-request deadline in seconds; a hung server raises "
            "ServiceTimeout at the deadline "
            "(default: wait however long evaluation takes)",
        )
        sp.add_argument(
            "--retries", type=int, default=3,
            help="attempts per request for transient faults; shutdown is "
            "never retried; 1 disables retries (default: %(default)s)",
        )
    pingp.add_argument(
        "--json", action="store_true",
        help="dump the raw counter block as JSON",
    )
    statsp.add_argument(
        "--json", action="store_true",
        help="force raw JSON output (orchestrators render a per-worker "
        "table otherwise; plain workers always print JSON)",
    )
    statsp.add_argument(
        "--watch", action="store_true",
        help="keep polling instead of sampling once (Ctrl-C to stop)",
    )
    statsp.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--watch polling period (default: %(default)s)",
    )
    statsp.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop --watch after N samples (default: until interrupted)",
    )
    metricsp.add_argument(
        "--json", action="store_true",
        help="dump the merged metrics snapshot as JSON instead of "
        "Prometheus text exposition",
    )
    profilep.add_argument(
        "--json", action="store_true",
        help="dump the merged phase tree as JSON instead of a table",
    )
    topp.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: %(default)s)",
    )
    topp.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop after N refreshes (default: until interrupted)",
    )
    topp.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="show the K hottest phases by self time (default: %(default)s)",
    )
    topp.add_argument(
        "--no-clear", action="store_true",
        help="append refreshes instead of clearing the screen "
        "(log-friendly; the default clears between refreshes)",
    )
    tracep = sub.add_parser(
        "trace",
        help="reconstruct one traced request's path (client id -> "
        "orchestrator hops -> workers) from flight-recorder files "
        "(exit 0: found, 1: no events)",
    )
    tracep.add_argument(
        "request_id",
        help="the trace id (ServiceClient.last_request_id, a failure "
        "record's request_id, or a campaign row recorded with "
        "--record-request-ids)",
    )
    tracep.add_argument(
        "--recorder", action="append", default=None, metavar="FILE",
        help="a flight-recorder JSONL file to search (repeatable)",
    )
    tracep.add_argument(
        "--recorder-dir", default=None, metavar="DIR",
        help="search every *.jsonl recorder in this directory "
        "(the layout 'repro.cli fleet --recorder-dir' writes)",
    )
    tracep.add_argument(
        "--json", action="store_true",
        help="dump the matching events as JSON instead of a span table",
    )
    submitp.add_argument(
        "--preset",
        choices=available_presets(),
        help="submit every unit of a ready-made campaign",
    )
    submitp.add_argument(
        "--spec", help="path of a campaign spec JSON file", metavar="FILE"
    )
    submitp.add_argument(
        "--seed", type=int, default=None,
        help="override the spec's base seed",
    )
    submitp.add_argument(
        "--system", choices=_system_choices(),
        help="submit one named example system instead of a campaign",
    )
    submitp.add_argument(
        "--solver",
        choices=available_solvers(),
        default=None,
        help="solver for --system (default: deterministic)",
    )
    submitp.add_argument(
        "--model", choices=("overlap", "strict"), default=None,
        help="model for --system (default: overlap)",
    )

    benchp = sub.add_parser(
        "bench",
        help="run the engine micro-benchmarks and write a JSON report "
        "(subcommands: 'trajectory' renders the committed baseline "
        "history, 'compare' gates a new report against a baseline)",
    )
    bsub = benchp.add_subparsers(dest="bench_command")
    btraj = bsub.add_parser(
        "trajectory",
        help="render the per-workload perf trajectory across every "
        "committed BENCH_PR*.json report",
    )
    btraj.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the committed reports (default: %(default)s)",
    )
    btraj.add_argument(
        "--report", action="append", default=None, metavar="FILE",
        help="append an extra (uncommitted) report to the trajectory "
        "(repeatable; e.g. a fresh run to preview against history)",
    )
    btraj.add_argument(
        "--json", action="store_true",
        help="dump the loaded trajectory as JSON instead of tables",
    )
    bcomp = bsub.add_parser(
        "compare",
        help="compare two benchmark reports engine-by-engine "
        "(exit 0: within tolerance, 1: regression)",
    )
    bcomp.add_argument("baseline", help="baseline report JSON file")
    bcomp.add_argument("new", help="candidate report JSON file")
    bcomp.add_argument(
        "--tolerance", type=float, default=0.5, metavar="FRACTION",
        help="allowed slowdown as a fraction of the baseline median "
        "(0.5 tolerates a 1.5x slowdown; default: %(default)s)",
    )
    bcomp.add_argument(
        "--json", action="store_true",
        help="dump the comparison verdicts as JSON instead of a table",
    )
    benchp.add_argument(
        "--list-workloads", action="store_true",
        help="print the benchmark engine names --workloads can match, "
        "one per line, and exit without running anything",
    )
    benchp.add_argument(
        "--quick",
        action="store_true",
        help="smaller nets and fewer repeats (CI smoke mode)",
    )
    benchp.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per engine (default: 5, or 2 with --quick)",
    )
    benchp.add_argument(
        "--output",
        default="BENCH_PR1.json",
        help="path of the JSON report, or '-' to stream the raw JSON to "
        "stdout without touching disk (default: %(default)s)",
    )
    benchp.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="SUBSTR",
        help="only run workload blocks whose engine names contain one of "
        "these substrings — paired engines run together, so matching one "
        "side re-times its whole pair (e.g. 'replication' re-times "
        "replication.loop + replication.vectorized); default: the whole "
        "suite",
    )
    benchp.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing report file (committed PR baselines are "
        "refused otherwise)",
    )
    args = parser.parse_args(argv)

    from repro.telemetry import configure_logging

    configure_logging(verbose=args.verbose, log_json=args.log_json)

    if args.command == "solve":
        return _cmd_solve(args, parser)
    if args.command == "search":
        return _cmd_search(args, parser)
    if args.command == "campaign":
        return _cmd_campaign(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if args.command == "fleet":
        return _cmd_fleet(args, parser)
    if args.command == "ping":
        return _cmd_ping(args, parser)
    if args.command == "stats":
        return _cmd_stats(args, parser)
    if args.command == "metrics":
        return _cmd_metrics(args, parser)
    if args.command == "profile":
        return _cmd_profile(args, parser)
    if args.command == "top":
        return _cmd_top(args, parser)
    if args.command == "trace":
        return _cmd_trace(args, parser)
    if args.command == "submit":
        return _cmd_submit(args, parser)
    if args.command == "shutdown":
        return _cmd_shutdown(args, parser)

    if args.command == "bench":
        if getattr(args, "bench_command", None) == "trajectory":
            return _cmd_bench_trajectory(args, parser)
        if getattr(args, "bench_command", None) == "compare":
            return _cmd_bench_compare(args, parser)

        from repro.bench import (
            available_workloads,
            render_report,
            run_benchmarks,
            write_report,
        )

        if args.list_workloads:
            for name in available_workloads():
                print(name)
            return 0
        if args.repeats is not None and args.repeats < 1:
            parser.error("--repeats must be >= 1")
        to_stdout = args.output == "-"
        if not to_stdout and os.path.exists(args.output) and not args.force:
            parser.error(
                f"{args.output} already exists (a committed benchmark "
                "baseline?); pass --force to overwrite or choose another "
                "--output"
            )
        try:
            report = run_benchmarks(
                quick=args.quick,
                repeats=args.repeats,
                workloads=args.workloads,
            )
        except ValueError as exc:
            parser.error(str(exc))
        if to_stdout:
            # Pure JSON on stdout (the human table would corrupt the
            # stream): the shape the CI perf gate pipes into 'bench
            # compare' without leaving a file behind.
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        print(render_report(report))
        try:
            write_report(report, args.output)
        except OSError as exc:
            parser.error(f"cannot write {args.output}: {exc}")
        print(f"\nwrote {args.output}")
        return 0

    if args.command == "list":
        from repro.campaign import get_preset
        from repro.experiments import experiment_description

        print("experiments:")
        for name in experiment_names():
            print(f"  {name:8s} {experiment_description(name)}")
        print("campaign presets (campaign run --preset <name>):")
        for name in available_presets():
            spec = get_preset(name)
            print(f"  {name:8s} {spec.description}")
        return 0

    from repro.experiments import get_experiment

    names = (
        list(experiment_names()) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        module = get_experiment(name)
        cfg = _scaled_config(name, module, args.scale)
        result = module.run(cfg)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (head, grep -q, …) closed the pipe early: the
        # Unix-conventional quiet exit, not a traceback. Redirect stdout
        # to devnull so the interpreter's shutdown flush can't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)  # 128 + SIGPIPE
