"""Command-line driver for the experimental campaign.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig13
    python -m repro.cli run all --scale 0.1
    python -m repro.cli bench --quick
"""

from __future__ import annotations

import argparse
import sys


def _scaled_config(name: str, module, scale: float):
    """Best-effort scaled-down configuration per experiment."""
    if scale >= 1.0:
        return None
    if name == "table1":
        return module.scaled_config(scale)
    cfg = None
    cfg_cls = getattr(module, f"{name.capitalize()}Config", None)
    if cfg_cls is None:
        return None
    cfg = cfg_cls()
    for attr in ("n_datasets", "tpn_datasets", "n_replications"):
        if hasattr(cfg, attr):
            setattr(cfg, attr, max(200, int(getattr(cfg, attr) * scale)))
    for attr in ("dataset_counts",):
        if hasattr(cfg, attr):
            counts = [max(10, int(k * scale)) for k in getattr(cfg, attr)]
            setattr(cfg, attr, sorted(set(counts)))
    if hasattr(cfg, "include_exp_theory") and scale < 0.5:
        cfg.include_exp_theory = False
    return cfg


def main(argv: list[str] | None = None) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the paper (Section 7).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", choices=[*ALL_EXPERIMENTS, "all"])
    runp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; <1 shrinks dataset counts",
    )
    benchp = sub.add_parser(
        "bench", help="run the engine micro-benchmarks and write a JSON report"
    )
    benchp.add_argument(
        "--quick",
        action="store_true",
        help="smaller nets and fewer repeats (CI smoke mode)",
    )
    benchp.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per engine (default: 5, or 2 with --quick)",
    )
    benchp.add_argument(
        "--output",
        default="BENCH_PR1.json",
        help="path of the JSON report (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.command == "bench":
        from repro.bench import render_report, run_benchmarks, write_report

        if args.repeats is not None and args.repeats < 1:
            parser.error("--repeats must be >= 1")
        report = run_benchmarks(quick=args.quick, repeats=args.repeats)
        print(render_report(report))
        try:
            write_report(report, args.output)
        except OSError as exc:
            parser.error(f"cannot write {args.output}: {exc}")
        print(f"\nwrote {args.output}")
        return 0

    if args.command == "list":
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module = ALL_EXPERIMENTS[name]
        cfg = _scaled_config(name, module, args.scale)
        result = module.run(cfg)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
