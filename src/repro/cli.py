"""Command-line driver for the experiments, solvers and campaigns.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig13
    python -m repro.cli run all --scale 0.1
    python -m repro.cli solve example_a --solver bounds --model strict
    python -m repro.cli search --solver deterministic --restarts 5 --n-jobs 4
    python -m repro.cli campaign run --preset smoke --store campaign.jsonl
    python -m repro.cli campaign run --spec my_campaign.json --store c.jsonl \
        --n-jobs 4 --resume
    python -m repro.cli campaign status --preset smoke --store campaign.jsonl
    python -m repro.cli campaign report --store campaign.jsonl
    python -m repro.cli bench --quick --output BENCH_PR3.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _scaled_config(name: str, module, scale: float):
    """Best-effort scaled-down configuration per experiment."""
    if scale >= 1.0:
        return None
    if name == "table1":
        return module.scaled_config(scale)
    cfg = None
    cfg_cls = getattr(module, f"{name.capitalize()}Config", None)
    if cfg_cls is None:
        return None
    cfg = cfg_cls()
    for attr in ("n_datasets", "tpn_datasets", "n_replications"):
        if hasattr(cfg, attr):
            setattr(cfg, attr, max(200, int(getattr(cfg, attr) * scale)))
    for attr in ("dataset_counts",):
        if hasattr(cfg, attr):
            counts = [max(10, int(k * scale)) for k in getattr(cfg, attr)]
            setattr(cfg, attr, sorted(set(counts)))
    if hasattr(cfg, "include_exp_theory") and scale < 0.5:
        cfg.include_exp_theory = False
    return cfg


def _system_choices() -> tuple[str, ...]:
    from repro.mapping.examples import NAMED_SYSTEMS

    return tuple(sorted(NAMED_SYSTEMS))


def _cmd_solve(args, parser) -> int:
    from repro.evaluate import StructureCache, evaluate, get_solver
    from repro.mapping.examples import named_system

    mapping = named_system(args.system)
    if args.solver == "simulation":
        options = {"n_datasets": args.n_datasets, "seed": args.sim_seed}
    else:
        options = {"max_states": args.max_states, "semantics": args.semantics}
    cache = StructureCache()
    if args.solver == "bounds":
        bounds = get_solver("bounds", **options).bounds(
            mapping, args.model, cache=cache
        )
        print(f"system     : {args.system}  {mapping!r}")
        print(f"model      : {args.model}")
        print(f"lower (exp): {bounds.lower:.6g}")
        print(f"upper (cst): {bounds.upper:.6g}")
        print(f"width      : {bounds.width:.6g}")
        return 0
    rho = evaluate(
        mapping, solver=args.solver, model=args.model, cache=cache, **options
    )
    print(f"system     : {args.system}  {mapping!r}")
    print(f"model      : {args.model}")
    print(f"solver     : {args.solver}")
    print(f"throughput : {rho:.6g}")
    return 0


def _cmd_search(args, parser) -> int:
    import numpy as np

    from repro.application.chain import Application
    from repro.evaluate import StructureCache
    from repro.mapping.heuristics import random_restart_search
    from repro.platform.topology import Platform

    rng = np.random.default_rng(args.seed)
    app = Application.from_work(
        rng.uniform(1.0, 8.0, args.stages).tolist(),
        rng.uniform(0.1, 0.5, args.stages - 1).tolist(),
    )
    platform = Platform.from_speeds(
        rng.uniform(1.0, 3.0, args.processors).tolist(), bandwidth=5.0
    )
    cache = StructureCache()
    result = random_restart_search(
        app,
        platform,
        mode=args.solver,
        n_restarts=args.restarts,
        seed=args.seed,
        n_jobs=args.n_jobs,
        cache=cache,
    )
    print(f"instance   : N={args.stages} stages on M={args.processors} "
          f"processors (seed {args.seed})")
    print(f"solver     : {args.solver}")
    print(f"best       : {result.throughput:.6g}  {result.mapping!r}")
    print(f"teams      : {[list(t) for t in result.mapping.teams]}")
    print(f"evaluations: {result.evaluations} requests = "
          f"{result.cache_misses} solver runs + {result.cache_hits} cache hits")
    return 0


def _load_campaign_spec(args, parser):
    """Resolve --preset / --spec (exactly one) into a CampaignSpec."""
    from repro.campaign import CampaignSpec, get_preset
    from repro.exceptions import CampaignError

    if bool(args.preset) == bool(args.spec):
        parser.error("pass exactly one of --preset or --spec")
    try:
        if args.preset:
            spec = get_preset(args.preset)
        else:
            try:
                with open(args.spec, encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                parser.error(f"cannot read {args.spec}: {exc}")
            spec = CampaignSpec.from_json(text)
    except CampaignError as exc:
        parser.error(str(exc))
    if getattr(args, "seed", None) is not None:
        spec.seed = args.seed
    return spec


def _cmd_campaign(args, parser) -> int:
    from repro.campaign import (
        ResultStore,
        campaign_report,
        campaign_status,
        run_campaign,
    )
    from repro.exceptions import CampaignError

    try:
        store = ResultStore(args.store)
    except (CampaignError, OSError) as exc:
        parser.error(str(exc))

    if args.campaign_command == "report":
        # run/status legitimately start from a missing store; report of
        # one can only be a typo'd path.
        if not store.path.exists():
            parser.error(f"store {store.path} does not exist")
        results = campaign_report(store, campaign=args.campaign)
        payload = [r.to_dict() for r in results]
        if args.json == "-":
            # Pure-JSON mode: nothing else on stdout, pipeable to jq.
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not results:
            print(f"store {store.path} holds no campaign results")
        for result in results:
            print(result.render())
            print()
        if args.json:
            # Written even when empty, so scripted consumers always
            # find the file (an empty array, not a missing path).
            try:
                with open(args.json, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                parser.error(f"cannot write {args.json}: {exc}")
            print(f"wrote {args.json}")
        return 0

    spec = _load_campaign_spec(args, parser)

    if args.campaign_command == "status":
        try:
            rows = campaign_status(spec, store)
        except CampaignError as exc:
            parser.error(str(exc))
        remaining = 0
        for name, done, total in rows:
            remaining += total - done
            print(f"{name:32s} {done}/{total} done")
        print(f"remaining  : {remaining}")
        return 0 if remaining == 0 else 1

    # campaign run
    if args.n_jobs < 1:
        parser.error("--n-jobs must be >= 1")
    try:
        summary = run_campaign(
            spec, store, n_jobs=args.n_jobs, resume=args.resume
        )
    except CampaignError as exc:
        parser.error(str(exc))
    print(summary.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.experiments import experiment_names

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the paper (Section 7).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments and campaign presets")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", choices=[*experiment_names(), "all"])
    runp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; <1 shrinks dataset counts",
    )

    from repro.evaluate import available_solvers

    solvep = sub.add_parser(
        "solve", help="score a named example system with a registered solver"
    )
    solvep.add_argument("system", choices=_system_choices())
    solvep.add_argument(
        "--solver",
        choices=available_solvers(),
        default="deterministic",
        help="registered solver name (default: %(default)s)",
    )
    solvep.add_argument(
        "--model", choices=("overlap", "strict"), default="overlap"
    )
    solvep.add_argument(
        "--semantics", choices=("unbounded", "bottleneck"), default="unbounded"
    )
    solvep.add_argument("--max-states", type=int, default=200_000)
    solvep.add_argument(
        "--n-datasets", type=int, default=1_000,
        help="simulation solver: data sets per run (default: %(default)s)",
    )
    solvep.add_argument(
        "--sim-seed", type=int, default=0,
        help="simulation solver: base seed (default: %(default)s)",
    )

    searchp = sub.add_parser(
        "search",
        help="mapping search (multi-start hill climb) scored by a named solver",
    )
    searchp.add_argument(
        "--solver",
        choices=available_solvers(),
        default="deterministic",
        help="scoring solver (default: %(default)s)",
    )
    searchp.add_argument("--stages", type=int, default=3)
    searchp.add_argument("--processors", type=int, default=9)
    searchp.add_argument("--restarts", type=int, default=5)
    searchp.add_argument("--seed", type=int, default=0)
    searchp.add_argument(
        "--n-jobs", type=int, default=1,
        help="workers for batched candidate scoring (default: serial)",
    )

    from repro.campaign import available_presets

    campp = sub.add_parser(
        "campaign",
        help="declarative scenario sweeps with a persistent, resumable store",
    )
    csub = campp.add_subparsers(dest="campaign_command", required=True)
    crun = csub.add_parser(
        "run", help="execute every pending unit of a campaign into a store"
    )
    cstatus = csub.add_parser(
        "status",
        help="per-scenario completion of a store against a spec "
        "(exits 1 while units remain, 0 when complete)",
    )
    creport = csub.add_parser(
        "report", help="render per-scenario result tables from a store"
    )
    for sp in (crun, cstatus):
        sp.add_argument(
            "--preset",
            choices=available_presets(),
            help="a ready-made campaign spec",
        )
        sp.add_argument(
            "--spec", help="path of a campaign spec JSON file", metavar="FILE"
        )
        sp.add_argument(
            "--seed", type=int, default=None,
            help="override the spec's base seed",
        )
    for sp in (crun, cstatus, creport):
        sp.add_argument(
            "--store", required=True,
            help="path of the JSONL result store", metavar="FILE",
        )
    crun.add_argument(
        "--n-jobs", type=int, default=1,
        help="workers for unit evaluation (default: serial; results are "
        "bit-identical either way)",
    )
    crun.add_argument(
        "--resume",
        action="store_true",
        help="continue a populated store, skipping completed units",
    )
    creport.add_argument(
        "--campaign", default=None,
        help="only report records of this campaign name",
    )
    creport.add_argument(
        "--json", default=None, metavar="FILE",
        help="also dump the report tables as JSON ('-' for stdout)",
    )

    benchp = sub.add_parser(
        "bench", help="run the engine micro-benchmarks and write a JSON report"
    )
    benchp.add_argument(
        "--quick",
        action="store_true",
        help="smaller nets and fewer repeats (CI smoke mode)",
    )
    benchp.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per engine (default: 5, or 2 with --quick)",
    )
    benchp.add_argument(
        "--output",
        default="BENCH_PR1.json",
        help="path of the JSON report (default: %(default)s)",
    )
    benchp.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing report file (committed PR baselines are "
        "refused otherwise)",
    )
    args = parser.parse_args(argv)

    if args.command == "solve":
        return _cmd_solve(args, parser)
    if args.command == "search":
        return _cmd_search(args, parser)
    if args.command == "campaign":
        return _cmd_campaign(args, parser)

    if args.command == "bench":
        from repro.bench import render_report, run_benchmarks, write_report

        if args.repeats is not None and args.repeats < 1:
            parser.error("--repeats must be >= 1")
        if os.path.exists(args.output) and not args.force:
            parser.error(
                f"{args.output} already exists (a committed benchmark "
                "baseline?); pass --force to overwrite or choose another "
                "--output"
            )
        report = run_benchmarks(quick=args.quick, repeats=args.repeats)
        print(render_report(report))
        try:
            write_report(report, args.output)
        except OSError as exc:
            parser.error(f"cannot write {args.output}: {exc}")
        print(f"\nwrote {args.output}")
        return 0

    if args.command == "list":
        from repro.campaign import get_preset
        from repro.experiments import experiment_description

        print("experiments:")
        for name in experiment_names():
            print(f"  {name:8s} {experiment_description(name)}")
        print("campaign presets (campaign run --preset <name>):")
        for name in available_presets():
            spec = get_preset(name)
            print(f"  {name:8s} {spec.description}")
        return 0

    from repro.experiments import get_experiment

    names = (
        list(experiment_names()) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        module = get_experiment(name)
        cfg = _scaled_config(name, module, args.scale)
        result = module.run(cfg)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (head, grep -q, …) closed the pipe early: the
        # Unix-conventional quiet exit, not a traceback. Redirect stdout
        # to devnull so the interpreter's shutdown flush can't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)  # 128 + SIGPIPE
