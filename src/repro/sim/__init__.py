"""Discrete-event simulation substrate (paper Section 7's tooling).

Two independent simulators cross-validate the analytical results:

* :mod:`repro.sim.tpn_sim` — simulates the timed event graph itself
  (our stand-in for ERS' ``eg_sim``);
* :mod:`repro.sim.system_sim` — simulates the application/platform/mapping
  directly through the Section 2 recurrences, without any Petri net
  (our stand-in for the paper's SimGrid experiments, including the
  bandwidth-efficiency correction).
"""

from repro.sim.results import SimulationResult
from repro.sim.tpn_sim import simulate_tpn
from repro.sim.system_sim import (
    BatchSimulationResult,
    simulate_system,
    simulate_system_batch,
)
from repro.sim.runner import (
    ReplicationSpec,
    ReplicationSummary,
    replicate,
    replication_values,
    throughput_vs_datasets,
)
from repro.sim.stats import OnlineStats, normal_confidence_interval

__all__ = [
    "SimulationResult",
    "BatchSimulationResult",
    "simulate_tpn",
    "simulate_system",
    "simulate_system_batch",
    "replicate",
    "replication_values",
    "ReplicationSpec",
    "ReplicationSummary",
    "throughput_vs_datasets",
    "OnlineStats",
    "normal_confidence_interval",
]
