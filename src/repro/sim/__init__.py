"""Discrete-event simulation substrate (paper Section 7's tooling).

Two independent simulators cross-validate the analytical results:

* :mod:`repro.sim.tpn_sim` — simulates the timed event graph itself
  (our stand-in for ERS' ``eg_sim``);
* :mod:`repro.sim.system_sim` — simulates the application/platform/mapping
  directly through the Section 2 recurrences, without any Petri net
  (our stand-in for the paper's SimGrid experiments, including the
  bandwidth-efficiency correction).
"""

from repro.sim.results import SimulationResult
from repro.sim.tpn_sim import simulate_tpn
from repro.sim.system_sim import simulate_system
from repro.sim.runner import replicate, ReplicationSummary, throughput_vs_datasets
from repro.sim.stats import OnlineStats, normal_confidence_interval

__all__ = [
    "SimulationResult",
    "simulate_tpn",
    "simulate_system",
    "replicate",
    "ReplicationSummary",
    "throughput_vs_datasets",
    "OnlineStats",
    "normal_confidence_interval",
]
