"""Streaming statistics and confidence intervals for the runners."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class OnlineStats:
    """Welford's online mean/variance accumulator."""

    n: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    min: float = math.inf
    max: float = -math.inf

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation ``std / mean`` (0 for zero mean)."""
        return self.std / self.mean if self.mean else 0.0


def normal_confidence_interval(
    mean: float, std: float, n: int, *, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for the mean of ``n`` I.I.D. replications."""
    if n < 2:
        return (mean, mean)
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * std / math.sqrt(n)
    return (mean - half, mean + half)
