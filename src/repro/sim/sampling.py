"""Per-resource samplers shared by the simulators.

The I.I.D. hypothesis of Section 2.4 attaches one law per hardware
resource; a :class:`LawSpec` freezes a family/shape and instantiates it
with each resource's mean. Samples are drawn in vectorized batches (the
numpy generator amortizes much better over blocks than per-event calls).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.registry import make_distribution

#: Anything convertible to a ``mean -> Distribution`` factory.
LawLike = "str | Callable[[float], Distribution] | LawSpec"


@dataclass(frozen=True)
class LawSpec:
    """A distribution family plus its shape parameters (mean left free)."""

    family: str
    params: tuple[tuple[str, float], ...] = ()

    @classmethod
    def of(cls, family: str, **params: float) -> "LawSpec":
        return cls(family, tuple(sorted(params.items())))

    def instantiate(self, mean: float) -> Distribution:
        return make_distribution(self.family, mean, **dict(self.params))

    @property
    def label(self) -> str:
        if not self.params:
            return self.family
        inner = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return f"{self.family}({inner})"


def as_factory(law: "LawLike") -> Callable[[float], Distribution]:
    """Normalize a law designation into a ``mean -> Distribution`` factory."""
    if isinstance(law, LawSpec):
        return law.instantiate
    if isinstance(law, str):
        return LawSpec.of(law).instantiate
    if callable(law):
        return law
    raise TypeError(f"cannot interpret {law!r} as a law")


class SampleBuffer:
    """Batch sampler for one distribution (vectorized draws, FIFO reads)."""

    __slots__ = ("_dist", "_rng", "_block", "_buf", "_pos")

    def __init__(
        self, dist: Distribution, rng: np.random.Generator, block: int = 1024
    ) -> None:
        self._dist = dist
        self._rng = rng
        self._block = int(block)
        self._buf = np.empty(0)
        self._pos = 0

    def draw(self) -> float:
        if self._pos >= self._buf.size:
            self._buf = np.asarray(self._dist.sample(self._rng, self._block), dtype=float)
            self._pos = 0
        x = float(self._buf[self._pos])
        self._pos += 1
        return x

    def draw_block(self, n: int) -> np.ndarray:
        """Draw ``n`` samples at once (bypasses the FIFO buffer)."""
        return np.asarray(self._dist.sample(self._rng, n), dtype=float)

    def draw_blocks(self, n_blocks: int, size: int) -> np.ndarray:
        """Draw an ``(n_blocks, size)`` matrix in one generator call.

        The underlying stream is consumed exactly as ``n_blocks * size``
        flat draws would consume it (row-major), so callers can switch
        between the flat and the blocked API without changing the sample
        sequence.
        """
        return self.draw_block(n_blocks * size).reshape(n_blocks, size)
