"""Discrete-event simulation of a timed event graph (``eg_sim`` stand-in).

Semantics: a transition *starts firing* as soon as every input place holds
a token and it is not already firing; tokens are consumed at the start and
produced at the end of the firing, whose duration is drawn from the
transition's law (one law per hardware resource, independent draws per
firing — the I.I.D. hypothesis). Event graphs are conflict-free, so this
single-server semantics is unambiguous, and for exponential laws it
coincides with the CTMC race semantics of Section 5.

Works on bounded *and* unbounded nets: the feed-forward Overlap net simply
accumulates tokens in the flow places of non-bottleneck branches.
"""

from __future__ import annotations

import heapq
import time as _time

import numpy as np

from repro.exceptions import StructuralError
from repro.petri.net import TimedEventGraph
from repro.sim.results import SimulationResult
from repro.sim.sampling import SampleBuffer, as_factory


def simulate_tpn(
    tpn: TimedEventGraph,
    *,
    n_datasets: int,
    law="exponential",
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    max_events: int | None = None,
    throttle: int | None = 64,
) -> SimulationResult:
    """Run the net until ``n_datasets`` last-column firings complete.

    Parameters
    ----------
    law:
        A family name, :class:`~repro.sim.sampling.LawSpec` or
        ``mean -> Distribution`` callable, instantiated per transition with
        its mean firing time. Zero-mean transitions fire instantaneously.
    rng / seed:
        Pass a generator (preferred for replication control) or a seed.
    max_events:
        Safety valve (default ``50 × n_datasets × n_transitions``).
    throttle:
        Maximum run-ahead: a transition does not start while one of its
        output places already holds this many tokens. Feed-forward
        (Overlap) nets are unbounded, so without a throttle a fast source
        floods the event calendar; a generous cap leaves the measured
        throughput unchanged (run-ahead beyond the bottleneck's backlog
        never speeds completions) while keeping the event count linear.
        ``None`` disables the cap.
    """
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if throttle is not None and throttle < 1:
        raise ValueError("throttle must be >= 1 or None")
    if rng is None:
        rng = np.random.default_rng(seed)
    factory = as_factory(law)

    n_t = tpn.n_transitions
    in_places = tpn.in_places
    out_places = tpn.out_places
    for t in range(n_t):
        if not in_places[t]:
            raise StructuralError(
                f"transition {t} has no input place; event-graph simulation "
                "requires source transitions to be closed by resource cycles"
            )
    marking = tpn.initial_marking().astype(np.int64)

    samplers: list[SampleBuffer | None] = []
    for t in tpn.transitions:
        if t.mean_time == 0.0:
            samplers.append(None)  # instantaneous firing
        else:
            samplers.append(SampleBuffer(factory(t.mean_time), rng))

    last_col = set(tpn.last_column_transitions())
    completions = np.empty(n_datasets)
    n_done = 0

    firing = np.zeros(n_t, dtype=bool)
    calendar: list[tuple[float, int, int]] = []  # (end time, tiebreak, transition)
    tiebreak = 0
    now = 0.0
    n_events = 0
    budget = max_events if max_events is not None else 50 * n_datasets * n_t
    t0 = _time.perf_counter()

    def try_start(t: int) -> bool:
        nonlocal tiebreak
        if firing[t]:
            return False
        for p in in_places[t]:
            if marking[p] == 0:
                return False
        if throttle is not None:
            for p in out_places[t]:
                if marking[p] >= throttle:
                    return False
        marking[in_places[t]] -= 1
        firing[t] = True
        sampler = samplers[t]
        duration = 0.0 if sampler is None else sampler.draw()
        tiebreak += 1
        heapq.heappush(calendar, (now + duration, tiebreak, t))
        return True

    def cascade(seeds: list[int]) -> None:
        """Start every transition unlocked by token moves, transitively.

        Starting a transition consumes tokens, which can release the
        throttle of upstream transitions — hence the worklist.
        """
        stack = list(seeds)
        while stack:
            t = stack.pop()
            if try_start(t) and throttle is not None:
                for p in in_places[t]:
                    stack.append(tpn.places[p].src)

    cascade(list(range(n_t)))
    if not calendar:
        raise StructuralError("deadlocked net: no transition initially enabled")

    while n_done < n_datasets:
        if n_events >= budget:
            raise StructuralError(
                f"simulation exceeded {budget} events before {n_datasets} "
                "completions; the net may be deadlocked"
            )
        now, _, t = heapq.heappop(calendar)
        n_events += 1
        firing[t] = False
        marking[out_places[t]] += 1
        if t in last_col:
            completions[n_done] = now
            n_done += 1
        # Newly produced tokens may enable the successors — and t itself.
        cascade([t] + [tpn.places[p].dst for p in out_places[t]])

    return SimulationResult(
        completion_times=completions,
        n_events=n_events,
        wall_time=_time.perf_counter() - t0,
    )
