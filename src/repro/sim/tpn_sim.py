"""Discrete-event simulation of a timed event graph (``eg_sim`` stand-in).

Semantics: a transition *starts firing* as soon as every input place holds
a token and it is not already firing; tokens are consumed at the start and
produced at the end of the firing, whose duration is drawn from the
transition's law (one law per hardware resource, independent draws per
firing — the I.I.D. hypothesis). Event graphs are conflict-free, so this
single-server semantics is unambiguous, and for exponential laws it
coincides with the CTMC race semantics of Section 5.

Works on bounded *and* unbounded nets: the feed-forward Overlap net simply
accumulates tokens in the flow places of non-bottleneck branches.

Two engines implement the same semantics: the default ``"fast"`` engine
walks the net's flat int32 adjacency (:class:`~repro.kernels.IncidenceKernel`)
with plain-int markings, while ``"reference"`` keeps the original
numpy-marking loop as a cross-checked oracle. Both make the exact same
start/complete decisions in the same order, so they consume the RNG
identically and produce event-for-event equal results.
"""

from __future__ import annotations

import heapq
import time as _time

import numpy as np

from repro.exceptions import StructuralError
from repro.petri.net import TimedEventGraph
from repro.sim.results import SimulationResult
from repro.sim.sampling import SampleBuffer, as_factory


def simulate_tpn(
    tpn: TimedEventGraph,
    *,
    n_datasets: int,
    law="exponential",
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    max_events: int | None = None,
    throttle: int | None = 64,
    engine: str = "fast",
) -> SimulationResult:
    """Run the net until ``n_datasets`` last-column firings complete.

    Parameters
    ----------
    law:
        A family name, :class:`~repro.sim.sampling.LawSpec` or
        ``mean -> Distribution`` callable, instantiated per transition with
        its mean firing time. Zero-mean transitions fire instantaneously.
    rng / seed:
        Pass a generator (preferred for replication control) or a seed.
    max_events:
        Safety valve (default ``50 × n_datasets × n_transitions``).
    throttle:
        Maximum run-ahead: a transition does not start while one of its
        output places already holds this many tokens. Feed-forward
        (Overlap) nets are unbounded, so without a throttle a fast source
        floods the event calendar; a generous cap leaves the measured
        throughput unchanged (run-ahead beyond the bottleneck's backlog
        never speeds completions) while keeping the event count linear.
        ``None`` disables the cap.
    engine:
        ``"fast"`` (flat-array event loop, default) or ``"reference"``
        (original implementation). Identical results for the same rng.
    """
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if throttle is not None and throttle < 1:
        raise ValueError("throttle must be >= 1 or None")
    if engine not in ("fast", "reference"):
        raise ValueError(f"unknown engine {engine!r}; use 'fast' or 'reference'")
    if rng is None:
        rng = np.random.default_rng(seed)
    factory = as_factory(law)

    n_t = tpn.n_transitions
    for t in range(n_t):
        if not tpn.in_places[t]:
            raise StructuralError(
                f"transition {t} has no input place; event-graph simulation "
                "requires source transitions to be closed by resource cycles"
            )

    samplers: list[SampleBuffer | None] = []
    for t in tpn.transitions:
        if t.mean_time == 0.0:
            samplers.append(None)  # instantaneous firing
        else:
            samplers.append(SampleBuffer(factory(t.mean_time), rng))

    budget = max_events if max_events is not None else 50 * n_datasets * n_t
    run = _simulate_fast if engine == "fast" else _simulate_reference
    return run(tpn, samplers, n_datasets, budget, throttle)


def _simulate_fast(
    tpn: TimedEventGraph,
    samplers: list[SampleBuffer | None],
    n_datasets: int,
    budget: int,
    throttle: int | None,
) -> SimulationResult:
    """Event loop over the kernel's flat adjacency with plain-int markings.

    Scalar access into Python lists beats per-event numpy fancy indexing
    and dataclass attribute chains by a wide margin; the draws still come
    from the vectorized per-transition :class:`SampleBuffer` blocks.
    """
    kern = tpn.kernel
    n_t = kern.n_transitions
    in_places = kern.in_places_list()
    out_places = kern.out_places_list()
    place_src = kern.place_src.tolist()
    place_dst = kern.place_dst.tolist()
    marking = tpn.initial_marking().tolist()
    draw = [None if s is None else s.draw for s in samplers]

    is_last = [False] * n_t
    for t in tpn.last_column_transitions():
        is_last[t] = True
    completions = np.empty(n_datasets)
    n_done = 0

    firing = [False] * n_t
    calendar: list[tuple[float, int, int]] = []  # (end time, tiebreak, transition)
    push = heapq.heappush
    pop = heapq.heappop
    tiebreak = 0
    now = 0.0
    n_events = 0
    t0 = _time.perf_counter()

    def try_start(t: int) -> bool:
        nonlocal tiebreak
        if firing[t]:
            return False
        for p in in_places[t]:
            if marking[p] == 0:
                return False
        if throttle is not None:
            for p in out_places[t]:
                if marking[p] >= throttle:
                    return False
        for p in in_places[t]:
            marking[p] -= 1
        firing[t] = True
        d = draw[t]
        duration = 0.0 if d is None else d()
        tiebreak += 1
        push(calendar, (now + duration, tiebreak, t))
        return True

    def cascade(seeds: list[int]) -> None:
        stack = seeds
        while stack:
            t = stack.pop()
            if try_start(t) and throttle is not None:
                for p in in_places[t]:
                    stack.append(place_src[p])

    cascade(list(range(n_t)))
    if not calendar:
        raise StructuralError("deadlocked net: no transition initially enabled")

    while n_done < n_datasets:
        if n_events >= budget:
            raise StructuralError(
                f"simulation exceeded {budget} events before {n_datasets} "
                "completions; the net may be deadlocked"
            )
        now, _, t = pop(calendar)
        n_events += 1
        firing[t] = False
        for p in out_places[t]:
            marking[p] += 1
        if is_last[t]:
            completions[n_done] = now
            n_done += 1
        # Newly produced tokens may enable the successors — and t itself.
        cascade([t] + [place_dst[p] for p in out_places[t]])

    return SimulationResult(
        completion_times=completions,
        n_events=n_events,
        wall_time=_time.perf_counter() - t0,
    )


def _simulate_reference(
    tpn: TimedEventGraph,
    samplers: list[SampleBuffer | None],
    n_datasets: int,
    budget: int,
    throttle: int | None,
) -> SimulationResult:
    """Original numpy-marking event loop — the equivalence oracle."""
    n_t = tpn.n_transitions
    in_places = tpn.in_places
    out_places = tpn.out_places
    marking = tpn.initial_marking().astype(np.int64)

    last_col = set(tpn.last_column_transitions())
    completions = np.empty(n_datasets)
    n_done = 0

    firing = np.zeros(n_t, dtype=bool)
    calendar: list[tuple[float, int, int]] = []  # (end time, tiebreak, transition)
    tiebreak = 0
    now = 0.0
    n_events = 0
    t0 = _time.perf_counter()

    def try_start(t: int) -> bool:
        nonlocal tiebreak
        if firing[t]:
            return False
        for p in in_places[t]:
            if marking[p] == 0:
                return False
        if throttle is not None:
            for p in out_places[t]:
                if marking[p] >= throttle:
                    return False
        marking[in_places[t]] -= 1
        firing[t] = True
        sampler = samplers[t]
        duration = 0.0 if sampler is None else sampler.draw()
        tiebreak += 1
        heapq.heappush(calendar, (now + duration, tiebreak, t))
        return True

    def cascade(seeds: list[int]) -> None:
        """Start every transition unlocked by token moves, transitively.

        Starting a transition consumes tokens, which can release the
        throttle of upstream transitions — hence the worklist.
        """
        stack = list(seeds)
        while stack:
            t = stack.pop()
            if try_start(t) and throttle is not None:
                for p in in_places[t]:
                    stack.append(tpn.places[p].src)

    cascade(list(range(n_t)))
    if not calendar:
        raise StructuralError("deadlocked net: no transition initially enabled")

    while n_done < n_datasets:
        if n_events >= budget:
            raise StructuralError(
                f"simulation exceeded {budget} events before {n_datasets} "
                "completions; the net may be deadlocked"
            )
        now, _, t = heapq.heappop(calendar)
        n_events += 1
        firing[t] = False
        marking[out_places[t]] += 1
        if t in last_col:
            completions[n_done] = now
            n_done += 1
        # Newly produced tokens may enable the successors — and t itself.
        cascade([t] + [tpn.places[p].dst for p in out_places[t]])

    return SimulationResult(
        completion_times=completions,
        n_events=n_events,
        wall_time=_time.perf_counter() - t0,
    )
