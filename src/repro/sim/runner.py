"""Replication runners: many independent simulations, summarized.

Reproduces the paper's Section 7.2/7.3 methodology: run 500 independent
replications of 10…10 000 data sets and report min / max / average /
standard deviation of the throughput estimator.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.sim.results import SimulationResult
from repro.sim.stats import OnlineStats, normal_confidence_interval


@dataclass(frozen=True)
class ReplicationSummary:
    """Summary of the throughput across independent replications."""

    n_replications: int
    mean: float
    std: float
    min: float
    max: float
    ci95: tuple[float, float]

    @property
    def relative_std(self) -> float:
        """Std dev over mean — the paper's ≈2% @5k / ≈1% @10k metric."""
        return self.std / self.mean if self.mean else 0.0


def replicate(
    run: Callable[[np.random.Generator], SimulationResult],
    *,
    n_replications: int,
    seed: int = 0,
    estimator: str = "total",
) -> ReplicationSummary:
    """Run ``n_replications`` independent simulations and summarize.

    ``run`` receives a child generator spawned from ``seed`` (independent
    streams). ``estimator`` selects ``"total"`` (paper's completed/total
    time) or ``"steady"`` (warm-up discarded).
    """
    if n_replications < 1:
        raise ValueError("n_replications must be >= 1")
    streams = np.random.default_rng(seed).spawn(n_replications)
    stats = OnlineStats()
    for rng in streams:
        result = run(rng)
        value = (
            result.throughput
            if estimator == "total"
            else result.steady_state_throughput()
        )
        stats.push(value)
    return ReplicationSummary(
        n_replications=n_replications,
        mean=stats.mean,
        std=stats.std,
        min=stats.min,
        max=stats.max,
        ci95=normal_confidence_interval(stats.mean, stats.std, stats.n),
    )


def throughput_vs_datasets(
    run: Callable[[np.random.Generator, int], SimulationResult],
    dataset_counts: Sequence[int],
    *,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Throughput estimate as a function of the number of data sets.

    Simulates once at ``max(dataset_counts)`` and reuses the completion
    prefix for the smaller counts (exactly how a single long run would be
    inspected over time), yielding the Fig. 10 convergence series.
    """
    counts = sorted(set(int(c) for c in dataset_counts))
    if not counts or counts[0] < 1:
        raise ValueError("dataset_counts must contain positive integers")
    rng = np.random.default_rng(seed)
    result = run(rng, counts[-1])
    return [(k, result.throughput_after(k)) for k in counts]
