"""Replication runners: many independent simulations, summarized.

Reproduces the paper's Section 7.2/7.3 methodology: run 500 independent
replications of 10…10 000 data sets and report min / max / average /
standard deviation of the throughput estimator.

Two execution engines produce the same numbers:

* ``engine="loop"`` — one :func:`~repro.sim.system_sim.simulate_system`
  pass per replication (optionally fanned over a process pool);
* ``engine="vectorized"`` — all replications evaluated in one
  :func:`~repro.sim.system_sim.simulate_system_batch` recurrence pass,
  with the replication axis handled by numpy instead of the interpreter.

``engine="auto"`` (the default) picks the vectorized engine whenever the
work is described by a :class:`ReplicationSpec` — a declarative record
the runner can dispatch on — and falls back to the loop for opaque
callables. Each replication draws from its own spawned generator in the
serial draw order, so the per-replication estimates (and therefore the
summaries) are **bit-identical** across engines.
"""

from __future__ import annotations

import pickle
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from functools import partial

import numpy as np

from repro.mapping.mapping import Mapping
from repro.sim.results import SimulationResult
from repro.sim.stats import OnlineStats, normal_confidence_interval
from repro.sim.system_sim import (
    BatchSimulationResult,
    simulate_system,
    simulate_system_batch,
)
from repro.types import ExecutionModel

#: Recognized values of ``replicate(engine=)``.
ENGINES = ("auto", "vectorized", "loop")

#: Recognized values of ``replicate(estimator=)``.
ESTIMATORS = ("total", "steady")


@dataclass(frozen=True)
class ReplicationSpec:
    """A batchable replication study: one system-simulator configuration.

    Where a bare callable is opaque, this record lets the runner *see*
    the work — mapping, model, law, workload size — and route it to the
    vectorized batch kernel. It is itself a picklable
    ``rng -> SimulationResult`` callable, so it drops into every API that
    accepted a run callable (including ``n_jobs > 1`` process pools).
    """

    mapping: Mapping
    model: ExecutionModel | str = "overlap"
    n_datasets: int = 1_000
    law: object = "exponential"
    bandwidth_efficiency: float = 1.0
    correlation: str = "independent"

    def __post_init__(self) -> None:
        object.__setattr__(self, "model", ExecutionModel.coerce(self.model))
        if self.n_datasets < 1:
            raise ValueError("n_datasets must be >= 1")

    def with_datasets(self, n_datasets: int) -> "ReplicationSpec":
        """A copy of the spec at a different workload size."""
        return replace(self, n_datasets=n_datasets)

    def __call__(self, rng: np.random.Generator) -> SimulationResult:
        return simulate_system(
            self.mapping,
            self.model,
            n_datasets=self.n_datasets,
            law=self.law,
            rng=rng,
            bandwidth_efficiency=self.bandwidth_efficiency,
            correlation=self.correlation,
        )

    def simulate_batch(
        self, rngs: Sequence[np.random.Generator]
    ) -> BatchSimulationResult:
        """All replications in one vectorized recurrence pass."""
        return simulate_system_batch(
            self.mapping,
            self.model,
            n_datasets=self.n_datasets,
            rngs=rngs,
            law=self.law,
            bandwidth_efficiency=self.bandwidth_efficiency,
            correlation=self.correlation,
        )


@dataclass(frozen=True)
class ReplicationSummary:
    """Summary of the throughput across independent replications."""

    n_replications: int
    mean: float
    std: float
    min: float
    max: float
    ci95: tuple[float, float]

    @property
    def relative_std(self) -> float:
        """Std dev over mean — the paper's ≈2% @5k / ≈1% @10k metric."""
        return self.std / self.mean if self.mean else 0.0


def _replication_value(
    run: Callable[[np.random.Generator], SimulationResult],
    estimator: str,
    rng: np.random.Generator,
) -> float:
    result = run(rng)
    return (
        result.throughput
        if estimator == "total"
        else result.steady_state_throughput()
    )


def _resolve_engine(run, engine: str) -> bool:
    """Whether to use the batch kernel; raises on impossible requests."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
        )
    batchable = isinstance(run, ReplicationSpec)
    if engine == "vectorized" and not batchable:
        raise ValueError(
            "engine='vectorized' needs a ReplicationSpec; an opaque "
            "callable can only run through engine='loop' (or 'auto', "
            "which falls back to it)"
        )
    return batchable and engine != "loop"


def _check_common(n_replications: int, estimator: str) -> None:
    if n_replications < 1:
        raise ValueError("n_replications must be >= 1")
    if estimator not in ESTIMATORS:
        raise ValueError(
            f"unknown estimator {estimator!r}; "
            f"available: {', '.join(ESTIMATORS)}"
        )


def replication_values(
    run: Callable[[np.random.Generator], SimulationResult] | ReplicationSpec,
    *,
    n_replications: int,
    seed: int | Sequence[int] = 0,
    estimator: str = "total",
    engine: str = "auto",
) -> np.ndarray:
    """Per-replication throughput estimates, shape ``(n_replications,)``.

    The engine-equivalence contract lives here: for the same ``seed`` the
    returned vector is byte-identical between ``engine="loop"`` and
    ``engine="vectorized"``. :func:`replicate` folds this vector into a
    :class:`ReplicationSummary`; tests and benchmarks compare it raw.
    """
    _check_common(n_replications, estimator)
    vectorized = _resolve_engine(run, engine)
    streams = np.random.default_rng(seed).spawn(n_replications)
    if vectorized:
        batch = run.simulate_batch(streams)
        if estimator == "total":
            return batch.throughput()
        return batch.steady_state_throughput()
    return np.array(
        [_replication_value(run, estimator, rng) for rng in streams]
    )


def replicate(
    run: Callable[[np.random.Generator], SimulationResult] | ReplicationSpec,
    *,
    n_replications: int,
    seed: int | Sequence[int] = 0,
    estimator: str = "total",
    n_jobs: int = 1,
    engine: str = "auto",
) -> ReplicationSummary:
    """Run ``n_replications`` independent simulations and summarize.

    ``run`` receives a child generator spawned from ``seed`` (independent
    streams). ``estimator`` selects ``"total"`` (paper's completed/total
    time) or ``"steady"`` (warm-up discarded).

    ``engine`` selects the execution strategy — ``"vectorized"`` batches
    every replication through one numpy recurrence pass (requires ``run``
    to be a :class:`ReplicationSpec`), ``"loop"`` forces one simulation
    per replication, and ``"auto"`` vectorizes whenever it can. The
    per-replication estimates are folded into the summary in stream
    order, so every engine (and any ``n_jobs``) yields a bit-identical
    summary for the same seed.

    On the loop engine, ``n_jobs > 1`` fans the replications out over a
    process pool; ``run`` must then be picklable (a module-level function,
    a ``functools.partial`` thereof, or a :class:`ReplicationSpec`) to
    cross the process boundary. The pickling probe only runs on that
    parallel path — a serial or vectorized call never pays it — and a
    non-picklable callable falls back to serial execution with a warning.
    """
    _check_common(n_replications, estimator)
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    vectorized = _resolve_engine(run, engine)
    if vectorized:
        values: Sequence[float] = replication_values(
            run,
            n_replications=n_replications,
            seed=seed,
            estimator=estimator,
            engine="vectorized",
        )
    else:
        streams = np.random.default_rng(seed).spawn(n_replications)
        n_jobs = min(n_jobs, n_replications)
        worker = partial(_replication_value, run, estimator)
        if n_jobs > 1 and not _picklable(run):
            warnings.warn(
                "replicate(): `run` is not picklable; falling back to serial "
                "execution (pass a module-level function, functools.partial "
                "or ReplicationSpec to enable n_jobs)",
                RuntimeWarning,
                stacklevel=2,
            )
            n_jobs = 1
        if n_jobs > 1:
            chunksize = max(1, n_replications // (4 * n_jobs))
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                values = list(pool.map(worker, streams, chunksize=chunksize))
        else:
            values = [worker(rng) for rng in streams]
    stats = OnlineStats()
    for value in values:
        stats.push(float(value))
    return ReplicationSummary(
        n_replications=n_replications,
        mean=stats.mean,
        std=stats.std,
        min=stats.min,
        max=stats.max,
        ci95=normal_confidence_interval(stats.mean, stats.std, stats.n),
    )


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _dataset_count(value) -> int:
    """An integral data-set count — integers only, never truncated."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(
            f"dataset_counts entries must be integers, got {value!r}"
        )
    return int(value)


def throughput_vs_datasets(
    run: Callable[[np.random.Generator, int], SimulationResult]
    | ReplicationSpec,
    dataset_counts: Sequence[int],
    *,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Throughput estimate as a function of the number of data sets.

    Simulates once at ``max(dataset_counts)`` and reuses the completion
    prefix for the smaller counts (exactly how a single long run would be
    inspected over time), yielding the Fig. 10 convergence series.

    ``dataset_counts`` must hold integers (numpy integer scalars are
    fine); a float count is rejected instead of silently truncated, and
    all validation happens before ``run`` is invoked. ``run`` may be a
    ``(rng, n) -> SimulationResult`` callable or a
    :class:`ReplicationSpec`, whose workload size is swept.
    """
    counts = sorted({_dataset_count(c) for c in dataset_counts})
    if not counts or counts[0] < 1:
        raise ValueError("dataset_counts must contain positive integers")
    if isinstance(run, ReplicationSpec):
        spec = run

        def run(rng, n, _spec=spec):
            return _spec.with_datasets(n)(rng)

    rng = np.random.default_rng(seed)
    result = run(rng, counts[-1])
    return [(k, result.throughput_after(k)) for k in counts]
