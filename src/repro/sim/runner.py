"""Replication runners: many independent simulations, summarized.

Reproduces the paper's Section 7.2/7.3 methodology: run 500 independent
replications of 10…10 000 data sets and report min / max / average /
standard deviation of the throughput estimator.
"""

from __future__ import annotations

import pickle
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.sim.results import SimulationResult
from repro.sim.stats import OnlineStats, normal_confidence_interval


@dataclass(frozen=True)
class ReplicationSummary:
    """Summary of the throughput across independent replications."""

    n_replications: int
    mean: float
    std: float
    min: float
    max: float
    ci95: tuple[float, float]

    @property
    def relative_std(self) -> float:
        """Std dev over mean — the paper's ≈2% @5k / ≈1% @10k metric."""
        return self.std / self.mean if self.mean else 0.0


def _replication_value(
    run: Callable[[np.random.Generator], SimulationResult],
    estimator: str,
    rng: np.random.Generator,
) -> float:
    result = run(rng)
    return (
        result.throughput
        if estimator == "total"
        else result.steady_state_throughput()
    )


def replicate(
    run: Callable[[np.random.Generator], SimulationResult],
    *,
    n_replications: int,
    seed: int = 0,
    estimator: str = "total",
    n_jobs: int = 1,
) -> ReplicationSummary:
    """Run ``n_replications`` independent simulations and summarize.

    ``run`` receives a child generator spawned from ``seed`` (independent
    streams). ``estimator`` selects ``"total"`` (paper's completed/total
    time) or ``"steady"`` (warm-up discarded).

    ``n_jobs > 1`` fans the replications out over a process pool. The
    streams are already independent and the per-replication estimates are
    folded into the summary in stream order regardless of completion
    order, so the result is bit-identical to a serial run with the same
    seed. ``run`` must be picklable (a module-level function or
    ``functools.partial`` thereof) to cross the process boundary; a
    non-picklable callable falls back to serial execution with a warning.
    """
    if n_replications < 1:
        raise ValueError("n_replications must be >= 1")
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    streams = np.random.default_rng(seed).spawn(n_replications)
    n_jobs = min(n_jobs, n_replications)
    if n_jobs > 1 and not _picklable(run):
        warnings.warn(
            "replicate(): `run` is not picklable; falling back to serial "
            "execution (pass a module-level function or functools.partial "
            "to enable n_jobs)",
            RuntimeWarning,
            stacklevel=2,
        )
        n_jobs = 1
    worker = partial(_replication_value, run, estimator)
    if n_jobs > 1:
        chunksize = max(1, n_replications // (4 * n_jobs))
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            values = list(pool.map(worker, streams, chunksize=chunksize))
    else:
        values = [worker(rng) for rng in streams]
    stats = OnlineStats()
    for value in values:
        stats.push(value)
    return ReplicationSummary(
        n_replications=n_replications,
        mean=stats.mean,
        std=stats.std,
        min=stats.min,
        max=stats.max,
        ci95=normal_confidence_interval(stats.mean, stats.std, stats.n),
    )


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def throughput_vs_datasets(
    run: Callable[[np.random.Generator, int], SimulationResult],
    dataset_counts: Sequence[int],
    *,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Throughput estimate as a function of the number of data sets.

    Simulates once at ``max(dataset_counts)`` and reuses the completion
    prefix for the smaller counts (exactly how a single long run would be
    inspected over time), yielding the Fig. 10 convergence series.
    """
    counts = sorted(set(int(c) for c in dataset_counts))
    if not counts or counts[0] < 1:
        raise ValueError("dataset_counts must contain positive integers")
    rng = np.random.default_rng(seed)
    result = run(rng, counts[-1])
    return [(k, result.throughput_after(k)) for k in counts]
