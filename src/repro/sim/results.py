"""Common result record of both simulators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    ``completion_times[k]`` is the instant the ``k``-th data set left the
    last stage. The paper's estimator divides processed instances by total
    completion time; :meth:`throughput_after` reproduces the Fig. 10/11
    convergence curves from a single run.

    ``latencies`` (system simulator only) holds, per *data set index*
    ``n``, the sojourn time between the start of the data set's first
    computation and the end of its last one — the latency metric of the
    throughput/latency trade-off literature the paper builds on
    (Subhlok & Vondran).
    """

    completion_times: np.ndarray
    n_events: int
    wall_time: float
    latencies: np.ndarray | None = None

    @property
    def n_processed(self) -> int:
        return int(self.completion_times.size)

    @property
    def makespan(self) -> float:
        return float(self.completion_times[-1]) if self.n_processed else 0.0

    @property
    def throughput(self) -> float:
        """Processed data sets divided by total completion time."""
        if self.n_processed == 0 or self.makespan == 0.0:
            return 0.0
        return self.n_processed / self.makespan

    def throughput_after(self, k: int) -> float:
        """Throughput estimate using only the first ``k`` completions."""
        if k < 1 or k > self.n_processed:
            raise ValueError(f"k={k} outside 1..{self.n_processed}")
        t = float(self.completion_times[k - 1])
        return k / t if t > 0 else 0.0

    def windowed_throughput(self, lo: float = 0.1, hi: float = 0.5) -> float:
        """Completion rate inside a quantile window of the run.

        ``(count(hi) - count(lo)) / (t_hi - t_lo)``. Use this on systems
        with heterogeneous branches: under unbounded buffers the branches
        complete at different rates, so once the fast branch exhausts its
        finite workload the tail of the run no longer reflects the steady
        state. A window ending before the first branch exhaustion (e.g.
        ``hi <= 1/m`` of the workload per path times the path count)
        measures the true combined rate.
        """
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"need 0 <= lo < hi <= 1, got ({lo}, {hi})")
        n = self.n_processed
        i0, i1 = int(n * lo), max(int(n * hi), int(n * lo) + 2)
        if i1 > n:
            raise ValueError("window too narrow for the number of completions")
        t0 = float(self.completion_times[i0 - 1]) if i0 > 0 else 0.0
        t1 = float(self.completion_times[i1 - 1])
        if t1 <= t0:
            return 0.0
        return (i1 - i0) / (t1 - t0)

    def latency_stats(self, *, warmup_fraction: float = 0.2) -> dict[str, float]:
        """Mean / p50 / p95 / max sojourn time (post warm-up).

        Only available from the system simulator, which tracks per-data-set
        entry instants.
        """
        if self.latencies is None:
            raise ValueError("this run did not record latencies")
        n = self.latencies.size
        tail = self.latencies[int(n * warmup_fraction):]
        return {
            "mean": float(tail.mean()),
            "p50": float(np.quantile(tail, 0.5)),
            "p95": float(np.quantile(tail, 0.95)),
            "max": float(tail.max()),
        }

    def steady_state_throughput(self, *, warmup_fraction: float = 0.2) -> float:
        """Throughput after discarding a warm-up prefix of completions.

        Removes the transient regime (the TPN literature's "transitive
        period") for a less biased estimate on short runs.
        """
        n = self.n_processed
        w = int(n * warmup_fraction)
        if n - w < 2:
            return self.throughput
        t0 = float(self.completion_times[w - 1]) if w > 0 else 0.0
        span = float(self.completion_times[-1]) - t0
        if span <= 0:
            return self.throughput
        return (n - w) / span
