"""Direct simulation of the mapped system (SimGrid stand-in, Section 7).

This simulator never builds a Petri net: it evaluates the Section 2
operational semantics as explicit recurrences over data sets, which makes
it an *independent* implementation against which the event-graph model's
fidelity is checked (paper Section 7.4).

Let ``C[i][n]`` be the completion time of stage ``i`` on data set ``n``
and ``D[i][n]`` the completion time of the transfer of file ``F_{i+1}``
for data set ``n``; write ``R_i`` for the replication of stage ``i``
(data set ``n`` is served at stage ``i`` by team slot ``n mod R_i``).

Overlap model::

    C[i][n] = max(D[i-1][n],  C[i][n - R_i])               + c_i(n)
    D[i][n] = max(C[i][n],    D[i][n - R_i], D[i][n - R_{i+1}]) + d_i(n)

(the processor waits for its previous computation; the transfer waits for
the data, the sender's output port and the receiver's input port, each of
which serves its transfers in round-robin order).

Strict model (receive → compute → send serialized per processor)::

    D[i][n] = max(C[i][n],  Free_recv)  + d_i(n)
    C[i][n] = max(D[i-1][n], Free_comp) + c_i(n)

where ``Free_recv`` is the receiver's previous *send* completion
(``D[i+1-1][n - R_{i+1}]`` — its chain wraps after its send; the
computation for the last stage) and ``Free_comp`` is, for the first
stage, the processor's previous send ``D[0][n - R_0]``.

Random times honour the per-resource I.I.D. hypothesis: each operation
time is its deterministic mean multiplied by a unit-mean draw of the
requested law. The *associated* case of Section 6.2 is supported with
``correlation="associated"``: the unit draws are attached to ``(stage, n)``
(random task sizes shared by every processor touching that task) instead
of being independent per operation.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.exceptions import UnsupportedModelError
from repro.mapping.mapping import Mapping
from repro.sim.results import SimulationResult
from repro.sim.sampling import SampleBuffer, as_factory
from repro.types import ExecutionModel


def _unit_draws(
    law, rng: np.random.Generator, shape: tuple[int, ...]
) -> np.ndarray:
    """Matrix of unit-mean multipliers of the requested law."""
    factory = as_factory(law)
    dist = factory(1.0)
    if dist.name == "deterministic":
        return np.ones(shape)
    buf = SampleBuffer(dist, rng, block=int(np.prod(shape)))
    return buf.draw_block(int(np.prod(shape))).reshape(shape)


def simulate_system(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    n_datasets: int,
    law="deterministic",
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    bandwidth_efficiency: float = 1.0,
    correlation: str = "independent",
) -> SimulationResult:
    """Simulate ``n_datasets`` data sets through the mapped pipeline.

    Parameters
    ----------
    bandwidth_efficiency:
        Fraction of the nominal bandwidth actually usable (the paper's
        SimGrid delivers 92%; pass ``0.92`` to mimic it, or keep ``1.0``
        for the corrected platform the paper uses in its comparisons).
    correlation:
        ``"independent"`` draws one multiplier per operation;
        ``"associated"`` draws one multiplier per (stage, data set) for
        computations and one per (file, data set) for transfers, realizing
        the associated model of Section 6.2 (random task/file sizes on
        deterministic hardware).
    """
    model = ExecutionModel.coerce(model)
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if not 0.0 < bandwidth_efficiency <= 1.0:
        raise ValueError("bandwidth_efficiency must be in (0, 1]")
    if correlation not in ("independent", "associated"):
        raise ValueError(f"unknown correlation mode {correlation!r}")
    if rng is None:
        rng = np.random.default_rng(seed)

    t0 = _time.perf_counter()
    n = mapping.n_stages
    reps = mapping.replication
    n_ops = n_datasets

    # Mean times per (stage, data set): period-m periodic, precomputed per
    # team slot then gathered — fully vectorized.
    comp_mean = np.empty((n, n_ops))
    comm_mean = np.zeros((max(n - 1, 0), n_ops))
    slots = np.arange(n_ops)
    for i in range(n):
        per_slot = np.array(
            [mapping.compute_time(i, p) for p in mapping.teams[i]]
        )
        comp_mean[i] = per_slot[slots % reps[i]]
    for i in range(n - 1):
        pair_times = np.array(
            [
                [mapping.comm_time(i, p, q) for q in mapping.teams[i + 1]]
                for p in mapping.teams[i]
            ]
        )
        comm_mean[i] = (
            pair_times[slots % reps[i], slots % reps[i + 1]]
            / bandwidth_efficiency
        )

    # Random multipliers.
    if correlation == "independent":
        comp_mult = _unit_draws(law, rng, (n, n_ops))
        comm_mult = _unit_draws(law, rng, (max(n - 1, 0), n_ops))
    else:
        # Associated (Section 6.2): random instance sizes on deterministic
        # hardware. The output file of stage i inherits the stage's size
        # draw, positively correlating the computation time and the
        # subsequent transfer time of the same data set (Lemma 1's
        # association), while draws stay I.I.D. across data sets.
        comp_mult = _unit_draws(law, rng, (n, n_ops))
        comm_mult = comp_mult[: max(n - 1, 0), :].copy()

    comp_times = comp_mean * comp_mult
    comm_times = comm_mean * comm_mult

    comp_done = np.zeros((n, n_ops))
    comm_done = np.zeros((max(n - 1, 0), n_ops))

    def prev(arr_row: np.ndarray, idx: int, lag: int) -> float:
        j = idx - lag
        return arr_row[j] if j >= 0 else 0.0

    if model is ExecutionModel.OVERLAP:
        for k in range(n_ops):
            for i in range(n):
                ready = comm_done[i - 1][k] if i > 0 else 0.0
                free = prev(comp_done[i], k, reps[i])
                comp_done[i][k] = max(ready, free) + comp_times[i][k]
                if i < n - 1:
                    out_free = prev(comm_done[i], k, reps[i])
                    in_free = prev(comm_done[i], k, reps[i + 1])
                    comm_done[i][k] = (
                        max(comp_done[i][k], out_free, in_free) + comm_times[i][k]
                    )
    elif model is ExecutionModel.STRICT:
        for k in range(n_ops):
            for i in range(n):
                if i == 0:
                    # Chain: comp -> send -> next comp.
                    free = (
                        prev(comm_done[0], k, reps[0])
                        if n > 1
                        else prev(comp_done[0], k, reps[0])
                    )
                    comp_done[0][k] = free + comp_times[0][k]
                else:
                    # Reception = the transfer; compute follows directly.
                    recv_free = (
                        prev(comm_done[i], k, reps[i])
                        if i < n - 1
                        else prev(comp_done[i], k, reps[i])
                    )
                    start = max(comp_done[i - 1][k], recv_free)
                    comm_done[i - 1][k] = start + comm_times[i - 1][k]
                    comp_done[i][k] = comm_done[i - 1][k] + comp_times[i][k]
    else:  # pragma: no cover
        raise UnsupportedModelError(str(model))

    # Latency of data set n: from the start of its first computation to
    # the end of its last one (per data-set index, not sorted).
    entries = comp_done[0] - comp_times[0]
    latencies = comp_done[n - 1] - entries

    # Heterogeneous branches complete out of order (fast teammates run
    # ahead of slow ones); throughput counts completions by time, so sort.
    return SimulationResult(
        completion_times=np.sort(comp_done[n - 1]),
        n_events=n_ops * (2 * n - 1),
        wall_time=_time.perf_counter() - t0,
        latencies=latencies,
    )
