"""Direct simulation of the mapped system (SimGrid stand-in, Section 7).

This simulator never builds a Petri net: it evaluates the Section 2
operational semantics as explicit recurrences over data sets, which makes
it an *independent* implementation against which the event-graph model's
fidelity is checked (paper Section 7.4).

Let ``C[i][n]`` be the completion time of stage ``i`` on data set ``n``
and ``D[i][n]`` the completion time of the transfer of file ``F_{i+1}``
for data set ``n``; write ``R_i`` for the replication of stage ``i``
(data set ``n`` is served at stage ``i`` by team slot ``n mod R_i``).

Overlap model::

    C[i][n] = max(D[i-1][n],  C[i][n - R_i])               + c_i(n)
    D[i][n] = max(C[i][n],    D[i][n - R_i], D[i][n - R_{i+1}]) + d_i(n)

(the processor waits for its previous computation; the transfer waits for
the data, the sender's output port and the receiver's input port, each of
which serves its transfers in round-robin order).

Strict model (receive → compute → send serialized per processor)::

    D[i][n] = max(C[i][n],  Free_recv)  + d_i(n)
    C[i][n] = max(D[i-1][n], Free_comp) + c_i(n)

where ``Free_recv`` is the receiver's previous *send* completion
(``D[i+1-1][n - R_{i+1}]`` — its chain wraps after its send; the
computation for the last stage) and ``Free_comp`` is, for the first
stage, the processor's previous send ``D[0][n - R_0]``.

Random times honour the per-resource I.I.D. hypothesis: each operation
time is its deterministic mean multiplied by a unit-mean draw of the
requested law. The *associated* case of Section 6.2 is supported with
``correlation="associated"``: the unit draws are attached to ``(stage, n)``
(random task sizes shared by every processor touching that task) instead
of being independent per operation.
"""

from __future__ import annotations

import time as _time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import UnsupportedModelError
from repro.mapping.mapping import Mapping
from repro.sim.results import SimulationResult
from repro.sim.sampling import SampleBuffer, as_factory
from repro.types import ExecutionModel


def _unit_draws(
    law, rng: np.random.Generator, shape: tuple[int, int]
) -> np.ndarray:
    """Matrix of unit-mean multipliers of the requested law."""
    factory = as_factory(law)
    dist = factory(1.0)
    if dist.name == "deterministic":
        return np.ones(shape)
    buf = SampleBuffer(dist, rng, block=shape[0] * shape[1])
    return buf.draw_blocks(shape[0], shape[1])


def _validate_sim_args(
    n_datasets: int, bandwidth_efficiency: float, correlation: str
) -> None:
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if not 0.0 < bandwidth_efficiency <= 1.0:
        raise ValueError("bandwidth_efficiency must be in (0, 1]")
    if correlation not in ("independent", "associated"):
        raise ValueError(f"unknown correlation mode {correlation!r}")


def _mean_times(
    mapping: Mapping, n_ops: int, bandwidth_efficiency: float
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic mean times per (stage, data set), period-m periodic.

    Precomputed per team slot then gathered — fully vectorized, and
    shared across every replication of a batched run (the means depend
    only on the mapping, never on the random stream).
    """
    n = mapping.n_stages
    reps = mapping.replication
    comp_mean = np.empty((n, n_ops))
    comm_mean = np.zeros((max(n - 1, 0), n_ops))
    slots = np.arange(n_ops)
    for i in range(n):
        per_slot = np.array(
            [mapping.compute_time(i, p) for p in mapping.teams[i]]
        )
        comp_mean[i] = per_slot[slots % reps[i]]
    for i in range(n - 1):
        pair_times = np.array(
            [
                [mapping.comm_time(i, p, q) for q in mapping.teams[i + 1]]
                for p in mapping.teams[i]
            ]
        )
        comm_mean[i] = (
            pair_times[slots % reps[i], slots % reps[i + 1]]
            / bandwidth_efficiency
        )
    return comp_mean, comm_mean


def _multipliers(
    law, rng: np.random.Generator, n: int, n_ops: int, correlation: str
) -> tuple[np.ndarray, np.ndarray]:
    """One replication's unit-mean multiplier matrices, in draw order.

    This is the *only* consumer of the random stream: computations first,
    transfers second. Both the serial and the batched engine draw through
    here, which is what makes their per-replication streams identical.
    """
    if correlation == "independent":
        comp_mult = _unit_draws(law, rng, (n, n_ops))
        comm_mult = _unit_draws(law, rng, (max(n - 1, 0), n_ops))
    else:
        # Associated (Section 6.2): random instance sizes on deterministic
        # hardware. The output file of stage i inherits the stage's size
        # draw, positively correlating the computation time and the
        # subsequent transfer time of the same data set (Lemma 1's
        # association), while draws stay I.I.D. across data sets.
        comp_mult = _unit_draws(law, rng, (n, n_ops))
        comm_mult = comp_mult[: max(n - 1, 0), :].copy()
    return comp_mult, comm_mult


def simulate_system(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    n_datasets: int,
    law="deterministic",
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    bandwidth_efficiency: float = 1.0,
    correlation: str = "independent",
) -> SimulationResult:
    """Simulate ``n_datasets`` data sets through the mapped pipeline.

    Parameters
    ----------
    bandwidth_efficiency:
        Fraction of the nominal bandwidth actually usable (the paper's
        SimGrid delivers 92%; pass ``0.92`` to mimic it, or keep ``1.0``
        for the corrected platform the paper uses in its comparisons).
    correlation:
        ``"independent"`` draws one multiplier per operation;
        ``"associated"`` draws one multiplier per (stage, data set) for
        computations and one per (file, data set) for transfers, realizing
        the associated model of Section 6.2 (random task/file sizes on
        deterministic hardware).
    """
    model = ExecutionModel.coerce(model)
    _validate_sim_args(n_datasets, bandwidth_efficiency, correlation)
    if rng is None:
        rng = np.random.default_rng(seed)

    t0 = _time.perf_counter()
    n = mapping.n_stages
    reps = mapping.replication
    n_ops = n_datasets

    comp_mean, comm_mean = _mean_times(mapping, n_ops, bandwidth_efficiency)
    comp_mult, comm_mult = _multipliers(law, rng, n, n_ops, correlation)
    comp_times = comp_mean * comp_mult
    comm_times = comm_mean * comm_mult

    comp_done = np.zeros((n, n_ops))
    comm_done = np.zeros((max(n - 1, 0), n_ops))

    def prev(arr_row: np.ndarray, idx: int, lag: int) -> float:
        j = idx - lag
        return arr_row[j] if j >= 0 else 0.0

    if model is ExecutionModel.OVERLAP:
        for k in range(n_ops):
            for i in range(n):
                ready = comm_done[i - 1][k] if i > 0 else 0.0
                free = prev(comp_done[i], k, reps[i])
                comp_done[i][k] = max(ready, free) + comp_times[i][k]
                if i < n - 1:
                    out_free = prev(comm_done[i], k, reps[i])
                    in_free = prev(comm_done[i], k, reps[i + 1])
                    comm_done[i][k] = (
                        max(comp_done[i][k], out_free, in_free) + comm_times[i][k]
                    )
    elif model is ExecutionModel.STRICT:
        for k in range(n_ops):
            for i in range(n):
                if i == 0:
                    # Chain: comp -> send -> next comp.
                    free = (
                        prev(comm_done[0], k, reps[0])
                        if n > 1
                        else prev(comp_done[0], k, reps[0])
                    )
                    comp_done[0][k] = free + comp_times[0][k]
                else:
                    # Reception = the transfer; compute follows directly.
                    recv_free = (
                        prev(comm_done[i], k, reps[i])
                        if i < n - 1
                        else prev(comp_done[i], k, reps[i])
                    )
                    start = max(comp_done[i - 1][k], recv_free)
                    comm_done[i - 1][k] = start + comm_times[i - 1][k]
                    comp_done[i][k] = comm_done[i - 1][k] + comp_times[i][k]
    else:  # pragma: no cover
        raise UnsupportedModelError(str(model))

    # Latency of data set n: from the start of its first computation to
    # the end of its last one (per data-set index, not sorted).
    entries = comp_done[0] - comp_times[0]
    latencies = comp_done[n - 1] - entries

    # Heterogeneous branches complete out of order (fast teammates run
    # ahead of slow ones); throughput counts completions by time, so sort.
    return SimulationResult(
        completion_times=np.sort(comp_done[n - 1]),
        n_events=n_ops * (2 * n - 1),
        wall_time=_time.perf_counter() - t0,
        latencies=latencies,
    )


# ----------------------------------------------------------------------
# Batched engine: replications as an axis, not a loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchSimulationResult:
    """Outcome of ``R`` replications evaluated in one recurrence pass.

    ``completion_times[r]`` is the sorted completion-time vector of
    replication ``r`` — row ``r`` is bit-identical to
    ``simulate_system(..., rng=rngs[r]).completion_times``. ``n_events``
    counts one replication (they are all alike); :meth:`result` rebuilds
    the per-replication :class:`SimulationResult` view.
    """

    completion_times: np.ndarray  # (R, n_datasets), rows sorted
    n_events: int  # per replication
    wall_time: float  # for the whole batch
    latencies: np.ndarray  # (R, n_datasets), per data-set index

    @property
    def n_replications(self) -> int:
        return int(self.completion_times.shape[0])

    @property
    def n_datasets(self) -> int:
        return int(self.completion_times.shape[1])

    def result(self, r: int) -> SimulationResult:
        """Replication ``r`` as a standalone :class:`SimulationResult`."""
        return SimulationResult(
            completion_times=self.completion_times[r],
            n_events=self.n_events,
            wall_time=self.wall_time,
            latencies=self.latencies[r],
        )

    def throughput(self) -> np.ndarray:
        """Per-replication total throughput, shape ``(R,)``.

        Same arithmetic as :attr:`SimulationResult.throughput` applied
        along the replication axis, so each entry is bit-identical to the
        serial estimator.
        """
        makespan = self.completion_times[:, -1]
        with np.errstate(divide="ignore", invalid="ignore"):
            thr = self.n_datasets / makespan
        return np.where(makespan == 0.0, 0.0, thr)

    def steady_state_throughput(
        self, *, warmup_fraction: float = 0.2
    ) -> np.ndarray:
        """Per-replication warm-up-discarded throughput, shape ``(R,)``."""
        n = self.n_datasets
        w = int(n * warmup_fraction)
        total = self.throughput()
        if n - w < 2:
            return total
        if w > 0:
            t0 = self.completion_times[:, w - 1]
        else:
            t0 = np.zeros(self.n_replications)
        span = self.completion_times[:, -1] - t0
        with np.errstate(divide="ignore", invalid="ignore"):
            steady = (n - w) / span
        return np.where(span <= 0, total, steady)


def simulate_system_batch(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    n_datasets: int,
    rngs: Sequence[np.random.Generator],
    law="deterministic",
    bandwidth_efficiency: float = 1.0,
    correlation: str = "independent",
) -> BatchSimulationResult:
    """Evaluate one independent replication per generator in ``rngs``.

    The Section 2 recurrences are sequential in the data-set index but
    fully independent across replications, so every state array is lifted
    from shape ``(R_i lags,)`` to ``(R,)`` and the recurrence runs once,
    stepping all replications together. Each replication's multipliers
    are drawn as a block from *its own* generator in the serial draw
    order, so replication ``r`` is bit-identical to
    ``simulate_system(..., rng=rngs[r])`` — the batch is a faster
    evaluation order, never a different experiment.
    """
    model = ExecutionModel.coerce(model)
    _validate_sim_args(n_datasets, bandwidth_efficiency, correlation)
    n_reps = len(rngs)
    if n_reps < 1:
        raise ValueError("rngs must hold at least one generator")

    t0 = _time.perf_counter()
    n = mapping.n_stages
    reps = mapping.replication
    n_ops = n_datasets

    comp_mean, comm_mean = _mean_times(mapping, n_ops, bandwidth_efficiency)

    # (stage, data set, replication): the replication axis is last, so the
    # inner-loop operands comp_times[i, k] are contiguous (R,) vectors.
    comp_times = np.empty((n, n_ops, n_reps))
    comm_times = np.empty((max(n - 1, 0), n_ops, n_reps))
    for r, rng in enumerate(rngs):
        comp_mult, comm_mult = _multipliers(law, rng, n, n_ops, correlation)
        comp_times[:, :, r] = comp_mean * comp_mult
        comm_times[:, :, r] = comm_mean * comm_mult

    comp_done = np.zeros((n, n_ops, n_reps))
    comm_done = np.zeros((max(n - 1, 0), n_ops, n_reps))
    zeros = np.zeros(n_reps)

    def prev(arr_stage: np.ndarray, idx: int, lag: int) -> np.ndarray:
        j = idx - lag
        return arr_stage[j] if j >= 0 else zeros

    if model is ExecutionModel.OVERLAP:
        for k in range(n_ops):
            for i in range(n):
                ready = comm_done[i - 1, k] if i > 0 else zeros
                free = prev(comp_done[i], k, reps[i])
                out = comp_done[i, k]
                np.maximum(ready, free, out=out)
                out += comp_times[i, k]
                if i < n - 1:
                    out_free = prev(comm_done[i], k, reps[i])
                    in_free = prev(comm_done[i], k, reps[i + 1])
                    done = comm_done[i, k]
                    np.maximum(out, out_free, out=done)
                    np.maximum(done, in_free, out=done)
                    done += comm_times[i, k]
    elif model is ExecutionModel.STRICT:
        for k in range(n_ops):
            for i in range(n):
                if i == 0:
                    # Chain: comp -> send -> next comp.
                    free = (
                        prev(comm_done[0], k, reps[0])
                        if n > 1
                        else prev(comp_done[0], k, reps[0])
                    )
                    np.add(free, comp_times[0, k], out=comp_done[0, k])
                else:
                    # Reception = the transfer; compute follows directly.
                    recv_free = (
                        prev(comm_done[i], k, reps[i])
                        if i < n - 1
                        else prev(comp_done[i], k, reps[i])
                    )
                    done = comm_done[i - 1, k]
                    np.maximum(comp_done[i - 1, k], recv_free, out=done)
                    done += comm_times[i - 1, k]
                    np.add(done, comp_times[i, k], out=comp_done[i, k])
    else:  # pragma: no cover
        raise UnsupportedModelError(str(model))

    # Same derived quantities as the serial path, along the batch axis:
    # latencies per data-set index, completions sorted by time per
    # replication (columns hold replications until the final transpose).
    entries = comp_done[0] - comp_times[0]
    latencies = comp_done[n - 1] - entries
    completion = np.sort(comp_done[n - 1], axis=0)
    return BatchSimulationResult(
        completion_times=np.ascontiguousarray(completion.T),
        n_events=n_ops * (2 * n - 1),
        wall_time=_time.perf_counter() - t0,
        latencies=np.ascontiguousarray(latencies.T),
    )
