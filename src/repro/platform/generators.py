"""Random platform generators.

The experimental section of the paper draws processor speeds and link
bandwidths uniformly so that computation times fall in 5…15 s or
10…1000 s. We generate *times* directly by normalizing speeds/bandwidths
to the inverse of drawn times (reference work/file size of 1); this matches
the paper's convention of reporting ranges in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidPlatformError
from repro.platform.topology import Platform
from repro.platform.processor import Processor


def random_platform(
    n_processors: int,
    rng: np.random.Generator,
    *,
    speed_range: tuple[float, float] = (1.0, 10.0),
    bandwidth_range: tuple[float, float] = (1.0, 10.0),
    symmetric: bool = True,
) -> Platform:
    """Draw a fully heterogeneous platform.

    Speeds and bandwidths are uniform over the given (positive) ranges. With
    ``symmetric=True`` (default, like the paper's star networks) the
    bandwidth matrix is symmetrized by its upper triangle.
    """
    if n_processors < 1:
        raise InvalidPlatformError("n_processors must be >= 1")
    lo_s, hi_s = speed_range
    lo_b, hi_b = bandwidth_range
    if lo_s <= 0 or hi_s < lo_s or lo_b <= 0 or hi_b < lo_b:
        raise InvalidPlatformError("speed/bandwidth ranges must be positive")
    speeds = rng.uniform(lo_s, hi_s, size=n_processors)
    bw = rng.uniform(lo_b, hi_b, size=(n_processors, n_processors))
    if symmetric:
        bw = np.triu(bw, 1)
        bw = bw + bw.T
        np.fill_diagonal(bw, hi_b)  # diagonal is never used for transfers
    return Platform((Processor(float(s)) for s in speeds), bw)
