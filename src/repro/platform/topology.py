"""Platform topology: processors plus a bandwidth matrix.

The paper assumes bidirectional (possibly logical) links ``link_{p,q}``
between any processor pair, with bandwidth ``b_{p,q}`` bytes per second; a
star-shaped physical network with a central switch is the canonical
realization. We store a full ``M × M`` bandwidth matrix. Bandwidths need not
be symmetric (the model only ever uses the ``p → q`` direction for a file
flowing from ``P_p`` to ``P_q``), although the generators below produce
symmetric matrices like the paper's experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidPlatformError
from repro.platform.processor import Processor


class Platform:
    """A set of processors and the bandwidths of the links between them."""

    __slots__ = ("_processors", "_bandwidth")

    def __init__(
        self,
        processors: Iterable[Processor],
        bandwidth: np.ndarray | Sequence[Sequence[float]],
    ) -> None:
        procs = tuple(
            p if p.name else Processor(p.speed, f"P{i + 1}")
            for i, p in enumerate(processors)
        )
        if not procs:
            raise InvalidPlatformError("a platform needs at least one processor")
        bw = np.asarray(bandwidth, dtype=float)
        m = len(procs)
        if bw.shape != (m, m):
            raise InvalidPlatformError(
                f"bandwidth matrix must be {m}x{m}, got shape {bw.shape}"
            )
        off_diag = bw[~np.eye(m, dtype=bool)]
        if off_diag.size and not (off_diag > 0).all():
            raise InvalidPlatformError("all link bandwidths must be > 0")
        self._processors = procs
        self._bandwidth = bw
        self._bandwidth.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_speeds(
        cls,
        speeds: Sequence[float],
        bandwidth: np.ndarray | Sequence[Sequence[float]] | float,
    ) -> "Platform":
        """Build a platform from a speed vector.

        ``bandwidth`` may be a full matrix or a scalar (uniform network).
        """
        m = len(speeds)
        if np.isscalar(bandwidth):
            bw = np.full((m, m), float(bandwidth))  # type: ignore[arg-type]
        else:
            bw = np.asarray(bandwidth, dtype=float)
        return cls((Processor(float(s)) for s in speeds), bw)

    @classmethod
    def homogeneous(cls, n: int, speed: float, bandwidth: float) -> "Platform":
        """``n`` identical processors on a uniform network."""
        return cls.from_speeds([speed] * n, bandwidth)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """Number of processors ``M``."""
        return len(self._processors)

    @property
    def processors(self) -> tuple[Processor, ...]:
        return self._processors

    @property
    def speeds(self) -> np.ndarray:
        """Vector ``(s_1, …, s_M)``."""
        return np.array([p.speed for p in self._processors], dtype=float)

    @property
    def bandwidth_matrix(self) -> np.ndarray:
        """Read-only ``M × M`` matrix of ``b_{p,q}``."""
        return self._bandwidth

    def __len__(self) -> int:
        return len(self._processors)

    def __getitem__(self, p: int) -> Processor:
        return self._processors[p]

    def __repr__(self) -> str:
        return f"Platform(M={self.n_processors})"

    # ------------------------------------------------------------------
    # Model quantities
    # ------------------------------------------------------------------
    def bandwidth(self, p: int, q: int) -> float:
        """Bandwidth ``b_{p,q}`` of the link from ``P_p`` to ``P_q``."""
        return float(self._bandwidth[p, q])

    def transfer_time(self, size: float, p: int, q: int) -> float:
        """Time ``δ / b_{p,q}`` to ship ``size`` bytes from ``P_p`` to ``P_q``.

        A zero-size file costs zero time regardless of the link (also
        covering the degenerate ``p == q`` case where the paper's model
        never transfers anything).
        """
        if size == 0.0:
            return 0.0
        if p == q:
            return 0.0
        return size / self.bandwidth(p, q)

    def compute_time(self, work: float, p: int) -> float:
        """Time ``w / s_p`` for ``work`` flop on ``P_p``."""
        return self._processors[p].compute_time(work)
