"""Processor description."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidPlatformError


@dataclass(frozen=True, slots=True)
class Processor:
    """Processor ``P_p`` with speed ``s_p`` in flop per second.

    The paper's platforms are fully heterogeneous: every processor may have
    a different speed and every (logical) link a different bandwidth. A
    processor's speed must be strictly positive — a zero-speed processor
    could never finish a stage, making the throughput trivially zero.
    """

    speed: float
    name: str = ""

    def __post_init__(self) -> None:
        if not self.speed > 0:
            raise InvalidPlatformError(f"processor speed must be > 0, got {self.speed}")

    def compute_time(self, work: float) -> float:
        """Time ``w / s_p`` to process ``work`` flop on this processor."""
        return work / self.speed
