"""Fully heterogeneous target platforms (paper Section 2.1)."""

from repro.platform.processor import Processor
from repro.platform.topology import Platform
from repro.platform.generators import random_platform

__all__ = ["Processor", "Platform", "random_platform"]
