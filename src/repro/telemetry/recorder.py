"""Crash-safe JSONL flight recorder with size-based rotation.

One line per event, ``json.dumps(..., sort_keys=True)``, flushed (and
optionally fsync'd) per write — the same torn-tail discipline as the
campaign :class:`~repro.campaign.store.ResultStore`.  On open, a torn
final line (a crash mid-write) is truncated back to the last newline;
on read, undecodable lines are skipped and counted rather than fatal.

Rotation is size-based: when the live file would exceed ``max_bytes``
it is renamed to ``<path>.1`` (older generations shift to ``.2`` …
``.keep``, the oldest is dropped) and a fresh file is started.
:func:`read_events` and :func:`find_trace` read rotated generations
oldest-first so a trace survives rotation boundaries.

Events carrying a ``duration_s`` at or above ``slow_threshold_s`` are
stamped ``"slow": true`` and logged at WARNING — the slow-request log.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path

from .clock import wall_clock
from .logs import get_logger

__all__ = ["FlightRecorder", "find_trace", "read_events"]

log = get_logger("telemetry.recorder")


class FlightRecorder:
    """Append-only JSONL event log for one service process."""

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int = 16_000_000,
        keep: int = 3,
        fsync: bool = False,
        slow_threshold_s: float | None = None,
        clock: Callable[[], float] = wall_clock,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if keep < 1:
            raise ValueError("keep at least one rotated generation")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self.fsync = bool(fsync)
        self.slow_threshold_s = slow_threshold_s
        self._clock = clock
        self._lock = threading.Lock()
        self._fh = None
        self._size = 0
        self.events_written = 0
        self.rotations = 0
        self.repaired_bytes = 0

    # -- file lifecycle -------------------------------------------------

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._fh = open(self.path, "ab")
        self._size = self._fh.tell()

    def _repair_tail(self) -> None:
        """Truncate a torn (newline-less) final line left by a crash."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "rb+") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            fh.seek(0)
            data = fh.read()
            cut = data.rfind(b"\n") + 1
            fh.truncate(cut)
            self.repaired_bytes += size - cut
        log.warning("repaired torn tail in %s (%d bytes dropped)", self.path, size - cut)

    def _rotate(self) -> None:
        self._fh.close()
        self._fh = None
        oldest = self.path.with_name(self.path.name + f".{self.keep}")
        oldest.unlink(missing_ok=True)
        for gen in range(self.keep - 1, 0, -1):
            src = self.path.with_name(self.path.name + f".{gen}")
            if src.exists():
                os.replace(src, self.path.with_name(self.path.name + f".{gen + 1}"))
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self.rotations += 1
        self._open()

    # -- recording ------------------------------------------------------

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the event dict as written."""
        event = {"kind": kind, "ts": round(self._clock(), 6)}
        event.update(fields)
        duration = event.get("duration_s")
        if (
            self.slow_threshold_s is not None
            and isinstance(duration, (int, float))
            and duration >= self.slow_threshold_s
        ):
            event["slow"] = True
            log.warning(
                "slow request: kind=%s request_id=%s duration=%.6fs (threshold %.6fs)",
                kind,
                event.get("request_id"),
                duration,
                self.slow_threshold_s,
            )
        line = (json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n").encode()
        with self._lock:
            if self._fh is None:
                self._open()
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._size += len(line)
            self.events_written += 1
        return event

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> FlightRecorder:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "events_written": self.events_written,
            "rotations": self.rotations,
            "repaired_bytes": self.repaired_bytes,
        }


def _generations(path: Path) -> list[Path]:
    """Recorder files oldest-first: ``path.N`` … ``path.1``, then ``path``."""
    gens = []
    n = 1
    while True:
        cand = path.with_name(path.name + f".{n}")
        if not cand.exists():
            break
        gens.append(cand)
        n += 1
    return list(reversed(gens)) + ([path] if path.exists() else [])


def read_events(path: str | Path, *, rotated: bool = True) -> list[dict]:
    """Load events from a recorder file (and its rotated generations).

    Undecodable lines — torn tails, partial writes — are skipped.
    """
    path = Path(path)
    files = _generations(path) if rotated else ([path] if path.exists() else [])
    events: list[dict] = []
    for file in files:
        with open(file, "rb") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    obj = json.loads(raw)
                except (ValueError, UnicodeDecodeError):
                    continue
                if isinstance(obj, dict):
                    events.append(obj)
    return events


def find_trace(
    request_id: str, paths: Iterable[str | Path]
) -> list[tuple[str, dict]]:
    """Collect every event for ``request_id`` across recorder files.

    Returns ``(source_name, event)`` pairs sorted by wall timestamp —
    the reconstructed client → orchestrator → worker span path.
    """
    hits: list[tuple[str, dict]] = []
    for p in paths:
        p = Path(p)
        for event in read_events(p):
            if event.get("request_id") == request_id:
                hits.append((p.stem, event))
    hits.sort(key=lambda pair: (pair[1].get("ts") or 0.0))
    return hits


def recorder_files(directory: str | Path) -> Iterator[Path]:
    """Yield base (un-rotated) recorder files in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for p in sorted(directory.glob("*.jsonl")):
        yield p
