"""Request-id minting for trace propagation.

A request id is an opaque short hex token minted once per logical
client request (``ServiceClient`` reuses it across retries of the same
call), carried as a top-level ``request_id`` field on protocol frames.
Servers that predate the field ignore unknown top-level keys, so
propagation is backwards compatible in both directions.
"""

from __future__ import annotations

import uuid

__all__ = ["new_request_id"]


def new_request_id() -> str:
    """Mint a fresh 16-hex-char request id (64 random bits)."""
    return uuid.uuid4().hex[:16]
