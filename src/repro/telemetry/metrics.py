"""Process-local metrics registry with mergeable histograms.

Three instrument kinds, mirroring the Prometheus data model without the
dependency:

- :class:`Counter` — monotonically non-decreasing total.  May be
  *callback-backed* (``fn=``), in which case :meth:`collect` reads the
  legacy ad-hoc counter it shadows — the ``metrics`` op then reconciles
  exactly with the older ``stats`` op by construction, because both read
  the same integer.
- :class:`Gauge` — point-in-time value, owned or callback-backed.
- :class:`Histogram` — fixed upper-bound buckets (plus an implicit
  ``+Inf`` overflow), cumulative-sum quantile estimation, and exact
  elementwise merge.  Two histograms merge iff their bucket bounds are
  identical, which makes the merge associative and commutative — the
  orchestrator folds worker snapshots in any order and gets the same
  fleet histogram.

``collect()`` returns a plain-dict *snapshot* (JSON-safe, sorted keys)
that travels over the wire; :func:`merge_snapshots` folds snapshots from
many processes and :func:`render_prometheus` turns any snapshot into
Prometheus text exposition format.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "merge_snapshots",
    "render_prometheus",
]

#: Log-spaced latency bounds (seconds) covering 0.5 ms .. 10 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonic total; owned (``inc``) or callback-backed (``fn``)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", fn: Callable[[], float] | None = None):
        self.name = _check_name(name)
        self.help = help
        self._fn = fn
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if self._fn is not None:
            raise TypeError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge(Counter):
    """Point-in-time value; adds ``set``/``dec`` on top of ``inc``."""

    kind = "gauge"

    def inc(self, amount: int | float = 1) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    def set(self, value: int | float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value = value


class Histogram:
    """Fixed-bucket latency histogram with exact merge.

    ``bounds`` are the finite bucket *upper* bounds, strictly
    increasing; an implicit ``+Inf`` overflow bucket is appended.
    ``counts`` has ``len(bounds) + 1`` entries.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be non-empty and strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def quantile(self, q: float) -> float | None:
        snap = self.snapshot()
        return histogram_quantile(snap["bounds"], snap["counts"], q)

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        snap = {
            "type": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "counts": counts,
            "count": total,
            "sum": acc,
        }
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            snap[label] = histogram_quantile(snap["bounds"], counts, q)
        return snap


def histogram_quantile(bounds: Sequence[float], counts: Sequence[int], q: float) -> float | None:
    """Prometheus-style interpolated quantile over cumulative buckets.

    Returns ``None`` on an empty histogram.  Within a bucket the value
    is linearly interpolated between its lower and upper bound; the
    overflow bucket clamps to the largest finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        cum += c
        if cum >= rank and c > 0:
            if i >= len(bounds):  # overflow bucket: clamp
                return float(bounds[-1])
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            frac = (rank - (cum - c)) / c
            return lo + (hi - lo) * frac
    return float(bounds[-1])


class MetricsRegistry:
    """Named instruments for one process; thread-safe registration.

    Registering a duplicate name raises — each subsystem binds its
    instruments exactly once at construction time.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _register(self, instrument):
        with self._lock:
            if instrument.name in self._instruments:
                raise ValueError(f"metric {instrument.name!r} already registered")
            self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", fn: Callable[[], float] | None = None) -> Counter:
        return self._register(Counter(name, help, fn))

    def gauge(self, name: str, help: str = "", fn: Callable[[], float] | None = None) -> Gauge:
        return self._register(Gauge(name, help, fn))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._instruments.get(name)

    def unregister(self, name: str) -> None:
        """Drop an instrument (no-op if absent).

        Lets a component rebind its instruments when it is rebuilt
        around a longer-lived registry — e.g. a server restarted on an
        engine that outlives it.
        """
        with self._lock:
            self._instruments.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def collect(self) -> dict:
        """JSON-safe snapshot of every instrument, keyed by name."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {inst.name: inst.snapshot() for inst in sorted(instruments, key=lambda i: i.name)}


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold metric snapshots from many processes into one.

    Counters and gauges sum; histograms require identical bucket bounds
    and merge elementwise (associative and commutative).  Instrument
    names present in only some snapshots pass through unchanged.
    """
    merged: dict = {}
    for snap in snapshots:
        for name, entry in snap.items():
            if name not in merged:
                e = dict(entry)
                if e.get("type") == "histogram":
                    e["bounds"] = list(e["bounds"])
                    e["counts"] = list(e["counts"])
                merged[name] = e
                continue
            base = merged[name]
            if base["type"] != entry["type"]:
                raise ValueError(
                    f"cannot merge metric {name!r}: {base['type']} vs {entry['type']}"
                )
            if entry["type"] == "histogram":
                if list(base["bounds"]) != list(entry["bounds"]):
                    raise ValueError(f"cannot merge histogram {name!r}: bucket bounds differ")
                base["counts"] = [a + b for a, b in zip(base["counts"], entry["counts"])]
                base["count"] += entry["count"]
                base["sum"] += entry["sum"]
            else:
                base["value"] += entry["value"]
    for entry in merged.values():
        if entry.get("type") == "histogram":
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                entry[label] = histogram_quantile(entry["bounds"], entry["counts"], q)
    return dict(sorted(merged.items()))


def _fmt(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot (or merged snapshot) as Prometheus text format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "untyped")
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            cum = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cum += count
                lines.append(f'{name}_bucket{{le="{_fmt(float(bound))}"}} {cum}')
            cum += entry["counts"][len(entry["bounds"])]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{name}_sum {_fmt(float(entry['sum']))}")
            lines.append(f"{name}_count {_fmt(entry['count'])}")
        else:
            lines.append(f"{name} {_fmt(entry['value'])}")
    return "\n".join(lines) + "\n"
