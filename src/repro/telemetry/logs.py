"""Stdlib logging plumbing for the ``repro`` tree.

Every module gets its logger through :func:`get_logger`, which pins the
``repro.`` namespace so one :func:`configure_logging` call (wired to the
CLI ``--verbose`` / ``--log-json`` flags) governs the whole tree.
Unconfigured, loggers fall through to stdlib defaults (warnings only) —
library users see nothing unless they opt in.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

__all__ = ["JsonLineFormatter", "configure_logging", "get_logger"]

ROOT_LOGGER = "repro"

#: Marker attribute identifying handlers installed by configure_logging,
#: so repeated calls (tests, REPL) replace rather than stack them.
_HANDLER_TAG = "_repro_telemetry_handler"


def get_logger(name: str) -> logging.Logger:
    """Return the ``repro.*`` logger for ``name``.

    ``get_logger("service.server")`` and
    ``get_logger("repro.service.server")`` are the same logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log line — machine-parseable structured logs."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    *,
    verbose: int = 0,
    log_json: bool = False,
    stream: IO[str] | None = None,
    level: int | None = None,
) -> logging.Logger:
    """Install one handler on the ``repro`` root logger.

    ``verbose`` counts ``-v`` flags: 0 → WARNING, 1 → INFO, ≥2 → DEBUG
    (``level`` overrides the mapping).  Idempotent: re-invocation
    replaces the previously installed handler instead of stacking.
    """
    root = logging.getLogger(ROOT_LOGGER)
    if level is None:
        level = logging.WARNING if verbose <= 0 else (logging.INFO if verbose == 1 else logging.DEBUG)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if log_json:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
    setattr(handler, _HANDLER_TAG, True)
    for existing in list(root.handlers):
        if getattr(existing, _HANDLER_TAG, False):
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
