"""Injectable time sources.

Span timings are measured against a *clock*: any zero-argument callable
returning seconds as a float.  Production code uses
:func:`monotonic_clock` (never goes backwards, immune to NTP steps);
recorder events additionally stamp :func:`wall_clock` so files from
different hosts can be lined up.  Tests inject a :class:`ManualClock`
and advance it explicitly, making every span duration exact.
"""

from __future__ import annotations

import time

__all__ = ["ManualClock", "monotonic_clock", "wall_clock"]


def monotonic_clock() -> float:
    """The default span clock — :func:`time.monotonic`."""
    return time.monotonic()


def wall_clock() -> float:
    """Wall time for cross-host event ordering — :func:`time.time`."""
    return time.time()


class ManualClock:
    """A clock that only moves when told to.

    >>> clk = ManualClock()
    >>> t0 = clk()
    >>> clk.advance(1.5)
    >>> clk() - t0
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("ManualClock cannot move backwards")
        self._now += float(seconds)
