"""Cross-cutting observability layer for the evaluation stack.

Four small, dependency-free pieces that every service tier plugs into:

- :mod:`repro.telemetry.metrics` — a process-local registry of counters,
  gauges and mergeable fixed-bucket latency histograms with Prometheus
  text exposition.  Callback-backed instruments read the legacy ad-hoc
  stats counters directly, so the ``metrics`` op reconciles exactly with
  the older ``stats`` op by construction.
- :mod:`repro.telemetry.profile` — nested, exception-safe span timers
  aggregated into a per-phase time/call/self-time tree.  The engine and
  the orchestrator feed it the same floats their latency histograms
  observe, so the ``profile`` op reconciles exactly with ``metrics``;
  worker trees merge fleet-wide by summing matching paths.
- :mod:`repro.telemetry.trace` — request-id minting and span helpers.
  Every protocol frame may carry a top-level ``request_id`` which the
  orchestrator forwards into per-worker sub-batches and failover
  re-dispatches.
- :mod:`repro.telemetry.recorder` — a crash-safe JSONL flight recorder
  (same torn-tail discipline as the campaign store) with size-based
  rotation and a slow-request threshold log.
- :mod:`repro.telemetry.logs` — stdlib ``logging`` plumbing: namespaced
  ``repro.*`` loggers and an optional JSON line formatter, wired to the
  CLI ``--verbose`` / ``--log-json`` flags.

Clock access goes through an injectable monotonic source
(:mod:`repro.telemetry.clock`) so span timings are deterministic under
test.
"""

from __future__ import annotations

from .clock import ManualClock, monotonic_clock, wall_clock
from .logs import JsonLineFormatter, configure_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
)
from .profile import (
    Profiler,
    active_profiler,
    flatten_phases,
    merge_profile_snapshots,
    profile_span,
    profiling,
    render_profile,
)
from .recorder import FlightRecorder, find_trace, read_events
from .trace import new_request_id

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "ManualClock",
    "MetricsRegistry",
    "Profiler",
    "active_profiler",
    "configure_logging",
    "find_trace",
    "flatten_phases",
    "get_logger",
    "histogram_quantile",
    "merge_profile_snapshots",
    "merge_snapshots",
    "monotonic_clock",
    "new_request_id",
    "profile_span",
    "profiling",
    "read_events",
    "render_profile",
    "render_prometheus",
    "wall_clock",
]
