"""Per-phase cost attribution: nested, exception-safe span timers.

A :class:`Profiler` aggregates wall time into a *phase tree*: each node
holds how many times a phase ran, its total inclusive time, and (in the
snapshot) its *self* time — the part not attributed to any child phase.
The paper's complexity analysis reasons per stage (reachability
exploration vs CTMC assembly vs the linear solve vs the simulation
recurrence); this module makes those stages observable on a live
service, where PR 8's latency histograms only show the opaque envelope.

Three usage layers:

* ``profiler.span("phase")`` — an explicit context-manager span on a
  profiler you hold.  Spans nest per thread (the path is tracked in a
  ``threading.local``), and closure is exception-safe: ``__exit__``
  records the elapsed time whether the body returned or raised.
* ``profiler.record(path, seconds)`` — direct attribution of an
  already-measured duration to a phase path.  The engine feeds its
  ``run_batch`` span *the same floats* it observes into the latency
  histograms, so the profile root and the histogram ``_sum`` reconcile
  exactly, not approximately.
* ``profile_span("phase")`` — the module-level hook for deep library
  code (solvers, reachability, the CTMC builder) that must not carry a
  profiler argument through every signature.  It reads the thread's
  *active* profiler installed by :func:`profiling`; when none is active
  (or the profiler is disabled) it returns one shared no-op span —
  no per-call allocation, near-zero overhead on hot loops.

Time comes from an injectable clock (:mod:`repro.telemetry.clock`), so
tests drive exact arithmetic with ``ManualClock``.  Snapshots are
JSON-safe plain dicts; :func:`merge_profile_snapshots` folds trees from
many workers by summing matching paths — the same associative,
commutative discipline as the metrics histogram merge, with the tree
structure playing the role of the identical bucket bounds.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager

from repro.telemetry.clock import monotonic_clock

__all__ = [
    "NULL_SPAN",
    "Profiler",
    "active_profiler",
    "flatten_phases",
    "merge_profile_snapshots",
    "profile_span",
    "profiling",
    "render_profile",
]


class _Node:
    """One phase: call count, inclusive total, children by name."""

    __slots__ = ("calls", "total_s", "children")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.children: dict[str, _Node] = {}


class _NullSpan:
    """Shared do-nothing span: the disabled/inactive fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The one instance every disabled/inactive ``span()`` call returns —
#: identity-testable, so tests can assert the hot path allocates nothing.
NULL_SPAN = _NullSpan()


class _Span:
    """A live timed span; created only when the profiler is enabled."""

    __slots__ = ("_profiler", "_name", "_saved", "_t0")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        prof = self._profiler
        local = prof._local
        self._saved = getattr(local, "path", ())
        local.path = self._saved + (self._name,)
        self._t0 = prof.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        prof = self._profiler
        dt = prof.clock() - self._t0
        path = getattr(prof._local, "path", (self._name,))
        prof._local.path = self._saved
        prof.record(path, dt)
        return False


class Profiler:
    """Thread-safe aggregation of spans into one per-phase time tree.

    ``enabled=False`` freezes the profiler: ``span`` returns the shared
    :data:`NULL_SPAN`, ``record`` is a no-op, and the snapshot stays
    empty — the cost of carrying a disabled profiler through the hot
    path is one attribute check.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], float] = monotonic_clock,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self._lock = threading.Lock()
        self._root = _Node()
        self._local = threading.local()

    def span(self, name: str):
        """A context-manager span named ``name``, nested under the
        thread's current span path (exception-safe on exit)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name)

    def record(
        self, path: Sequence[str], seconds: float, *, calls: int = 1
    ) -> None:
        """Attribute ``seconds`` (and ``calls`` runs) to phase ``path``.

        Creates intermediate nodes as needed without counting calls on
        them — a recorded ``("batch", "route")`` does not invent a
        ``batch`` run; the caller records the parent explicitly with the
        float it measured.
        """
        if not self.enabled or not path:
            return
        with self._lock:
            children = self._root.children
            node: _Node | None = None
            for name in path:
                node = children.get(name)
                if node is None:
                    node = children[name] = _Node()
                children = node.children
            node.calls += calls
            node.total_s += float(seconds)

    def reset(self) -> None:
        """Drop every recorded phase (the tree, not the enabled flag)."""
        with self._lock:
            self._root = _Node()

    def snapshot(self) -> dict:
        """JSON-safe ``{"enabled": ..., "phases": tree}`` snapshot.

        Each node carries ``calls``, inclusive ``total_s``, derived
        ``self_s`` (total minus the children's totals, floored at 0 for
        structural nodes that were never recorded themselves), and
        ``children`` when non-empty.
        """
        with self._lock:
            phases = {
                name: _node_snapshot(node)
                for name, node in self._root.children.items()
            }
        return {"enabled": self.enabled, "phases": phases}


def _node_snapshot(node: _Node) -> dict:
    children = {
        name: _node_snapshot(child) for name, child in node.children.items()
    }
    out = {"calls": node.calls, "total_s": node.total_s}
    out["self_s"] = max(
        0.0, node.total_s - sum(c["total_s"] for c in children.values())
    )
    if children:
        out["children"] = children
    return out


# ----------------------------------------------------------------------
# Thread-local activation: spans deep in library code without plumbing
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def active_profiler() -> Profiler | None:
    """The profiler :func:`profiling` installed on this thread, if any."""
    return getattr(_ACTIVE, "profiler", None)


def profile_span(name: str):
    """A span on the thread's active profiler, or the shared no-op.

    This is the hook solver internals use: when no profiler is active
    (direct library use, a process-pool worker) or the active one is
    disabled, the same :data:`NULL_SPAN` instance is returned every
    call — the hot loop pays one lookup, zero allocations.
    """
    prof = getattr(_ACTIVE, "profiler", None)
    if prof is None or not prof.enabled:
        return NULL_SPAN
    return prof.span(name)


@contextmanager
def profiling(profiler: Profiler | None, *, base: Sequence[str] = ()):
    """Install ``profiler`` as this thread's active profiler.

    ``base`` seeds the span path, so library-level ``profile_span``
    calls inside the block land under the caller's phase (the engine
    activates with ``base=("batch", "execute")`` around the evaluator
    pass).  The previous active profiler and path are restored on exit,
    exception or not.  A ``None`` or disabled profiler makes the whole
    block a no-op.
    """
    if profiler is None or not profiler.enabled:
        yield profiler
        return
    prev = getattr(_ACTIVE, "profiler", None)
    local = profiler._local
    prev_path = getattr(local, "path", ())
    _ACTIVE.profiler = profiler
    local.path = tuple(base)
    try:
        yield profiler
    finally:
        _ACTIVE.profiler = prev
        local.path = prev_path


# ----------------------------------------------------------------------
# Snapshot algebra and rendering
# ----------------------------------------------------------------------
def merge_profile_snapshots(*snapshots: dict) -> dict:
    """Fold profile snapshots from many workers into one tree.

    Matching phase paths sum ``calls`` and ``total_s`` (associative and
    commutative, like the identical-bounds histogram merge); paths seen
    in only some snapshots pass through.  ``self_s`` is recomputed from
    the merged totals.
    """
    merged: dict = {}
    enabled = False
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        enabled = enabled or bool(snap.get("enabled"))
        _merge_tree(merged, snap.get("phases") or {})
    _refresh_self(merged)
    return {"enabled": enabled, "phases": merged}


def _merge_tree(into: dict, tree: dict) -> None:
    for name, node in tree.items():
        base = into.get(name)
        if base is None:
            base = into[name] = {"calls": 0, "total_s": 0.0, "self_s": 0.0}
        base["calls"] += int(node.get("calls", 0))
        base["total_s"] += float(node.get("total_s", 0.0))
        children = node.get("children")
        if children:
            _merge_tree(base.setdefault("children", {}), children)


def _refresh_self(tree: dict) -> None:
    for node in tree.values():
        children = node.get("children") or {}
        node["self_s"] = max(
            0.0,
            node["total_s"] - sum(c["total_s"] for c in children.values()),
        )
        _refresh_self(children)


def flatten_phases(
    phases: dict, prefix: str = ""
) -> list[tuple[str, dict]]:
    """Depth-first ``(path, node)`` rows of a phase tree.

    Paths join with ``/`` (``batch/execute/reachability``) — the shape
    ``cli top`` ranks by ``self_s`` for its hottest-phases panel.
    """
    rows: list[tuple[str, dict]] = []
    for name, node in phases.items():
        path = f"{prefix}/{name}" if prefix else name
        rows.append((path, node))
        rows.extend(flatten_phases(node.get("children") or {}, path))
    return rows


def render_profile(phases: dict, *, indent: int = 2) -> str:
    """Fixed-width table of a phase tree (total-time descending)."""
    lines = [
        f"{'phase':34s} {'calls':>8s} {'total_s':>11s} {'self_s':>11s}"
    ]

    def walk(tree: dict, depth: int) -> None:
        order: Iterable[str] = sorted(
            tree, key=lambda n: (-tree[n].get("total_s", 0.0), n)
        )
        for name in order:
            node = tree[name]
            label = " " * (indent * depth) + name
            lines.append(
                f"{label:34s} {node.get('calls', 0):>8d} "
                f"{node.get('total_s', 0.0):>11.6f} "
                f"{node.get('self_s', 0.0):>11.6f}"
            )
            walk(node.get("children") or {}, depth + 1)

    walk(phases, 0)
    return "\n".join(lines)
