"""Per-resource cycle-times and the ``Mct`` period lower bound (Section 2.3).

For each processor ``P_p`` executing stage ``T_i`` the paper defines a
reception time ``C_in(p)``, a computation time ``C_comp(p)`` and a
transmission time ``C_out(p)``, all *per global data set* (a replicated
processor only touches one data set out of ``R_i``). The resource cycle
time is::

    Overlap:  C_exec(p) = max(C_in(p), C_comp(p), C_out(p))
    Strict:   C_exec(p) = C_in(p) + C_comp(p) + C_out(p)

and ``Mct = max_p C_exec(p)`` is a lower bound for the period
``P = 1/ρ``. A mapping has a *critical resource* when the bound is tight;
the surprising fact studied by the paper (and Table 1) is that replication
can make the bound strict.

Two conventions are provided for ``C_comp``:

* ``use_slowest_teammate=False`` (default) — utilization bound
  ``C_comp(p) = w_i / (R_i · s_p)``: the processor's own busy time per
  global data set. This is always a valid lower bound on the period, for
  both models.
* ``use_slowest_teammate=True`` — the paper's Section 2.2 convention
  ``C_comp(p) = w_i / (R_i · s_slow)`` where ``s_slow`` is the slowest
  speed in the team, reflecting the in-order round-robin coupling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.mapping import Mapping
from repro.types import ExecutionModel


@dataclass(frozen=True, slots=True)
class ResourceCycleTimes:
    """Cycle-time decomposition of one processor (per global data set)."""

    proc: int
    stage: int
    c_in: float
    c_comp: float
    c_out: float

    def exec_time(self, model: ExecutionModel) -> float:
        """``C_exec`` under the given execution model."""
        if model is ExecutionModel.OVERLAP:
            return max(self.c_in, self.c_comp, self.c_out)
        return self.c_in + self.c_comp + self.c_out


def _mean_comm_in(mapping: Mapping, stage: int, proc: int) -> float:
    """Average reception time of ``proc`` over its round-robin senders."""
    if stage == 0:
        return 0.0
    senders = mapping.senders_to(stage, proc)
    times = [mapping.comm_time(stage - 1, q, proc) for q in senders]
    return float(np.mean(times)) if times else 0.0


def _mean_comm_out(mapping: Mapping, stage: int, proc: int) -> float:
    """Average transmission time of ``proc`` over its round-robin receivers."""
    if stage == mapping.n_stages - 1:
        return 0.0
    receivers = mapping.receivers_from(stage, proc)
    times = [mapping.comm_time(stage, proc, q) for q in receivers]
    return float(np.mean(times)) if times else 0.0


def cycle_times(
    mapping: Mapping, *, use_slowest_teammate: bool = False
) -> list[ResourceCycleTimes]:
    """Cycle-time decomposition of every processor used by the mapping.

    Each quantity is normalized per *global* data set: processor ``p`` of a
    team of size ``R_i`` touches one data set in ``R_i``, so its per-data-set
    busy times are the raw operation times divided by ``R_i``.
    """
    out: list[ResourceCycleTimes] = []
    for stage, proc in mapping.iter_stage_procs():
        r = mapping.replication[stage]
        if use_slowest_teammate:
            slow = min(mapping.platform.speeds[q] for q in mapping.teams[stage])
            comp = mapping.application[stage].work / (r * slow)
        else:
            comp = mapping.compute_time(stage, proc) / r
        c_in = _mean_comm_in(mapping, stage, proc) / r
        c_out = _mean_comm_out(mapping, stage, proc) / r
        out.append(ResourceCycleTimes(proc, stage, c_in, comp, c_out))
    return out


def max_cycle_time(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    use_slowest_teammate: bool = False,
) -> float:
    """``Mct = max_p C_exec(p)`` — lower bound on the period (Section 2.3).

    ``1 / Mct`` is the *critical-resource throughput*; the actual throughput
    of the mapping never exceeds it (with the default utilization
    convention), and equals it exactly when a critical resource exists.
    """
    model = ExecutionModel.coerce(model)
    times = cycle_times(mapping, use_slowest_teammate=use_slowest_teammate)
    return max(rc.exec_time(model) for rc in times)


def critical_resource(
    mapping: Mapping,
    model: ExecutionModel | str,
    *,
    use_slowest_teammate: bool = False,
) -> ResourceCycleTimes:
    """The resource achieving ``Mct``."""
    model = ExecutionModel.coerce(model)
    times = cycle_times(mapping, use_slowest_teammate=use_slowest_teammate)
    return max(times, key=lambda rc: rc.exec_time(model))
