"""One-to-many mappings of a chain onto a platform (paper Section 2.2)."""

from repro.mapping.mapping import Mapping
from repro.mapping.roundrobin import lcm_all, path_of_row, all_paths
from repro.mapping.resources import ResourceCycleTimes, cycle_times, max_cycle_time
from repro.mapping.generators import random_mapping, random_replication
from repro.mapping.examples import example_a, example_c, single_communication
from repro.mapping.heuristics import (
    SearchResult,
    balanced_replication,
    greedy_hill_climb,
    random_restart_search,
)

__all__ = [
    "Mapping",
    "lcm_all",
    "path_of_row",
    "all_paths",
    "ResourceCycleTimes",
    "cycle_times",
    "max_cycle_time",
    "random_mapping",
    "random_replication",
    "example_a",
    "example_c",
    "single_communication",
    "SearchResult",
    "balanced_replication",
    "greedy_hill_climb",
    "random_restart_search",
]
