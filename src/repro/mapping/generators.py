"""Random mapping generators for the experimental campaigns (Table 1)."""

from __future__ import annotations

import numpy as np

from repro.application.chain import Application
from repro.exceptions import InvalidMappingError
from repro.mapping.mapping import Mapping
from repro.platform.topology import Platform


def random_replication(
    n_stages: int,
    n_processors: int,
    rng: np.random.Generator,
    *,
    max_replication: int | None = None,
) -> list[int]:
    """Draw a replication vector ``(R_1, …, R_N)`` with ``ΣR_i <= M``.

    Every stage gets at least one processor; the remaining processors are
    spread uniformly at random (bounded by ``max_replication`` per stage
    when given). Raises when ``n_processors < n_stages``.
    """
    if n_processors < n_stages:
        raise InvalidMappingError(
            f"need at least one processor per stage: M={n_processors} < N={n_stages}"
        )
    reps = [1] * n_stages
    spare = n_processors - n_stages
    cap = max_replication if max_replication is not None else n_processors
    # Leave some processors unused with positive probability, like the
    # paper's campaigns where ΣR_i need not equal M.
    extra = int(rng.integers(0, spare + 1))
    for _ in range(extra):
        candidates = [i for i in range(n_stages) if reps[i] < cap]
        if not candidates:
            break
        reps[int(rng.choice(candidates))] += 1
    return reps


def random_mapping(
    application: Application,
    platform: Platform,
    rng: np.random.Generator,
    *,
    replication: list[int] | None = None,
    max_replication: int | None = None,
) -> Mapping:
    """Draw a one-to-many mapping with random teams.

    Processors are permuted uniformly and dealt to stages according to the
    replication vector (drawn by :func:`random_replication` when absent).
    """
    n, m = application.n_stages, platform.n_processors
    reps = (
        list(replication)
        if replication is not None
        else random_replication(n, m, rng, max_replication=max_replication)
    )
    if len(reps) != n:
        raise InvalidMappingError(f"replication vector length {len(reps)} != N={n}")
    if sum(reps) > m:
        raise InvalidMappingError(f"ΣR_i = {sum(reps)} exceeds M = {m}")
    perm = rng.permutation(m).tolist()
    teams: list[list[int]] = []
    k = 0
    for r in reps:
        teams.append(perm[k : k + r])
        k += r
    return Mapping(application, platform, teams)
