"""The paper's running examples as ready-made fixtures.

* **Example A** (Fig. 1): a 4-stage pipeline on a 7-processor platform,
  teams of sizes (1, 2, 3, 1), hence ``m = lcm(1,2,3,1) = 6`` paths. The
  figure's numeric speed/bandwidth labels are not recoverable from the
  published text (the PDF extraction scrambles them), so this fixture uses
  fixed representative heterogeneous values; the *structural* facts of the
  paper (6 paths, TPN shape, component structure) are exactly preserved and
  asserted in the test suite.
* **Example C** (Fig. 6/7): stages replicated on (5, 21, 27, 11)
  processors. Its second communication has ``gcd(21, 27) = 3`` connected
  components, each made of 55 copies of a ``7 × 9`` pattern — the paper's
  showcase for the Young-diagram state-space count.
* :func:`single_communication` builds the two-stage, communication-bound
  system used throughout Section 7 (Figs. 13–17): ``u`` senders, ``v``
  receivers, negligible computations, a single costly communication.
"""

from __future__ import annotations

import numpy as np

from repro.application.chain import Application
from repro.exceptions import InvalidMappingError
from repro.mapping.mapping import Mapping
from repro.platform.topology import Platform


def example_a() -> Mapping:
    """Example A of the paper (Fig. 1): 4 stages on 7 processors.

    Teams: ``T1 → {P0}``, ``T2 → {P1, P2}``, ``T3 → {P3, P4, P5}``,
    ``T4 → {P6}`` (0-based processor indices), giving the 6 round-robin
    paths listed in Section 3.1.

    The numeric labels of the paper's Fig. 1 are not recoverable from the
    published text, so this fixture uses fixed heterogeneous values chosen
    (by seeded search) to reproduce the paper's qualitative findings: the
    Overlap model has a critical resource, while the Strict period
    strictly exceeds every resource cycle-time (Section 4.2's
    "no critical resource" phenomenon; the paper reports
    P = 230.7 > Mct = 215.8 on its own values).
    """
    # Seed 65 of the uniform draw below yields a ~2% Strict gap.
    rng = np.random.default_rng(65)  # fixed: fixture must be deterministic
    app = Application.from_work(
        rng.uniform(50.0, 200.0, 4).tolist(),
        rng.uniform(50.0, 200.0, 3).tolist(),
    )
    speeds = rng.uniform(0.8, 1.4, 7)
    bw = rng.uniform(0.8, 1.4, size=(7, 7))
    bw = np.triu(bw, 1)
    bw = bw + bw.T + np.eye(7)
    platform = Platform.from_speeds(speeds.tolist(), bw)
    return Mapping(app, platform, teams=[[0], [1, 2], [3, 4, 5], [6]])


def uniform_chain(
    replication: "list[int] | tuple[int, ...]",
    *,
    work: float = 1.0,
    file_size: float = 1.0,
    speed: float = 1.0,
    bandwidth: float = 1.0,
) -> Mapping:
    """Identical stages replicated per ``replication``, teams in
    processor order on a homogeneous platform — the shape of every
    replication-structure figure of the paper (and of the campaign
    ``uniform_chain`` system kind)."""
    reps = [int(r) for r in replication]
    app = Application.uniform(len(reps), work, file_size)
    platform = Platform.homogeneous(sum(reps), speed, bandwidth)
    teams, k = [], 0
    for r in reps:
        teams.append(list(range(k, k + r)))
        k += r
    return Mapping(app, platform, teams)


def example_c(
    *, work: float = 100.0, file_size: float = 50.0, speed: float = 1.0,
    bandwidth: float = 1.0,
) -> Mapping:
    """Example C of the paper: stages replicated on (5, 21, 27, 11).

    Uses a homogeneous platform by default (the paper's figure only uses
    the replication structure). The full unrolling has
    ``m = lcm(5, 21, 27, 11) = 10395`` rows, so only the symbolic /
    decomposition methods should be applied to it.
    """
    return uniform_chain(
        [5, 21, 27, 11],
        work=work, file_size=file_size, speed=speed, bandwidth=bandwidth,
    )


def single_communication(
    u: int,
    v: int,
    *,
    comm_time: float = 1.0,
    compute_time: float = 1e-6,
    bandwidths: np.ndarray | None = None,
) -> Mapping:
    """A two-stage system dominated by one communication (Section 7.4).

    ``u`` senders (stage 1) and ``v`` receivers (stage 2), computations of
    negligible duration ``compute_time``, and a single file whose transfer
    takes ``comm_time`` on every link — or heterogeneous times when a
    ``(u+v) × (u+v)`` bandwidth matrix is given (entries are bandwidths for
    a file of size 1, i.e. transfer time from ``p`` to ``q`` is
    ``1 / bandwidths[p, q]``).
    """
    app = Application.from_work(
        [compute_time, compute_time], files=[1.0]
    )
    n = u + v
    if bandwidths is None:
        bw = np.full((n, n), 1.0 / comm_time)
    else:
        bw = np.asarray(bandwidths, dtype=float)
    platform = Platform.from_speeds([1.0] * n, bw)
    return Mapping(app, platform, teams=[list(range(u)), list(range(u, n))])


def _paper_system(**kwargs) -> Mapping:
    # Lazy: repro.experiments imports this module, so the fig10 fixture
    # can only be reached at call time without closing an import cycle.
    from repro.experiments.fig10 import paper_system

    return paper_system(**kwargs)


#: Named example systems, shared by the CLI (``solve <system>``) and the
#: campaign spec builder (``SystemSpec(kind="named", ...)``).
NAMED_SYSTEMS: dict[str, object] = {
    "example_a": example_a,
    "example_c": example_c,
    "paper": _paper_system,
}


def named_system(name: str, **params) -> Mapping:
    """Build one of the :data:`NAMED_SYSTEMS` fixtures by name.

    ``params`` are forwarded to the fixture's builder (e.g. ``work`` /
    ``file_size`` for ``example_c`` and ``paper``).
    """
    try:
        builder = NAMED_SYSTEMS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_SYSTEMS))
        raise InvalidMappingError(
            f"unknown named system {name!r}; available: {known}"
        ) from None
    return builder(**params)
