"""The one-to-many mapping model (paper Section 2.2).

A :class:`Mapping` assigns every stage ``T_i`` to an ordered *team* of
processors. The paper's two structural rules are enforced at construction:

* a processor executes **at most one** stage (one-to-many mapping);
* the members of a team serve successive data sets in **round-robin**
  order (the order of the team tuple is the round-robin order).

The mapping fully determines the deterministic computation time
``c_p = w_i / s_p`` of each processor and the communication time
``d_{p,q} = δ_i / b_{p,q}`` of each file transfer, which are the base
quantities of every throughput computation in the library.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import cached_property
import math

from repro.application.chain import Application
from repro.exceptions import InvalidMappingError
from repro.mapping.roundrobin import all_paths, lcm_all, path_of_row
from repro.platform.topology import Platform


class Mapping:
    """A validated one-to-many mapping of an application onto a platform."""

    def __init__(
        self,
        application: Application,
        platform: Platform,
        teams: Sequence[Sequence[int]],
    ) -> None:
        self.application = application
        self.platform = platform
        self.teams: tuple[tuple[int, ...], ...] = tuple(
            tuple(int(p) for p in team) for team in teams
        )
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n, m = self.application.n_stages, self.platform.n_processors
        if len(self.teams) != n:
            raise InvalidMappingError(
                f"expected {n} teams (one per stage), got {len(self.teams)}"
            )
        seen: dict[int, int] = {}
        for i, team in enumerate(self.teams):
            if not team:
                raise InvalidMappingError(f"stage {i} has an empty team")
            if len(set(team)) != len(team):
                raise InvalidMappingError(f"stage {i} team has duplicates: {team}")
            for p in team:
                if not 0 <= p < m:
                    raise InvalidMappingError(
                        f"stage {i} references processor {p} outside 0..{m - 1}"
                    )
                if p in seen:
                    raise InvalidMappingError(
                        f"processor {p} is assigned to both stage {seen[p]} "
                        f"and stage {i}; a processor executes at most one stage"
                    )
                seen[p] = i

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        return self.application.n_stages

    @cached_property
    def replication(self) -> tuple[int, ...]:
        """Replication vector ``(R_1, …, R_N)`` — team sizes."""
        return tuple(len(t) for t in self.teams)

    @cached_property
    def n_rows(self) -> int:
        """Number of distinct paths ``m = lcm(R_1, …, R_N)`` (Prop. 1)."""
        return lcm_all(self.replication)

    @cached_property
    def used_processors(self) -> tuple[int, ...]:
        """All processors participating in the mapping, sorted."""
        return tuple(sorted(p for team in self.teams for p in team))

    def stage_of(self, proc: int) -> int:
        """Stage index executed by ``proc`` (raises if unused)."""
        for i, team in enumerate(self.teams):
            if proc in team:
                return i
        raise InvalidMappingError(f"processor {proc} is not used by the mapping")

    def processor(self, stage: int, row: int) -> int:
        """Processor executing stage ``stage`` of path ``row`` (0-based)."""
        team = self.teams[stage]
        return team[row % len(team)]

    def rows_of(self, stage: int, proc: int) -> list[int]:
        """Rows (paths) of the full ``m``-row unrolling served by ``proc``.

        These are the rows ``j ≡ idx (mod R_i)`` where ``idx`` is the
        processor's position in its team, in increasing order — the
        round-robin firing order of the processor's transitions in the
        timed Petri net.
        """
        team = self.teams[stage]
        idx = team.index(proc)
        r = len(team)
        return list(range(idx, self.n_rows, r))

    def path(self, row: int) -> tuple[int, ...]:
        """Path followed by data sets ``row, row + m, row + 2m, …``."""
        return path_of_row(self.teams, row)

    def paths(self) -> list[tuple[int, ...]]:
        """All ``m`` distinct paths (Proposition 1)."""
        return all_paths(self.teams)

    def senders_to(self, stage: int, proc: int) -> list[int]:
        """Distinct stage-``stage - 1`` processors sending to ``proc``.

        Follows from the round-robin interleaving: ``proc`` (position
        ``a`` in a team of size ``r``) receives from the stage-``stage-1``
        processors at positions ``≡ a (mod gcd(r, r'))``.
        """
        if stage == 0:
            return []
        return sorted(
            {
                self.processor(stage - 1, j)
                for j in self.rows_of(stage, proc)
            }
        )

    def receivers_from(self, stage: int, proc: int) -> list[int]:
        """Distinct stage-``stage + 1`` processors receiving from ``proc``."""
        if stage == self.n_stages - 1:
            return []
        return sorted(
            {
                self.processor(stage + 1, j)
                for j in self.rows_of(stage, proc)
            }
        )

    def comm_component_count(self, stage: int) -> int:
        """Number of connected components of communication ``F_{stage+1}``.

        Equal to ``gcd(R_i, R_{i+1})`` (paper Section 5.2).
        """
        return math.gcd(self.replication[stage], self.replication[stage + 1])

    # ------------------------------------------------------------------
    # Deterministic times (means of the random versions)
    # ------------------------------------------------------------------
    def compute_time(self, stage: int, proc: int) -> float:
        """Mean computation time ``c_p = w_i / s_p``."""
        return self.platform.compute_time(self.application[stage].work, proc)

    def comm_time(self, stage: int, sender: int, receiver: int) -> float:
        """Mean transfer time of file ``F_{stage+1}``: ``δ_i / b_{p,q}``."""
        return self.platform.transfer_time(
            self.application.file_size(stage), sender, receiver
        )

    def compute_rate(self, stage: int, proc: int) -> float:
        """Rate ``λ = 1 / c_p`` of the exponential computation law."""
        t = self.compute_time(stage, proc)
        if t == 0.0:
            return math.inf
        return 1.0 / t

    def comm_rate(self, stage: int, sender: int, receiver: int) -> float:
        """Rate ``λ = 1 / d_{p,q}`` of the exponential communication law."""
        t = self.comm_time(stage, sender, receiver)
        if t == 0.0:
            return math.inf
        return 1.0 / t

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Mapping(N={self.n_stages}, R={self.replication}, m={self.n_rows})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mapping)
            and self.teams == other.teams
            and self.application == other.application
            and self.platform is other.platform
        )

    def __hash__(self) -> int:
        return hash((id(self.platform), self.application, self.teams))

    def iter_stage_procs(self) -> Iterator[tuple[int, int]]:
        """Yield ``(stage, proc)`` for every assignment."""
        for i, team in enumerate(self.teams):
            for p in team:
                yield i, p
