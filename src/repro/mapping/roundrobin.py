"""Round-robin path arithmetic (paper Proposition 1).

With stage ``T_i`` mapped on ``m_i`` processors served in round-robin, data
set ``n`` is processed, at stage ``i``, by the ``(n mod m_i)``-th team
member. The sequence of processors visited by a data set is its *path*;
Proposition 1 shows there are exactly ``m = lcm(m_1, …, m_N)`` distinct
paths and data set ``n`` follows path ``n mod m``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def lcm_all(values: Sequence[int]) -> int:
    """Least common multiple of a non-empty sequence of positive ints."""
    if not values:
        raise ValueError("lcm of an empty sequence is undefined")
    if any(v < 1 for v in values):
        raise ValueError(f"replication counts must be >= 1, got {list(values)}")
    return math.lcm(*values)


def path_of_row(teams: Sequence[Sequence[int]], row: int) -> tuple[int, ...]:
    """Processors visited by data sets of path ``row`` (Proposition 1).

    ``teams[i]`` is the ordered team of stage ``i``; the path visits
    ``teams[i][row mod len(teams[i])]`` at each stage.
    """
    return tuple(team[row % len(team)] for team in teams)


def all_paths(teams: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
    """All ``lcm(m_1, …, m_N)`` distinct paths, in round-robin order.

    The first path is ``(teams[0][0], …, teams[N-1][0])`` and path ``j``
    is followed by data sets ``j, j + m, j + 2m, …``.
    """
    m = lcm_all([len(t) for t in teams])
    return [path_of_row(teams, j) for j in range(m)]
