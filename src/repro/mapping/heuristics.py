"""Mapping heuristics scored by the exact throughput evaluators.

The paper's conclusion (Section 8) motivates exactly this layer: the
mapping-optimization problem is NP-complete even deterministically [3],
but with the Sections 4-5 evaluators one can *score* candidate mappings
exactly and compare heuristics fairly. This module provides:

* :func:`balanced_replication` — a work-proportional replication baseline
  (heavier stages get more processors, fastest processors first);
* :func:`greedy_hill_climb` — local search over grow/swap moves;
* :func:`random_restart_search` — the classic multi-start wrapper.

All heuristics take a ``mode`` (``"deterministic"`` or ``"exponential"``):
scoring by the exponential evaluator optimizes the Theorem 7 *floor*,
i.e. the throughput guaranteed under any N.B.U.E. variability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.application.chain import Application
from repro.core.components import overlap_throughput
from repro.exceptions import InvalidMappingError
from repro.mapping.generators import random_mapping
from repro.mapping.mapping import Mapping
from repro.platform.topology import Platform


@dataclass(frozen=True)
class SearchResult:
    """Best mapping found and its score."""

    mapping: Mapping
    throughput: float
    evaluations: int


def _score(mapping: Mapping, mode: str, max_states: int) -> float:
    return overlap_throughput(mapping, mode, max_states=max_states)


def balanced_replication(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    max_states: int = 200_000,
) -> SearchResult:
    """Work-proportional baseline.

    Replication budget per stage proportional to ``w_i`` (at least 1,
    total ≤ M); the fastest processors are dealt to the heaviest stages.
    A sensible baseline for the search heuristics to beat (or match).
    """
    n, m = application.n_stages, platform.n_processors
    if m < n:
        raise InvalidMappingError(f"need M >= N, got M={m} N={n}")
    work = application.works
    reps = np.maximum(1, np.floor(work / work.sum() * m).astype(int))
    # Trim overshoot from the least-loaded stages.
    while reps.sum() > m:
        reps[int(np.argmin(work / reps))] -= 1
    # Deal fastest processors to the stages with the highest per-replica load.
    order = np.argsort(-platform.speeds)  # fastest first
    stage_order = np.argsort(-(work / reps))
    teams: list[list[int]] = [[] for _ in range(n)]
    cursor = 0
    for s in stage_order:
        teams[int(s)] = [int(p) for p in order[cursor : cursor + reps[s]]]
        cursor += int(reps[s])
    mapping = Mapping(application, platform, teams)
    return SearchResult(mapping, _score(mapping, mode, max_states), 1)


def _neighbours(mapping: Mapping, rng: np.random.Generator) -> list[Mapping]:
    """Grow-with-idle and swap moves around a mapping."""
    out: list[Mapping] = []
    used = set(mapping.used_processors)
    idle = [p for p in range(mapping.platform.n_processors) if p not in used]
    teams = [list(t) for t in mapping.teams]
    for i in range(len(teams)):
        for p in idle[:3]:
            grown = [list(t) for t in teams]
            grown[i].append(p)
            out.append(Mapping(mapping.application, mapping.platform, grown))
    for _ in range(8):
        i, j = (int(x) for x in rng.integers(len(teams), size=2))
        if i == j:
            continue
        a = int(rng.integers(len(teams[i])))
        b = int(rng.integers(len(teams[j])))
        swapped = [list(t) for t in teams]
        swapped[i][a], swapped[j][b] = swapped[j][b], swapped[i][a]
        out.append(Mapping(mapping.application, mapping.platform, swapped))
    return out


def greedy_hill_climb(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    seed: int = 0,
    max_steps: int = 60,
    start: Mapping | None = None,
    max_states: int = 200_000,
) -> SearchResult:
    """First-improvement local search from a random (or given) start."""
    rng = np.random.default_rng(seed)
    current = (
        start
        if start is not None
        else random_mapping(application, platform, rng, max_replication=4)
    )
    best = _score(current, mode, max_states)
    evals = 1
    for _ in range(max_steps):
        improved = False
        for cand in _neighbours(current, rng):
            rho = _score(cand, mode, max_states)
            evals += 1
            if rho > best * (1 + 1e-12):
                current, best = cand, rho
                improved = True
                break
        if not improved:
            break
    return SearchResult(current, best, evals)


def random_restart_search(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    n_restarts: int = 5,
    seed: int = 0,
    max_states: int = 200_000,
) -> SearchResult:
    """Multi-start hill climbing; also seeds one run from the baseline."""
    best: SearchResult | None = None
    evals = 0
    baseline = balanced_replication(
        application, platform, mode=mode, max_states=max_states
    )
    evals += baseline.evaluations
    seeds: list[Mapping | None] = [baseline.mapping] + [None] * n_restarts
    for k, start in enumerate(seeds):
        result = greedy_hill_climb(
            application,
            platform,
            mode=mode,
            seed=seed + k,
            start=start,
            max_states=max_states,
        )
        evals += result.evaluations
        if best is None or result.throughput > best.throughput:
            best = result
    assert best is not None
    return SearchResult(best.mapping, best.throughput, evals)
