"""Mapping heuristics scored through the unified solver subsystem.

The paper's conclusion (Section 8) motivates exactly this layer: the
mapping-optimization problem is NP-complete even deterministically [3],
but with the Sections 4-5 evaluators one can *score* candidate mappings
exactly and compare heuristics fairly. This module provides:

* :func:`balanced_replication` — a work-proportional replication baseline
  (heavier stages get more processors, fastest processors first);
* :func:`greedy_hill_climb` — local search over grow/swap moves;
* :func:`random_restart_search` — the classic multi-start wrapper.

Scoring goes through :func:`repro.evaluate.evaluate_many`: each step's
whole neighbourhood is scored in one batch (fanning over ``n_jobs``
workers when asked) against a shared
:class:`~repro.evaluate.cache.StructureCache`, so no candidate — nor any
throughput-isomorphic relabelling of one — is ever evaluated twice.
:class:`SearchResult` reports the memo traffic (``cache_hits`` vs
``cache_misses``). The selection rule is unchanged from the serial
implementation (first improving neighbour in generation order), so fixed
seeds reproduce the exact pre-batching trajectories and optima.

All heuristics take a ``mode`` — a solver name from
:func:`repro.evaluate.available_solvers`; ``"deterministic"`` and
``"exponential"`` match the paper's evaluators (scoring by the
exponential evaluator optimizes the Theorem 7 *floor*, i.e. the
throughput guaranteed under any N.B.U.E. variability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.application.chain import Application
from repro.evaluate import StructureCache, evaluate_many, solver_options
from repro.exceptions import InvalidMappingError
from repro.mapping.generators import random_mapping
from repro.mapping.mapping import Mapping
from repro.platform.topology import Platform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import ProcessPoolExecutor


@dataclass(frozen=True)
class SearchResult:
    """Best mapping found, its score, and the evaluator traffic.

    ``evaluations`` counts score *requests*; ``cache_misses`` of them
    reached an actual evaluator run, ``cache_hits`` were served by the
    fingerprint memo (``evaluations = cache_hits + cache_misses``).
    """

    mapping: Mapping
    throughput: float
    evaluations: int
    cache_hits: int = 0
    cache_misses: int = 0


def _batch_score(
    mappings: list[Mapping],
    mode: str,
    max_states: int,
    cache: StructureCache,
    n_jobs: int,
    pool: "ProcessPoolExecutor | None" = None,
) -> list[float]:
    # Forward max_states only to backends that take it (the simulation
    # solver, for one, does not).
    options = (
        {"max_states": max_states}
        if "max_states" in solver_options(mode)
        else {}
    )
    return evaluate_many(
        mappings,
        solver=mode,
        model="overlap",
        cache=cache,
        n_jobs=n_jobs,
        pool=pool,
        **options,
    )


def balanced_replication(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    max_states: int = 200_000,
    cache: StructureCache | None = None,
) -> SearchResult:
    """Work-proportional baseline.

    Replication budget per stage proportional to ``w_i`` (at least 1,
    total ≤ M); the fastest processors are dealt to the heaviest stages.
    A sensible baseline for the search heuristics to beat (or match).
    """
    n, m = application.n_stages, platform.n_processors
    if m < n:
        raise InvalidMappingError(f"need M >= N, got M={m} N={n}")
    work = application.works
    reps = np.maximum(1, np.floor(work / work.sum() * m).astype(int))
    # Trim overshoot from the least-loaded stages, never below one
    # replica: an empty team would be an invalid mapping, so stages
    # already at R_i = 1 are skipped and the next-least-loaded one pays.
    while reps.sum() > m:
        load = np.where(reps > 1, work / reps, np.inf)
        reps[int(np.argmin(load))] -= 1
    # Deal fastest processors to the stages with the highest per-replica load.
    order = np.argsort(-platform.speeds)  # fastest first
    stage_order = np.argsort(-(work / reps))
    teams: list[list[int]] = [[] for _ in range(n)]
    cursor = 0
    for s in stage_order:
        teams[int(s)] = [int(p) for p in order[cursor : cursor + reps[s]]]
        cursor += int(reps[s])
    mapping = Mapping(application, platform, teams)
    cache = cache if cache is not None else StructureCache()
    hits0, misses0 = cache.hits, cache.misses
    [rho] = _batch_score([mapping], mode, max_states, cache, 1)
    return SearchResult(
        mapping,
        rho,
        evaluations=1,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
    )


def _try_mapping(mapping: Mapping, teams: list[list[int]]) -> Mapping | None:
    """Construct a neighbour, or ``None`` when the move is invalid.

    Moves generated from a *valid* mapping always construct; tolerating
    :class:`InvalidMappingError` keeps the neighbourhood total on
    degenerate inputs (e.g. an externally built mapping with an empty
    team) instead of crashing mid-search.
    """
    try:
        return Mapping(mapping.application, mapping.platform, teams)
    except InvalidMappingError:
        return None


def _neighbours(mapping: Mapping, rng: np.random.Generator) -> list[Mapping]:
    """Grow-with-idle and swap moves around a mapping."""
    out: list[Mapping | None] = []
    used = set(mapping.used_processors)
    idle = [p for p in range(mapping.platform.n_processors) if p not in used]
    teams = [list(t) for t in mapping.teams]
    for i in range(len(teams)):
        for p in idle[:3]:
            grown = [list(t) for t in teams]
            grown[i].append(p)
            out.append(_try_mapping(mapping, grown))
    for _ in range(8):
        i, j = (int(x) for x in rng.integers(len(teams), size=2))
        if i == j:
            continue
        if not teams[i] or not teams[j]:
            # Degenerate swap (empty team): skip instead of crashing on
            # ``rng.integers(0)``; validated mappings never hit this, but
            # ill-formed inputs should degrade to "no move".
            continue
        a = int(rng.integers(len(teams[i])))
        b = int(rng.integers(len(teams[j])))
        swapped = [list(t) for t in teams]
        swapped[i][a], swapped[j][b] = swapped[j][b], swapped[i][a]
        out.append(_try_mapping(mapping, swapped))
    return [m for m in out if m is not None]


def greedy_hill_climb(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    seed: int = 0,
    max_steps: int = 60,
    start: Mapping | None = None,
    max_states: int = 200_000,
    n_jobs: int = 1,
    cache: StructureCache | None = None,
    pool: "ProcessPoolExecutor | None" = None,
) -> SearchResult:
    """First-improvement local search from a random (or given) start.

    Each step scores the whole neighbourhood in one
    :func:`~repro.evaluate.evaluate_many` batch (over ``n_jobs`` workers)
    and then moves to the first improving neighbour in generation order —
    the same trajectory the one-at-a-time implementation followed.
    """
    rng = np.random.default_rng(seed)
    current = (
        start
        if start is not None
        else random_mapping(application, platform, rng, max_replication=4)
    )
    cache = cache if cache is not None else StructureCache()
    hits0, misses0 = cache.hits, cache.misses
    evals = 1
    [best] = _batch_score([current], mode, max_states, cache, 1)
    # Serially the neighbourhood is streamed one candidate at a time —
    # the exact request stream (and early stop) of the pre-batching
    # implementation, so the memo can only *remove* evaluator runs. With
    # workers, whole chunks are scored per evaluate_many call; the first
    # improving neighbour in generation order wins either way, so the
    # trajectory is independent of the chunking.
    for _ in range(max_steps):
        cands = _neighbours(current, rng)
        if not cands:
            break
        chunk = len(cands) if n_jobs > 1 else 1
        improved = False
        for lo in range(0, len(cands), chunk):
            part = cands[lo : lo + chunk]
            scores = _batch_score(
                part, mode, max_states, cache, n_jobs, pool=pool
            )
            evals += len(part)
            for cand, rho in zip(part, scores):
                if rho > best * (1 + 1e-12):
                    current, best = cand, rho
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return SearchResult(
        current,
        best,
        evaluations=evals,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
    )


def random_restart_search(
    application: Application,
    platform: Platform,
    *,
    mode: str = "deterministic",
    n_restarts: int = 5,
    seed: int = 0,
    max_states: int = 200_000,
    n_jobs: int = 1,
    cache: StructureCache | None = None,
    pool: "ProcessPoolExecutor | None" = None,
) -> SearchResult:
    """Multi-start hill climbing; also seeds one run from the baseline.

    A long-lived caller (the evaluation service) passes its persistent
    ``pool`` so the repeated neighbourhood batches reuse one executor
    instead of spawning workers per climb step; it is never shut down
    here.

    All restarts share one structure cache, so revisited (or
    throughput-isomorphic) candidates across runs cost nothing — the
    baseline mapping, re-scored as the first climb's start, is already a
    guaranteed cache hit.
    """
    cache = cache if cache is not None else StructureCache()
    hits0, misses0 = cache.hits, cache.misses
    best: SearchResult | None = None
    evals = 0
    baseline = balanced_replication(
        application, platform, mode=mode, max_states=max_states, cache=cache
    )
    evals += baseline.evaluations
    seeds: list[Mapping | None] = [baseline.mapping] + [None] * n_restarts
    for k, start in enumerate(seeds):
        result = greedy_hill_climb(
            application,
            platform,
            mode=mode,
            seed=seed + k,
            start=start,
            max_states=max_states,
            n_jobs=n_jobs,
            cache=cache,
            pool=pool,
        )
        evals += result.evaluations
        if best is None or result.throughput > best.throughput:
            best = result
    assert best is not None
    return SearchResult(
        best.mapping,
        best.throughput,
        evaluations=evals,
        cache_hits=cache.hits - hits0,
        cache_misses=cache.misses - misses0,
    )
