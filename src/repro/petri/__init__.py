"""Timed Petri nets / timed event graphs (paper Section 3)."""

from repro.petri.net import Place, TimedEventGraph, Transition
from repro.petri.builder_overlap import build_overlap_tpn, DEFAULT_MAX_TRANSITIONS
from repro.petri.builder_strict import build_strict_tpn
from repro.petri.analysis import (
    condensation_edges,
    is_feed_forward,
    is_live,
    is_strongly_connected,
    resource_token_invariant,
    strongly_connected_components,
    subnet,
    transition_digraph,
    validate,
)
from repro.petri.reachability import ReachabilityResult, explore, explore_reference

__all__ = [
    "Place",
    "TimedEventGraph",
    "Transition",
    "build_overlap_tpn",
    "build_strict_tpn",
    "DEFAULT_MAX_TRANSITIONS",
    "condensation_edges",
    "is_feed_forward",
    "is_live",
    "is_strongly_connected",
    "resource_token_invariant",
    "strongly_connected_components",
    "subnet",
    "transition_digraph",
    "validate",
    "ReachabilityResult",
    "explore",
    "explore_reference",
]


def build_tpn(mapping, model, **kwargs):
    """Build the TPN of ``mapping`` under the given execution model."""
    from repro.types import ExecutionModel

    model = ExecutionModel.coerce(model)
    if model is ExecutionModel.OVERLAP:
        return build_overlap_tpn(mapping, **kwargs)
    return build_strict_tpn(mapping, **kwargs)
