"""Construction of the Overlap-model timed event graph (paper Section 3.2).

The net has ``m = lcm(R_1, …, R_N)`` rows and ``2N - 1`` columns
(computations at even columns ``2i``, the transfer of file ``F_{i+1}`` at
odd columns ``2i + 1``). Four families of places implement the paper's
constraint sets:

1. *flow* — along each row, ``F_i`` is sent after ``T_i`` completes and
   ``T_{i+1}`` starts after ``F_i`` arrives;
2. *proc-cycle* — round-robin of each processor's computations;
3. *out-port* — one-port round-robin of each processor's sends;
4. *in-port* — one-port round-robin of each processor's receptions.

Every resource cycle carries exactly one token, placed on the wrap-around
place (all resources are initially idle, waiting for their first input).

The resulting net is *feed-forward* (no place points to an earlier
column), which is what makes the polynomial column decomposition of
Theorem 3 possible — and also means flow places are structurally
unbounded. ``buffer_capacity`` optionally adds back-pressure places (a
library extension) so the net becomes bounded and amenable to the full
CTMC method of Theorem 2.
"""

from __future__ import annotations

from repro.exceptions import StateSpaceLimitError
from repro.mapping.mapping import Mapping
from repro.petri.net import TimedEventGraph
from repro.types import PlaceKind, TransitionKind

#: Hard cap on the unrolled TPN size (rows × columns transitions).
DEFAULT_MAX_TRANSITIONS = 2_000_000


def _add_cycle(
    tpn: TimedEventGraph, transition_ids: list[int], kind: PlaceKind
) -> None:
    """Chain the transitions with 0-token places and close with 1 token.

    A single transition yields a self-loop place holding the token — the
    resource serves one operation at a time.
    """
    k = len(transition_ids)
    for a in range(k - 1):
        tpn.add_place(transition_ids[a], transition_ids[a + 1], 0, kind)
    tpn.add_place(transition_ids[-1], transition_ids[0], 1, kind)


def build_overlap_tpn(
    mapping: Mapping,
    *,
    buffer_capacity: int | None = None,
    max_transitions: int = DEFAULT_MAX_TRANSITIONS,
) -> TimedEventGraph:
    """Unrolled Overlap timed event graph of a mapping.

    Parameters
    ----------
    mapping:
        The one-to-many mapping to model.
    buffer_capacity:
        ``None`` (paper semantics) leaves flow places unbounded. An integer
        ``B >= 1`` adds a reverse *capacity* place with ``B`` tokens for
        every flow place, modelling ``B``-slot buffers between operations.
    max_transitions:
        Guard against pathological ``lcm`` blow-ups; a
        :class:`StateSpaceLimitError` is raised beyond it.
    """
    n = mapping.n_stages
    m = mapping.n_rows
    n_cols = 2 * n - 1
    if m * n_cols > max_transitions:
        raise StateSpaceLimitError(
            max_transitions,
            f"unrolled TPN would have {m * n_cols} transitions "
            f"(m={m}, columns={n_cols}); use the symbolic decomposition instead",
        )
    tpn = TimedEventGraph(n_rows=m, n_columns=n_cols)

    comp: list[list[int]] = [[] for _ in range(n)]  # comp[i][j]
    comm: list[list[int]] = [[] for _ in range(max(n - 1, 0))]  # comm[i][j]

    for j in range(m):
        for i in range(n):
            p = mapping.processor(i, j)
            comp[i].append(
                tpn.add_transition(
                    TransitionKind.COMPUTE,
                    column=2 * i,
                    row=j,
                    stage=i,
                    resource=("cpu", p),
                    mean_time=mapping.compute_time(i, p),
                    label=f"T{i + 1}^({j})@P{p}",
                )
            )
    for j in range(m):
        for i in range(n - 1):
            p = mapping.processor(i, j)
            q = mapping.processor(i + 1, j)
            comm[i].append(
                tpn.add_transition(
                    TransitionKind.COMM,
                    column=2 * i + 1,
                    row=j,
                    stage=i,
                    resource=("link", p, q),
                    mean_time=mapping.comm_time(i, p, q),
                    label=f"F{i + 1}^({j})@P{p}->P{q}",
                )
            )

    # Constraint set 1: flow along each row.
    for j in range(m):
        for i in range(n - 1):
            tpn.add_place(comp[i][j], comm[i][j], 0, PlaceKind.FLOW)
            tpn.add_place(comm[i][j], comp[i + 1][j], 0, PlaceKind.FLOW)

    # Constraint sets 2-4: per-resource round-robin cycles.
    for i in range(n):
        for p in mapping.teams[i]:
            rows = mapping.rows_of(i, p)
            _add_cycle(tpn, [comp[i][j] for j in rows], PlaceKind.PROC_CYCLE)
            if i < n - 1:
                _add_cycle(tpn, [comm[i][j] for j in rows], PlaceKind.OUT_PORT)
            if i > 0:
                _add_cycle(tpn, [comm[i - 1][j] for j in rows], PlaceKind.IN_PORT)

    if buffer_capacity is not None:
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        for place in [p for p in tpn.places if p.kind is PlaceKind.FLOW]:
            tpn.add_place(place.dst, place.src, buffer_capacity, PlaceKind.CAPACITY)
    return tpn
