"""Structural analysis of timed event graphs.

These checks back the structural claims of Section 3 that the throughput
algorithms rely on:

* the Overlap net is feed-forward (places never point to an earlier
  column) — hypothesis of the column decomposition (Theorem 3);
* every resource cycle carries exactly one token and the net is live
  (no zero-token cycle);
* the Strict net has backward places, and is strongly connected for
  connected mappings.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import StructuralError
from repro.petri.net import TimedEventGraph
from repro.types import PlaceKind


def transition_digraph(tpn: TimedEventGraph) -> nx.DiGraph:
    """Directed graph on transitions with one edge per place (collapsed)."""
    g = nx.DiGraph()
    g.add_nodes_from(range(tpn.n_transitions))
    g.add_edges_from((p.src, p.dst) for p in tpn.places)
    return g


def is_feed_forward(tpn: TimedEventGraph) -> bool:
    """Whether every place goes forward (or stays) in column order.

    Overlap nets are feed-forward; Strict nets are not (their
    serialization chains jump from a send column back to the previous
    receive column).
    """
    trans = tpn.transitions
    return all(trans[p.src].column <= trans[p.dst].column for p in tpn.places)


def is_live(tpn: TimedEventGraph) -> bool:
    """No zero-token cycle — every cycle can fire infinitely often."""
    g = nx.DiGraph()
    g.add_nodes_from(range(tpn.n_transitions))
    g.add_edges_from((p.src, p.dst) for p in tpn.places if p.tokens == 0)
    try:
        nx.find_cycle(g)
        return False
    except nx.NetworkXNoCycle:
        return True


def is_strongly_connected(tpn: TimedEventGraph) -> bool:
    return nx.is_strongly_connected(transition_digraph(tpn))


def strongly_connected_components(tpn: TimedEventGraph) -> list[list[int]]:
    """SCCs of the transition graph, each sorted, in topological order.

    Topological order of the condensation: predecessors first — the order
    required by the min-composition of component throughputs.
    """
    g = transition_digraph(tpn)
    comp_sets = list(nx.strongly_connected_components(g))
    cond = nx.condensation(g, scc=comp_sets)
    order = list(nx.topological_sort(cond))
    return [sorted(cond.nodes[c]["members"]) for c in order]


def condensation_edges(tpn: TimedEventGraph) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """SCCs in topological order plus the condensation edges between them."""
    g = transition_digraph(tpn)
    comp_sets = list(nx.strongly_connected_components(g))
    cond = nx.condensation(g, scc=comp_sets)
    order = list(nx.topological_sort(cond))
    relabel = {old: new for new, old in enumerate(order)}
    comps = [sorted(cond.nodes[c]["members"]) for c in order]
    edges = [(relabel[u], relabel[v]) for u, v in cond.edges]
    return comps, edges


def subnet(tpn: TimedEventGraph, transition_subset: list[int]) -> tuple[TimedEventGraph, dict[int, int]]:
    """Induced sub-net on a transition subset, dropping boundary places.

    Dropping places whose source lies outside the subset realizes the
    *saturated-input* (isolation) semantics used to compute a component's
    inner throughput: external precursors are assumed always ready.
    Returns the sub-net and the old→new transition index map.
    """
    keep = sorted(set(transition_subset))
    relabel = {old: new for new, old in enumerate(keep)}
    sub = TimedEventGraph(n_rows=tpn.n_rows, n_columns=tpn.n_columns)
    for old in keep:
        t = tpn.transitions[old]
        sub.add_transition(
            t.kind, t.column, t.row, t.stage, t.resource, t.mean_time, t.label
        )
    for p in tpn.places:
        if p.src in relabel and p.dst in relabel:
            sub.add_place(relabel[p.src], relabel[p.dst], p.tokens, p.kind)
    return sub, relabel


def resource_token_invariant(tpn: TimedEventGraph) -> dict[tuple, int]:
    """Initial token count per resource cycle.

    Places of one cycle kind decompose into connected components, one per
    hardware resource (a processor's compute cycle, a port's send/receive
    cycle, or a Strict serialization chain); the builders put exactly one
    token on each. Keys are ``(kind, component_id)``; tests assert every
    value equals 1.
    """
    counts: dict[tuple, int] = {}
    cycle_kinds = {
        PlaceKind.PROC_CYCLE,
        PlaceKind.OUT_PORT,
        PlaceKind.IN_PORT,
        PlaceKind.STRICT_CYCLE,
    }
    for p in tpn.places:
        if p.kind not in cycle_kinds:
            continue
        # The owner of a cycle place is the processor whose round-robin it
        # implements: the cpu for compute cycles, the sender for output
        # ports and Strict chains (rows end with a send), the receiver for
        # input ports. This keys each processor's chain separately even
        # though Strict chains share comm transitions between processors.
        src = tpn.transitions[p.src]
        owner = src.resource[2] if p.kind is PlaceKind.IN_PORT else src.resource[1]
        counts[(p.kind, owner)] = counts.get((p.kind, owner), 0) + p.tokens
    return counts


def validate(tpn: TimedEventGraph) -> None:
    """Raise :class:`StructuralError` on any structural inconsistency."""
    if not is_live(tpn):
        raise StructuralError("timed event graph is not live (zero-token cycle)")
    for key, tokens in resource_token_invariant(tpn).items():
        if tokens != 1:
            raise StructuralError(f"resource cycle {key} carries {tokens} tokens != 1")
