"""Construction of the Strict-model timed event graph (paper Section 3.3).

Same grid as the Overlap net (``m`` rows × ``2N - 1`` columns) and the
same flow places, but the per-resource cycles are replaced by a single
serialization chain per processor: the processor must finish the sequence
*receive → compute → send* for one of its data sets before starting the
next reception. Concretely, for processor ``P`` serving rows
``j_1 < … < j_k``::

    send(j_l)  →  recv(j_{l+1})      (0 tokens, 1 <= l < k)
    send(j_k)  →  recv(j_1)          (1 token — P initially idle)

where ``recv``/``send`` degrade to the computation transition for the
first/last stage. Because a communication transition belongs to both its
sender's and its receiver's chains, the net acquires backward edges and is
(in general) strongly connected — the reason the Strict model resists the
polynomial column decomposition (Section 4.2).
"""

from __future__ import annotations

from repro.exceptions import StateSpaceLimitError
from repro.mapping.mapping import Mapping
from repro.petri.builder_overlap import DEFAULT_MAX_TRANSITIONS
from repro.petri.net import TimedEventGraph
from repro.types import PlaceKind, TransitionKind


def build_strict_tpn(
    mapping: Mapping,
    *,
    max_transitions: int = DEFAULT_MAX_TRANSITIONS,
) -> TimedEventGraph:
    """Unrolled Strict timed event graph of a mapping."""
    n = mapping.n_stages
    m = mapping.n_rows
    n_cols = 2 * n - 1
    if m * n_cols > max_transitions:
        raise StateSpaceLimitError(
            max_transitions,
            f"unrolled TPN would have {m * n_cols} transitions "
            f"(m={m}, columns={n_cols})",
        )
    tpn = TimedEventGraph(n_rows=m, n_columns=n_cols)

    comp: list[list[int]] = [[] for _ in range(n)]
    comm: list[list[int]] = [[] for _ in range(max(n - 1, 0))]

    for j in range(m):
        for i in range(n):
            p = mapping.processor(i, j)
            comp[i].append(
                tpn.add_transition(
                    TransitionKind.COMPUTE,
                    column=2 * i,
                    row=j,
                    stage=i,
                    resource=("cpu", p),
                    mean_time=mapping.compute_time(i, p),
                    label=f"T{i + 1}^({j})@P{p}",
                )
            )
    for j in range(m):
        for i in range(n - 1):
            p = mapping.processor(i, j)
            q = mapping.processor(i + 1, j)
            comm[i].append(
                tpn.add_transition(
                    TransitionKind.COMM,
                    column=2 * i + 1,
                    row=j,
                    stage=i,
                    resource=("link", p, q),
                    mean_time=mapping.comm_time(i, p, q),
                    label=f"F{i + 1}^({j})@P{p}->P{q}",
                )
            )

    # Constraint set 1 (identical to Overlap): flow along each row.
    for j in range(m):
        for i in range(n - 1):
            tpn.add_place(comp[i][j], comm[i][j], 0, PlaceKind.FLOW)
            tpn.add_place(comm[i][j], comp[i + 1][j], 0, PlaceKind.FLOW)

    # Strict serialization chain of each processor.
    for i in range(n):
        for p in mapping.teams[i]:
            rows = mapping.rows_of(i, p)
            firsts = [comm[i - 1][j] if i > 0 else comp[i][j] for j in rows]
            lasts = [comm[i][j] if i < n - 1 else comp[i][j] for j in rows]
            k = len(rows)
            for a in range(k - 1):
                tpn.add_place(lasts[a], firsts[a + 1], 0, PlaceKind.STRICT_CYCLE)
            tpn.add_place(lasts[-1], firsts[0], 1, PlaceKind.STRICT_CYCLE)
    return tpn
