"""Reachable-marking exploration of a bounded timed event graph.

The exact exponential-case method (Theorem 2) identifies the state of the
memoryless system with the current marking; this module enumerates the
reachable markings and the transition relation between them, which the
Markov layer turns into a CTMC.

Markings are encoded as ``bytes`` of per-place token counts — compact,
hashable, and cheap to decode back into numpy vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StateSpaceLimitError, StructuralError
from repro.petri.net import TimedEventGraph

#: Refuse markings whose token count exceeds this per place: a growing
#: place means the net is unbounded (feed-forward Overlap without
#: capacities) and the exploration would never terminate.
PLACE_BOUND = 64


@dataclass
class ReachabilityResult:
    """The reachable marking graph.

    ``arcs[s]`` lists ``(transition_index, next_state_index)`` pairs — one
    per transition enabled in state ``s`` (event graphs are conflict-free,
    so enabled transitions are exactly the outgoing CTMC moves under race
    semantics).
    """

    states: list[bytes]
    arcs: list[list[tuple[int, int]]]
    initial: int
    n_places: int

    @property
    def n_states(self) -> int:
        return len(self.states)

    def marking(self, state: int) -> np.ndarray:
        """Decode a state back into a token-count vector."""
        return np.frombuffer(self.states[state], dtype=np.uint8).astype(np.int64)


def _enabled(marking: np.ndarray, in_places: list[list[int]]) -> list[int]:
    out = []
    for t, places in enumerate(in_places):
        ok = True
        for p in places:
            if marking[p] == 0:
                ok = False
                break
        if ok:
            out.append(t)
    return out


def explore(
    tpn: TimedEventGraph,
    *,
    max_states: int = 200_000,
    place_bound: int = PLACE_BOUND,
) -> ReachabilityResult:
    """Breadth-first enumeration of the reachable markings.

    Raises
    ------
    StateSpaceLimitError
        When more than ``max_states`` markings are reachable.
    StructuralError
        When a place accumulates more than ``place_bound`` tokens —
        the symptom of an unbounded (feed-forward) net.
    """
    if tpn.n_places == 0:
        raise StructuralError("cannot explore a net without places")
    in_places = tpn.in_places
    out_places = tpn.out_places

    m0 = tpn.initial_marking().astype(np.int64)
    if (m0 > place_bound).any():
        raise StructuralError("initial marking exceeds the place bound")
    init_key = m0.astype(np.uint8).tobytes()

    index: dict[bytes, int] = {init_key: 0}
    states: list[bytes] = [init_key]
    arcs: list[list[tuple[int, int]]] = []
    frontier = [m0]
    head = 0
    while head < len(frontier):
        marking = frontier[head]
        head += 1
        out: list[tuple[int, int]] = []
        for t in _enabled(marking, in_places):
            nxt = marking.copy()
            nxt[in_places[t]] -= 1
            nxt[out_places[t]] += 1
            if (nxt > place_bound).any():
                raise StructuralError(
                    f"place bound {place_bound} exceeded: the net is unbounded "
                    "(add buffer capacities or use the decomposition method)"
                )
            key = nxt.astype(np.uint8).tobytes()
            s = index.get(key)
            if s is None:
                s = len(states)
                if s >= max_states:
                    raise StateSpaceLimitError(max_states)
                index[key] = s
                states.append(key)
                frontier.append(nxt)
            out.append((t, s))
        arcs.append(out)
    return ReachabilityResult(states=states, arcs=arcs, initial=0, n_places=tpn.n_places)
