"""Reachable-marking exploration of a bounded timed event graph.

The exact exponential-case method (Theorem 2) identifies the state of the
memoryless system with the current marking; this module enumerates the
reachable markings and the transition relation between them, which the
Markov layer turns into a CTMC.

Markings are encoded as ``bytes`` of per-place token counts — compact,
hashable, and cheap to decode back into numpy vectors.

Two implementations share the same contract: :func:`explore` expands the
BFS frontier in vectorized batches through the net's
:class:`~repro.kernels.IncidenceKernel`, while :func:`explore_reference`
keeps the original marking-at-a-time loop as a cross-checked oracle. Both
enumerate states in identical BFS discovery order, so their results are
equal field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import StateSpaceLimitError, StructuralError
from repro.petri.net import TimedEventGraph

#: Refuse markings whose token count exceeds this per place: a growing
#: place means the net is unbounded (feed-forward Overlap without
#: capacities) and the exploration would never terminate.
PLACE_BOUND = 64

#: Hard ceiling on ``place_bound``: markings are keyed by their uint8
#: byte encoding, so token counts above 255 would silently alias
#: distinct markings onto the same key.
MAX_PLACE_BOUND = 255


@dataclass
class ReachabilityResult:
    """The reachable marking graph.

    ``arcs[s]`` lists ``(transition_index, next_state_index)`` pairs — one
    per transition enabled in state ``s`` (event graphs are conflict-free,
    so enabled transitions are exactly the outgoing CTMC moves under race
    semantics).
    """

    states: list[bytes]
    arcs: list[list[tuple[int, int]]]
    initial: int
    n_places: int
    _flat: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_states(self) -> int:
        return len(self.states)

    def marking(self, state: int) -> np.ndarray:
        """Decode a state back into a token-count vector."""
        return np.frombuffer(self.states[state], dtype=np.uint8).astype(np.int64)

    def flat_arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The arcs as three parallel int64 arrays ``(src, trans, dst)``.

        Cached; the Markov layer assembles the CTMC and the throughput
        extractor from these with numpy gathers instead of nested loops.
        """
        if self._flat is None:
            n_arcs = sum(len(moves) for moves in self.arcs)
            src = np.empty(n_arcs, dtype=np.int64)
            trans = np.empty(n_arcs, dtype=np.int64)
            dst = np.empty(n_arcs, dtype=np.int64)
            k = 0
            for s, moves in enumerate(self.arcs):
                for t, s2 in moves:
                    src[k] = s
                    trans[k] = t
                    dst[k] = s2
                    k += 1
            self._flat = (src, trans, dst)
        return self._flat


def _validate_place_bound(place_bound: int) -> None:
    if not 1 <= place_bound <= MAX_PLACE_BOUND:
        raise ValueError(
            f"place_bound must be in 1..{MAX_PLACE_BOUND} (markings are keyed "
            f"as uint8 token counts), got {place_bound}"
        )


def explore(
    tpn: TimedEventGraph,
    *,
    max_states: int = 200_000,
    place_bound: int = PLACE_BOUND,
) -> ReachabilityResult:
    """Breadth-first enumeration of the reachable markings (vectorized).

    The frontier is expanded in batches: one float32 matrix product
    against the consumption incidence matrix yields the enabled mask of
    the whole batch, one broadcast add of the delta matrix yields every
    successor marking, and deduplication slices keys out of a single
    contiguous byte buffer per batch. Produces the exact result of
    :func:`explore_reference` (same state numbering, same arc order).

    Raises
    ------
    ValueError
        When ``place_bound`` is outside ``1..255`` (uint8 keying).
    StateSpaceLimitError
        When more than ``max_states`` markings are reachable.
    StructuralError
        When a place accumulates more than ``place_bound`` tokens —
        the symptom of an unbounded (feed-forward) net.
    """
    _validate_place_bound(place_bound)
    if tpn.n_places == 0:
        raise StructuralError("cannot explore a net without places")
    kern = tpn.kernel
    n_p = tpn.n_places

    m0 = tpn.initial_marking()
    if (m0 > place_bound).any():
        raise StructuralError("initial marking exceeds the place bound")
    init_key = m0.astype(np.uint8).tobytes()

    # Markings live in one int16 arena with capacity doubling; token
    # counts are bounded by 255 so int16 holds every reachable marking
    # and the uint8 key cast below never wraps.
    markings = np.empty((256, n_p), dtype=np.int16)
    markings[0] = m0
    index: dict[bytes, int] = {init_key: 0}
    states: list[bytes] = [init_key]
    arcs: list[list[tuple[int, int]]] = []
    n = 1
    head = 0
    # Batch width bounded so the (batch, n_transitions) float32 enabled
    # mask and the successor block stay a few MB.
    batch = max(1, min(4096, (1 << 21) // max(1, kern.n_transitions)))
    while head < n:
        hi = min(n, head + batch)
        frontier = markings[head:hi]
        mask = kern.enabled(frontier)
        # nonzero is row-major: state-ascending, transition-ascending
        # within a state — the reference exploration order.
        local_s, trans = np.nonzero(mask)
        over_bound = None
        if local_s.size:
            succ = kern.successors(frontier, local_s, trans)
            if int(succ.max()) > place_bound:
                # Defer to the per-arc loop below so the error raised (and
                # its interleaving with StateSpaceLimitError) matches the
                # reference arc order exactly; the batch never survives.
                over_bound = (succ > place_bound).any(axis=1).tolist()
            buf = succ.astype(np.uint8).tobytes()
        per_state = np.diff(np.searchsorted(local_s, np.arange(hi - head + 1)))
        trans_l = trans.tolist()
        k = 0
        for count in per_state.tolist():
            out: list[tuple[int, int]] = []
            for _ in range(count):
                if over_bound is not None and over_bound[k]:
                    raise StructuralError(
                        f"place bound {place_bound} exceeded: the net is "
                        "unbounded (add buffer capacities or use the "
                        "decomposition method)"
                    )
                key = buf[k * n_p:(k + 1) * n_p]
                s2 = index.get(key)
                if s2 is None:
                    s2 = n
                    if s2 >= max_states:
                        raise StateSpaceLimitError(max_states)
                    index[key] = s2
                    states.append(key)
                    if n == markings.shape[0]:
                        markings = np.concatenate([markings, np.empty_like(markings)])
                    markings[n] = succ[k]
                    n += 1
                out.append((trans_l[k], s2))
                k += 1
            arcs.append(out)
        head = hi
    return ReachabilityResult(states=states, arcs=arcs, initial=0, n_places=tpn.n_places)


# ----------------------------------------------------------------------
# Reference implementation (cross-checked oracle for the vectorized BFS)
# ----------------------------------------------------------------------

def _enabled(marking: np.ndarray, in_places: list[list[int]]) -> list[int]:
    out = []
    for t, places in enumerate(in_places):
        ok = True
        for p in places:
            if marking[p] == 0:
                ok = False
                break
        if ok:
            out.append(t)
    return out


def explore_reference(
    tpn: TimedEventGraph,
    *,
    max_states: int = 200_000,
    place_bound: int = PLACE_BOUND,
) -> ReachabilityResult:
    """Marking-at-a-time BFS — the original implementation, kept as the
    equivalence oracle for :func:`explore`.
    """
    _validate_place_bound(place_bound)
    if tpn.n_places == 0:
        raise StructuralError("cannot explore a net without places")
    in_places = tpn.in_places
    out_places = tpn.out_places

    m0 = tpn.initial_marking().astype(np.int64)
    if (m0 > place_bound).any():
        raise StructuralError("initial marking exceeds the place bound")
    init_key = m0.astype(np.uint8).tobytes()

    index: dict[bytes, int] = {init_key: 0}
    states: list[bytes] = [init_key]
    arcs: list[list[tuple[int, int]]] = []
    frontier = [m0]
    head = 0
    while head < len(frontier):
        marking = frontier[head]
        head += 1
        out: list[tuple[int, int]] = []
        for t in _enabled(marking, in_places):
            nxt = marking.copy()
            nxt[in_places[t]] -= 1
            nxt[out_places[t]] += 1
            if (nxt > place_bound).any():
                raise StructuralError(
                    f"place bound {place_bound} exceeded: the net is unbounded "
                    "(add buffer capacities or use the decomposition method)"
                )
            key = nxt.astype(np.uint8).tobytes()
            s = index.get(key)
            if s is None:
                s = len(states)
                if s >= max_states:
                    raise StateSpaceLimitError(max_states)
                index[key] = s
                states.append(key)
                frontier.append(nxt)
            out.append((t, s))
        arcs.append(out)
    return ReachabilityResult(states=states, arcs=arcs, initial=0, n_places=tpn.n_places)
