"""Timed event graphs (timed Petri nets where every place has exactly one
input and one output transition) — the modelling substrate of Section 3.

A :class:`TimedEventGraph` stores transitions (computations / file
transfers) and places (dependences). Transitions carry their *mean* firing
time and the hardware resource they occupy; probabilistic analyses replace
the constant by a law with that mean (Section 2.4's I.I.D.-per-resource
hypothesis is honoured because every transition knows its resource key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.exceptions import StructuralError
from repro.maxplus.graph import TokenGraph
from repro.types import PlaceKind, TransitionKind


@dataclass(frozen=True, slots=True)
class Transition:
    """One timed transition of the event graph.

    ``resource`` identifies the hardware occupied while firing:
    ``("cpu", p)`` for a computation on ``P_p`` or ``("link", p, q)`` for a
    transfer on ``link_{p,q}``. All transitions sharing a resource share
    the same time law (I.I.D. hypothesis).
    """

    index: int
    kind: TransitionKind
    column: int
    row: int
    stage: int
    resource: tuple
    mean_time: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.mean_time < 0:
            raise StructuralError(f"negative firing time on {self.label or self.index}")


@dataclass(frozen=True, slots=True)
class Place:
    """One place, i.e. one dependence arc ``src → dst`` with initial tokens."""

    index: int
    src: int
    dst: int
    tokens: int
    kind: PlaceKind

    def __post_init__(self) -> None:
        if self.tokens < 0:
            raise StructuralError(f"negative marking on place {self.index}")


@dataclass
class TimedEventGraph:
    """A complete timed event graph plus its grid metadata.

    ``n_rows`` is the number of round-robin paths ``m`` and ``n_columns``
    is ``2N - 1`` (computation and communication columns interleaved);
    ``grid[column][row]`` gives the transition index at that grid cell.
    """

    n_rows: int
    n_columns: int
    transitions: list[Transition] = field(default_factory=list)
    places: list[Place] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers (used by the builders)
    # ------------------------------------------------------------------
    def add_transition(
        self,
        kind: TransitionKind,
        column: int,
        row: int,
        stage: int,
        resource: tuple,
        mean_time: float,
        label: str = "",
    ) -> int:
        idx = len(self.transitions)
        self.transitions.append(
            Transition(idx, kind, column, row, stage, resource, mean_time, label)
        )
        return idx

    def add_place(self, src: int, dst: int, tokens: int, kind: PlaceKind) -> int:
        n = len(self.transitions)
        if not (0 <= src < n and 0 <= dst < n):
            raise StructuralError(f"place endpoints ({src}, {dst}) out of range")
        idx = len(self.places)
        self.places.append(Place(idx, src, dst, tokens, kind))
        return idx

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    @cached_property
    def grid(self) -> np.ndarray:
        """``grid[column, row]`` → transition index (-1 when absent)."""
        g = np.full((self.n_columns, self.n_rows), -1, dtype=np.int64)
        for t in self.transitions:
            g[t.column, t.row] = t.index
        return g

    @cached_property
    def in_places(self) -> list[list[int]]:
        """Place indices entering each transition."""
        table: list[list[int]] = [[] for _ in self.transitions]
        for p in self.places:
            table[p.dst].append(p.index)
        return table

    @cached_property
    def out_places(self) -> list[list[int]]:
        """Place indices leaving each transition."""
        table: list[list[int]] = [[] for _ in self.transitions]
        for p in self.places:
            table[p.src].append(p.index)
        return table

    @cached_property
    def kernel(self):
        """Cached :class:`~repro.kernels.IncidenceKernel` of this net.

        Flat incidence matrices and adjacency shared by the reachability
        explorer, the Markov builder and the simulator fast path. Like the
        other cached topology accessors, build the net fully before first
        access.
        """
        from repro.kernels import IncidenceKernel

        return IncidenceKernel.from_net(self)

    def incidence_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """The (consumption, production) int8 incidence matrices."""
        k = self.kernel
        return k.consumption, k.production

    @property
    def n_transitions(self) -> int:
        return len(self.transitions)

    @property
    def n_places(self) -> int:
        return len(self.places)

    def initial_marking(self) -> np.ndarray:
        """Vector of initial token counts, indexed by place."""
        return np.fromiter((p.tokens for p in self.places), dtype=np.int64,
                           count=len(self.places))

    def last_column_transitions(self) -> list[int]:
        """Transitions whose firing completes a data set (last stage)."""
        last = self.n_columns - 1
        return [t.index for t in self.transitions if t.column == last]

    def column_transitions(self, column: int) -> list[int]:
        return [t.index for t in self.transitions if t.column == column]

    def mean_times(self) -> np.ndarray:
        """Vector of mean firing times, indexed by transition."""
        return np.fromiter(
            (t.mean_time for t in self.transitions), dtype=float,
            count=len(self.transitions),
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_token_graph(self, times: np.ndarray | None = None) -> TokenGraph:
        """Precedence token graph for the (max,+) analysis.

        Arc ``src → dst`` carries the firing time of ``src`` (so a cycle's
        weight sums the firing times of its transitions exactly once) and
        the place's initial tokens.
        """
        times = self.mean_times() if times is None else np.asarray(times, dtype=float)
        g = TokenGraph(self.n_transitions)
        for p in self.places:
            g.add_arc(p.src, p.dst, weight=float(times[p.src]), tokens=p.tokens)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimedEventGraph(rows={self.n_rows}, cols={self.n_columns}, "
            f"|T|={self.n_transitions}, |P|={self.n_places})"
        )
