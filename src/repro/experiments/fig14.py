"""Figure 14 — single communication over a heterogeneous network.

The paper draws each link's mean transfer time uniformly in [100, 1000]
and reports all series (constant theory, constant simulations from both
engines, exponential simulations) within ≈2 % of each other: "due to the
round-robin distribution, a single link limits all communications, and
the behaviour tends to the behaviour of a communication through a single
link".

Our exact evaluators let us quantify that mechanism precisely, so this
driver reports two regimes:

* ``uniform`` — the paper's draw (means uniform over a 10× range). The
  exponential/constant ratio *rises* towards 1 compared to the
  homogeneous case (0.75 → ≈0.82 for a 2×3 pattern) but does not reach
  the 2 % band for typical draws;
* ``dominant`` — one link 30× slower than the rest, the limit the paper's
  explanation describes: there the exponential and constant throughputs
  agree within ≈1 %, exactly as claimed.

EXPERIMENTS.md discusses the partial divergence on the uniform draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.examples import single_communication
from repro.petri import build_overlap_tpn
from repro.sim.system_sim import simulate_system
from repro.sim.tpn_sim import simulate_tpn


@dataclass
class Fig14Config:
    sides: list[tuple[int, int]] = field(
        default_factory=lambda: [(k, k + 1) for k in range(2, 8)]
    )
    time_range: tuple[float, float] = (100.0, 1000.0)
    dominance: float = 30.0  # slow-link factor of the 'dominant' regime
    n_datasets: int = 10_000
    tpn_datasets: int = 5_000
    seed: int = 14
    #: The exact heterogeneous pattern CTMC has S(u, v) states; disable
    #: for large sides or scaled-down benchmark runs.
    include_exp_theory: bool = True


def _link_times(
    mode: str, u: int, v: int, config: Fig14Config, rng: np.random.Generator
) -> np.ndarray:
    n = u + v
    lo, hi = config.time_range
    if mode == "uniform":
        return rng.uniform(lo, hi, size=(n, n))
    times = np.full((n, n), lo)
    # One dominant slow link between the first sender/receiver pair.
    times[0, u] = lo * config.dominance
    return times


def run(config: Fig14Config | None = None) -> ExperimentResult:
    config = config or Fig14Config()
    rng = np.random.default_rng(config.seed)
    result = ExperimentResult(
        name="fig14",
        description="heterogeneous network: cst/exp sims vs cst theory "
        "(normalized by the constant theory)",
        columns=[
            "mode",
            "u",
            "v",
            "cst_system",
            "cst_tpn",
            "exp_system",
            "exp_theory",
        ],
    )
    for mode in ("uniform", "dominant"):
        for u, v in config.sides:
            times = _link_times(mode, u, v, config, rng)
            mp = single_communication(u, v, bandwidths=1.0 / times)
            cst_theory = evaluate(mp, solver="deterministic")
            if config.include_exp_theory:
                exp_theory = evaluate(
                    mp, solver="exponential", max_states=300_000
                )
            else:
                exp_theory = float("nan")
            sim_cst = simulate_system(
                mp, "overlap", n_datasets=config.n_datasets,
                law="deterministic", seed=config.seed,
            ).steady_state_throughput()
            sim_exp = simulate_system(
                mp, "overlap", n_datasets=config.n_datasets,
                law="exponential", seed=config.seed,
            ).steady_state_throughput()
            tpn_cst = simulate_tpn(
                build_overlap_tpn(mp), n_datasets=config.tpn_datasets,
                law="deterministic", seed=config.seed,
            ).steady_state_throughput()
            result.add(
                mode=mode,
                u=u,
                v=v,
                cst_system=sim_cst / cst_theory,
                cst_tpn=tpn_cst / cst_theory,
                exp_system=sim_exp / cst_theory,
                exp_theory=exp_theory / cst_theory
                if config.include_exp_theory
                else float("nan"),
            )
    result.notes.append(
        "paper: all values within ~2% of the constant case. Reproduced "
        "exactly in the 'dominant' regime; the 'uniform' draw narrows the "
        "exp/cst gap (vs homogeneous) without closing it — see "
        "EXPERIMENTS.md"
    )
    return result
