"""Shared experiment plumbing: result records and ASCII rendering."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


#: One row of an experiment: column name → value.
Row = Mapping[str, object]


@dataclass
class ExperimentResult:
    """Self-describing experiment output (the paper's table/series rows)."""

    name: str
    description: str
    columns: Sequence[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [r[key] for r in self.rows]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table, one line per row — the paper's rows, regenerated."""
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.6g}"
            return str(v)

        cells = [[fmt(r.get(c, "")) for c in self.columns] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"# {self.name}: {self.description}"]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
