"""Shared experiment plumbing: result records and ASCII rendering."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


#: One row of an experiment: column name → value.
Row = Mapping[str, object]


@dataclass
class ExperimentResult:
    """Self-describing experiment output (the paper's table/series rows)."""

    name: str
    description: str
    columns: Sequence[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [r[key] for r in self.rows]

    # ------------------------------------------------------------------
    # JSON round-trip (the campaign store and `campaign report` speak this)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, ``json.dumps``-ready and loss-free for JSON
        value types (tuples in rows come back as lists)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (extra keys rejected)."""
        unknown = set(data) - {"name", "description", "columns", "rows", "notes"}
        if unknown:
            raise ValueError(
                f"unknown ExperimentResult keys: {', '.join(sorted(unknown))}"
            )
        missing = {"name", "description", "columns"} - set(data)
        if missing:
            raise ValueError(
                f"missing ExperimentResult keys: {', '.join(sorted(missing))}"
            )
        return cls(
            name=data["name"],
            description=data["description"],
            columns=list(data["columns"]),
            rows=[dict(r) for r in data.get("rows", [])],
            notes=list(data.get("notes", [])),
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table, one line per row — the paper's rows, regenerated."""
        def fmt(v: object) -> str:
            if isinstance(v, float):
                return f"{v:.6g}"
            return str(v)

        cells = [[fmt(r.get(c, "")) for c in self.columns] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"# {self.name}: {self.description}"]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
