"""Section 7.7 — running time of the analysis tools and simulators.

The paper reports that generating tasks and running every tool on 100
data sets takes under a second, and that 100,000 events still complete in
minutes. We time, on the Fig. 10 system: deterministic theory, exponential
theory, the direct system simulator, the event-graph simulator, and the
replication runner (loop vs vectorized engine) at several workload sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.experiments.fig10 import paper_system
from repro.petri import build_overlap_tpn
from repro.sim.runner import ReplicationSpec, replicate
from repro.sim.system_sim import simulate_system
from repro.sim.tpn_sim import simulate_tpn


@dataclass
class TimingConfig:
    dataset_counts: list[int] = field(
        default_factory=lambda: [100, 1000, 10_000, 100_000]
    )
    tpn_cap: int = 20_000
    seed: int = 77
    #: Replication-study sizing: ``n_replications`` per timed study, with
    #: per-engine dataset caps (the loop engine pays the full interpreter
    #: cost per replication, so it gets a tighter cap).
    n_replications: int = 50
    rep_loop_cap: int = 1_000
    rep_vec_cap: int = 10_000


def _clock(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run(config: TimingConfig | None = None) -> ExperimentResult:
    config = config or TimingConfig()
    mp = paper_system()
    result = ExperimentResult(
        name="timing",
        description="running time (seconds) of theory and simulators",
        columns=[
            "n_datasets",
            "theory_cst_s",
            "theory_exp_s",
            "system_sim_s",
            "tpn_sim_s",
            "rep_loop_s",
            "rep_vec_s",
        ],
    )
    t_cst, _ = _clock(lambda: evaluate(mp, solver="deterministic"))
    t_exp, _ = _clock(lambda: evaluate(mp, solver="exponential"))
    tpn = build_overlap_tpn(mp)
    for k in config.dataset_counts:
        t_sys, _ = _clock(
            lambda k=k: simulate_system(
                mp, "overlap", n_datasets=k, law="exponential", seed=config.seed
            )
        )
        if k <= config.tpn_cap:
            t_tpn, _ = _clock(
                lambda k=k: simulate_tpn(
                    tpn, n_datasets=k, law="exponential", seed=config.seed
                )
            )
        else:
            t_tpn = float("nan")
        spec = ReplicationSpec(mp, "overlap", n_datasets=k, law="exponential")

        def _rep(engine: str, spec=spec):
            return replicate(
                spec,
                n_replications=config.n_replications,
                seed=config.seed,
                engine=engine,
            )

        t_rep_loop = float("nan")
        if k <= config.rep_loop_cap:
            t_rep_loop, _ = _clock(lambda: _rep("loop"))
        t_rep_vec = float("nan")
        if k <= config.rep_vec_cap:
            t_rep_vec, _ = _clock(lambda: _rep("vectorized"))
        result.add(
            n_datasets=k,
            theory_cst_s=t_cst,
            theory_exp_s=t_exp,
            system_sim_s=t_sys,
            tpn_sim_s=t_tpn,
            rep_loop_s=t_rep_loop,
            rep_vec_s=t_rep_vec,
        )
    result.notes.append(
        "paper: <1s for 100 data sets with all tools; ~3 minutes for "
        "100,000 events (C tools); our Python tooling matches the shape"
    )
    result.notes.append(
        f"rep_*_s: {config.n_replications}-replication study through "
        "replicate(engine='loop'|'vectorized') — bit-identical summaries, "
        "the vectorized engine batches the replication axis through numpy"
    )
    return result
