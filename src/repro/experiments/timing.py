"""Section 7.7 — running time of the analysis tools and simulators.

The paper reports that generating tasks and running every tool on 100
data sets takes under a second, and that 100,000 events still complete in
minutes. We time, on the Fig. 10 system: deterministic theory, exponential
theory, the direct system simulator, and the event-graph simulator, at
several workload sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.experiments.fig10 import paper_system
from repro.petri import build_overlap_tpn
from repro.sim.system_sim import simulate_system
from repro.sim.tpn_sim import simulate_tpn


@dataclass
class TimingConfig:
    dataset_counts: list[int] = field(
        default_factory=lambda: [100, 1000, 10_000, 100_000]
    )
    tpn_cap: int = 20_000
    seed: int = 77


def _clock(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run(config: TimingConfig | None = None) -> ExperimentResult:
    config = config or TimingConfig()
    mp = paper_system()
    result = ExperimentResult(
        name="timing",
        description="running time (seconds) of theory and simulators",
        columns=[
            "n_datasets",
            "theory_cst_s",
            "theory_exp_s",
            "system_sim_s",
            "tpn_sim_s",
        ],
    )
    t_cst, _ = _clock(lambda: evaluate(mp, solver="deterministic"))
    t_exp, _ = _clock(lambda: evaluate(mp, solver="exponential"))
    tpn = build_overlap_tpn(mp)
    for k in config.dataset_counts:
        t_sys, _ = _clock(
            lambda k=k: simulate_system(
                mp, "overlap", n_datasets=k, law="exponential", seed=config.seed
            )
        )
        if k <= config.tpn_cap:
            t_tpn, _ = _clock(
                lambda k=k: simulate_tpn(
                    tpn, n_datasets=k, law="exponential", seed=config.seed
                )
            )
        else:
            t_tpn = float("nan")
        result.add(
            n_datasets=k,
            theory_cst_s=t_cst,
            theory_exp_s=t_exp,
            system_sim_s=t_sys,
            tpn_sim_s=t_tpn,
        )
    result.notes.append(
        "paper: <1s for 100 data sets with all tools; ~3 minutes for "
        "100,000 events (C tools); our Python tooling matches the shape"
    )
    return result
