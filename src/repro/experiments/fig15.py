"""Figure 15 — constant vs exponential: the ``max(u,v)/(u+v-1)`` law.

Single homogeneous communication, ``v`` receivers fixed, sweeping the
number of senders ``u``. Normalizing by the constant throughput, the
exponential series (theory and simulation) follows
``max(u, v)/(u + v − 1)``, a curve in ``(1/2, 1]`` with its minimum near
``u = v``. The paper sweeps u = 2…14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.core import (
    exponential_to_deterministic_ratio,
    pattern_throughput_homogeneous,
)
from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.examples import single_communication
from repro.sim.system_sim import simulate_system


@dataclass
class Fig15Config:
    senders: list[int] = field(default_factory=lambda: list(range(2, 15)))
    v: int = 5
    n_datasets: int = 10_000
    seed: int = 15


def run(config: Fig15Config | None = None) -> ExperimentResult:
    config = config or Fig15Config()
    v = config.v
    result = ExperimentResult(
        name="fig15",
        description=f"exp/cst ratio vs number of senders (v={v} receivers)",
        columns=[
            "u",
            "cst_sim_norm",
            "exp_sim_norm",
            "exp_theory_norm",
            "ratio_formula",
        ],
    )
    for u in config.senders:
        mp = single_communication(u, v, comm_time=1.0)
        cst = evaluate(mp, solver="deterministic")
        g = gcd(u, v)
        exp_theory = g * pattern_throughput_homogeneous(u // g, v // g, 1.0)
        sim_cst = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="deterministic", seed=config.seed,
        ).steady_state_throughput()
        sim_exp = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="exponential", seed=config.seed,
        ).steady_state_throughput()
        result.add(
            u=u,
            cst_sim_norm=sim_cst / cst,
            exp_sim_norm=sim_exp / cst,
            exp_theory_norm=exp_theory / cst,
            ratio_formula=exponential_to_deterministic_ratio(u // g, v // g),
        )
    result.notes.append(
        "paper: ratio = max(u,v)/(u+v-1), between 1/2 and 1, per coprime "
        "pattern (non-coprime sides split into gcd independent patterns)"
    )
    return result
