"""Figure 11 — dispersion of the throughput estimator across 500 runs.

Same system as Fig. 10. For each number of processed data sets
(10 … 10 000) the paper reports min / max / average / standard deviation
of the exponential-times throughput over 500 independent runs. Expected
shape: the dispersion shrinks with the run length — standard deviation
around 2 % of the mean at 5 000 data sets and around 1 % at 10 000.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.experiments.fig10 import paper_system
from repro.sim.runner import ReplicationSpec, replicate


@dataclass
class Fig11Config:
    dataset_counts: list[int] = field(
        default_factory=lambda: [10, 50, 100, 500, 1000, 5000, 10_000]
    )
    n_replications: int = 500
    seed: int = 11
    #: Replication engine: "auto" batches all replications through one
    #: vectorized recurrence pass; "loop" forces the serial oracle.
    #: Values are bit-identical either way.
    engine: str = "auto"


def run(config: Fig11Config | None = None) -> ExperimentResult:
    config = config or Fig11Config()
    mp = paper_system()
    result = ExperimentResult(
        name="fig11",
        description="min/max/avg/std of throughput across replications (exp times)",
        columns=[
            "n_datasets",
            "n_runs",
            "min",
            "avg",
            "max",
            "std",
            "rel_std_pct",
        ],
    )
    for k in config.dataset_counts:
        summary = replicate(
            ReplicationSpec(mp, "overlap", n_datasets=k, law="exponential"),
            n_replications=config.n_replications,
            seed=config.seed,
            engine=config.engine,
        )
        result.add(
            n_datasets=k,
            n_runs=config.n_replications,
            min=summary.min,
            avg=summary.mean,
            max=summary.max,
            std=summary.std,
            rel_std_pct=100.0 * summary.relative_std,
        )
    result.notes.append(
        f"theoretical exponential throughput: "
        f"{evaluate(mp, solver='exponential'):.6g}"
    )
    result.notes.append(
        "paper: std dev ≈2% of the mean at 5,000 data sets, ≈1% at 10,000"
    )
    return result
