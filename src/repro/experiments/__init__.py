"""Reproduction of every table and figure of the paper's Section 7.

Each module exposes ``run(config) -> ExperimentResult``; the CLI
(``python -m repro.cli``) and the ``benchmarks/`` harness drive them.
Default configurations match the paper's parameters; every module also
accepts a scaled-down configuration so the benchmark suite stays fast.
"""

from repro.experiments.common import ExperimentResult, Row
from repro.experiments import (
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    timing,
)

__all__ = [
    "ExperimentResult",
    "Row",
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "timing",
]

ALL_EXPERIMENTS = {
    "table1": table1,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "timing": timing,
}
