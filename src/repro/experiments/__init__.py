"""Reproduction of every table and figure of the paper's Section 7.

Each module exposes ``run(config) -> ExperimentResult``; the CLI
(``python -m repro.cli``) and the ``benchmarks/`` harness drive them.
Default configurations match the paper's parameters; every module also
accepts a scaled-down configuration so the benchmark suite stays fast.

The drivers live in a registry: ``experiment_names()`` /
``get_experiment()`` are the one source both ``repro.cli list`` and the
campaign presets (:mod:`repro.campaign.presets`) derive from. New
drivers only need a ``run()`` entry point and a
:func:`register_experiment` call.
"""

from types import ModuleType

from repro.experiments.common import ExperimentResult, Row
from repro.experiments import (
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    timing,
)

__all__ = [
    "ExperimentResult",
    "Row",
    "register_experiment",
    "experiment_names",
    "get_experiment",
    "experiment_description",
    "ALL_EXPERIMENTS",
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "timing",
]

_REGISTRY: dict[str, ModuleType] = {}


def register_experiment(name: str, module: ModuleType) -> ModuleType:
    """Add a driver module (must expose ``run()``) to the registry."""
    if not callable(getattr(module, "run", None)):
        raise TypeError(
            f"experiment {name!r} must expose a callable run(config) entry point"
        )
    _REGISTRY[name] = module
    return module


def experiment_names() -> tuple[str, ...]:
    """Registered driver names, in registration (paper) order."""
    return tuple(_REGISTRY)


def get_experiment(name: str) -> ModuleType:
    """Driver module registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(experiment_names())
        raise KeyError(
            f"unknown experiment {name!r}; available: {known}"
        ) from None


def experiment_description(name: str) -> str:
    """First docstring line of the driver registered under ``name``."""
    doc = (get_experiment(name).__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


for _name, _module in (
    ("table1", table1),
    ("fig10", fig10),
    ("fig11", fig11),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
    ("fig17", fig17),
    ("timing", timing),
):
    register_experiment(_name, _module)
del _name, _module

#: Backwards-compatible view of the registry (name → driver module).
ALL_EXPERIMENTS = _REGISTRY
