"""Figure 16 — N.B.U.E. laws live inside the Theorem 7 sandwich.

Single homogeneous communication, sweeping the number of senders. For
several N.B.U.E. laws with identical means (truncated normal with two
variances, beta with two shapes, plus constant and exponential as the
extremes), the measured throughput must fall between the exponential
lower bound and the constant upper bound. All values normalized by the
constant throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.core import pattern_throughput_homogeneous
from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.examples import single_communication
from repro.sim.sampling import LawSpec
from repro.sim.system_sim import simulate_system

#: The Fig. 16 laws: all N.B.U.E., means matched to the link time.
NBUE_LAWS: list[LawSpec] = [
    LawSpec.of("deterministic"),
    LawSpec.of("gauss", sigma=0.22),   # "Gauss 5"-like: Var = 0.05 at mean 1
    LawSpec.of("gauss", sigma=0.32),   # "Gauss 10"-like
    LawSpec.of("beta", shape=1.0),     # Beta 1 (uniform on [0, 2·mean])
    LawSpec.of("beta", shape=2.0),     # Beta 2
    LawSpec.of("exponential"),
]


@dataclass
class Fig16Config:
    senders: list[int] = field(default_factory=lambda: list(range(2, 15)))
    v: int = 5
    n_datasets: int = 10_000
    seed: int = 16
    laws: list[LawSpec] = field(default_factory=lambda: list(NBUE_LAWS))


def run(config: Fig16Config | None = None) -> ExperimentResult:
    config = config or Fig16Config()
    v = config.v
    labels = [spec.label for spec in config.laws]
    result = ExperimentResult(
        name="fig16",
        description=f"N.B.U.E. laws between the Theorem 7 bounds (v={v})",
        columns=["u", "lower_exp", "upper_cst", *labels, "all_inside"],
    )
    for u in config.senders:
        mp = single_communication(u, v, comm_time=1.0)
        cst = evaluate(mp, solver="deterministic")
        g = gcd(u, v)
        lower = g * pattern_throughput_homogeneous(u // g, v // g, 1.0) / cst
        row: dict[str, object] = {"u": u, "lower_exp": lower, "upper_cst": 1.0}
        inside = True
        for spec in config.laws:
            rho = simulate_system(
                mp, "overlap", n_datasets=config.n_datasets,
                law=spec, seed=config.seed,
            ).steady_state_throughput() / cst
            row[spec.label] = rho
            # 3% slack for sampling noise on the boundary laws.
            if not (lower * 0.97 <= rho <= 1.03):
                inside = False
        row["all_inside"] = inside
        result.add(**row)
    result.notes.append(
        "paper: every N.B.U.E. law lands between the exponential and the "
        "constant throughput (Theorem 7)"
    )
    return result
