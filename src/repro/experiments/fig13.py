"""Figure 13 — single homogeneous communication: Theorem 4 vs simulation.

System: one communication between ``u`` senders and ``v`` receivers with
negligible computations, homogeneous unit link times. Three series over
the (u, v) grid: constant-times simulation, exponential-times simulation,
and the Theorem 4 closed form ``uvλ/(u+v−1)``. Expected shape: the
predicted exponential values sit on top of the simulated ones, both a
fixed factor ``max(u,v)/(u+v−1)`` below the constant series (all values
normalized by the constant throughput ``min(u, v)·λ``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.core import pattern_throughput_homogeneous
from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.examples import single_communication
from repro.sim.system_sim import simulate_system


@dataclass
class Fig13Config:
    sides: list[tuple[int, int]] = field(
        default_factory=lambda: [
            (u, v) for u in range(2, 10) for v in range(2, 10)
        ]
    )
    n_datasets: int = 10_000
    seed: int = 13


def run(config: Fig13Config | None = None) -> ExperimentResult:
    config = config or Fig13Config()
    result = ExperimentResult(
        name="fig13",
        description="single homogeneous communication: theory vs simulation "
        "(normalized by the constant throughput)",
        columns=[
            "u",
            "v",
            "cst_sim",
            "exp_sim",
            "exp_theory",
            "exp_over_cst",
        ],
    )
    for u, v in config.sides:
        mp = single_communication(u, v, comm_time=1.0)
        cst = evaluate(mp, solver="deterministic")
        g = gcd(u, v)
        theory = g * pattern_throughput_homogeneous(u // g, v // g, 1.0)
        sim_cst = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="deterministic", seed=config.seed,
        ).steady_state_throughput()
        sim_exp = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="exponential", seed=config.seed,
        ).steady_state_throughput()
        result.add(
            u=u,
            v=v,
            cst_sim=sim_cst / cst,
            exp_sim=sim_exp / cst,
            exp_theory=theory / cst,
            exp_over_cst=theory / cst,
        )
    result.notes.append(
        "paper: predicted values are very close to the Simgrid ones; the "
        "normalized exponential throughput equals max(u,v)/(u+v-1) per "
        "coprime pattern"
    )
    return result
