"""Table 1 — counting experiments without critical resource.

The paper draws thousands of random (application, platform, mapping)
instances over several size/time classes and counts, per execution model,
how many have a period strictly longer than every resource cycle-time
("without critical resource"). Headline shapes to reproduce:

* **Overlap**: no such case at all (0 / N for every class);
* **Strict**: a small number of cases, only in the *small* communication
  ranges (e.g. 14/220 for 5…15 s), none in the wide 10…1000 s ranges,
  and the relative gap stays below ≈9 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.application.generators import random_application
from repro.core.critical import analyze_critical_resource
from repro.exceptions import StateSpaceLimitError
from repro.experiments.common import ExperimentResult
from repro.mapping.generators import random_mapping
from repro.platform.generators import random_platform
from repro.types import ExecutionModel


@dataclass(frozen=True)
class InstanceClass:
    """One row class of Table 1."""

    n_stages: int
    n_processors: int
    time_range: tuple[float, float]
    n_experiments: int
    label: str = ""


@dataclass
class Table1Config:
    classes: list[InstanceClass] = field(default_factory=lambda: [
        InstanceClass(10, 20, (5.0, 15.0), 110, "(10,20) 5..15"),
        InstanceClass(10, 30, (5.0, 15.0), 110, "(10,30) 5..15"),
        InstanceClass(10, 20, (10.0, 1000.0), 110, "(10,20) 10..1000"),
        InstanceClass(10, 30, (10.0, 1000.0), 110, "(10,30) 10..1000"),
        InstanceClass(20, 30, (5.0, 15.0), 68, "(20,30) 5..15"),
        InstanceClass(20, 30, (10.0, 1000.0), 68, "(20,30) 10..1000"),
        InstanceClass(2, 7, (5.0, 10.0), 500, "(2,7) comm 5..10"),
        InstanceClass(3, 7, (5.0, 10.0), 500, "(3,7) comm 5..10"),
        InstanceClass(2, 7, (10.0, 50.0), 500, "(2,7) comm 10..50"),
        InstanceClass(3, 7, (10.0, 50.0), 500, "(3,7) comm 10..50"),
    ])
    seed: int = 2010
    gap_tolerance: float = 1e-6
    #: Skip instances whose lcm would unroll beyond this many transitions
    #: (the paper's own tooling is O(m³n³) and has the same practical cap).
    max_transitions: int = 60_000


def scaled_config(scale: float, seed: int = 2010) -> Table1Config:
    """A smaller campaign for the benchmark harness."""
    base = Table1Config(seed=seed)
    classes = [
        InstanceClass(
            c.n_stages,
            c.n_processors,
            c.time_range,
            max(4, int(c.n_experiments * scale)),
            c.label,
        )
        for c in base.classes
    ]
    return Table1Config(classes=classes, seed=seed)


def _draw_instance(cls: InstanceClass, rng: np.random.Generator):
    lo, hi = cls.time_range
    # Fully heterogeneous draw, like the paper: stage/file sizes and
    # processor/link capacities all uniform; realized operation times
    # land in (roughly) the advertised range.
    app = random_application(
        cls.n_stages, rng, work_range=(lo, hi), file_range=(lo, hi)
    )
    plat = random_platform(
        cls.n_processors, rng, speed_range=(1.0, 1.5),
        bandwidth_range=(1.0, 1.5),
    )
    # Keep replication moderate so lcm stays tractable (as the paper's
    # O(m³n³) tooling implicitly required).
    return random_mapping(app, plat, rng, max_replication=4)


def run(config: Table1Config | None = None) -> ExperimentResult:
    config = config or Table1Config()
    result = ExperimentResult(
        name="table1",
        description="experiments without critical resource (per model)",
        columns=[
            "class",
            "model",
            "no_critical",
            "total",
            "max_gap_pct",
        ],
    )
    rng = np.random.default_rng(config.seed)
    skipped = 0
    for cls in config.classes:
        instances = []
        while len(instances) < cls.n_experiments:
            mp = _draw_instance(cls, rng)
            if mp.n_rows * (2 * mp.n_stages - 1) > config.max_transitions:
                skipped += 1
                continue
            instances.append(mp)
        for model in (ExecutionModel.OVERLAP, ExecutionModel.STRICT):
            count = 0
            max_gap = 0.0
            for mp in instances:
                try:
                    report = analyze_critical_resource(mp, model)
                except StateSpaceLimitError:  # pragma: no cover - guarded
                    skipped += 1
                    continue
                gap = report.relative_gap
                max_gap = max(max_gap, gap)
                if not report.has_critical_resource(
                    tolerance=config.gap_tolerance
                ):
                    count += 1
            result.add(
                **{
                    "class": cls.label,
                    "model": model.value,
                    "no_critical": count,
                    "total": cls.n_experiments,
                    "max_gap_pct": 100.0 * max_gap,
                }
            )
    if skipped:
        result.notes.append(f"{skipped} oversized instances redrawn/skipped")
    result.notes.append(
        "paper: Overlap has 0 cases in every class; Strict has a few cases "
        "in the small-communication classes only, gap < 9%"
    )
    return result
