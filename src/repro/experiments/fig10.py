"""Figure 10 — throughput vs number of processed data sets.

System: a 7-stage pipeline replicated (1, 3, 4, 5, 6, 7, 1) on a
homogeneous platform. Four measured series (constant / exponential times ×
system-simulator / event-graph-simulator) plus the theoretical constant
value. Expected shape: every series converges to its theoretical value —
within 1 % by 50 000 data sets — and the exponential and constant curves
stay close to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.mapping import Mapping
from repro.petri import build_overlap_tpn
from repro.sim.runner import ReplicationSpec, throughput_vs_datasets
from repro.sim.tpn_sim import simulate_tpn


def paper_system(
    *, work: float = 10.0, file_size: float = 10.0
) -> Mapping:
    """The 7-stage system of Figs. 10/11, replicated (1,3,4,5,6,7,1)."""
    from repro.mapping.examples import uniform_chain

    return uniform_chain(
        [1, 3, 4, 5, 6, 7, 1], work=work, file_size=file_size
    )


@dataclass
class Fig10Config:
    dataset_counts: list[int] = field(
        default_factory=lambda: [100, 500, 1000, 5000, 10_000, 25_000, 50_000]
    )
    seed: int = 10
    tpn_max_datasets: int = 10_000  # event-graph sim is slower; cap it


def run(config: Fig10Config | None = None) -> ExperimentResult:
    config = config or Fig10Config()
    mp = paper_system()
    result = ExperimentResult(
        name="fig10",
        description="throughput vs number of processed data sets",
        columns=[
            "n_datasets",
            "cst_theory",
            "cst_system",
            "exp_system",
            "cst_tpn",
            "exp_tpn",
            "exp_theory",
        ],
    )
    cst_theory = evaluate(mp, solver="deterministic")
    exp_theory = evaluate(mp, solver="exponential")
    n_max = max(config.dataset_counts)
    # The system-simulator convergence series ride the runner: one run at
    # the largest count, prefix estimates for the smaller ones (the
    # dataset counts are validated as genuine integers up front).
    cst_series = dict(throughput_vs_datasets(
        ReplicationSpec(mp, "overlap", n_datasets=n_max, law="deterministic"),
        config.dataset_counts,
        seed=config.seed,
    ))
    exp_series = dict(throughput_vs_datasets(
        ReplicationSpec(mp, "overlap", n_datasets=n_max, law="exponential"),
        config.dataset_counts,
        seed=config.seed,
    ))
    tpn = build_overlap_tpn(mp)
    n_tpn = min(n_max, config.tpn_max_datasets)
    tpn_cst = simulate_tpn(
        tpn, n_datasets=n_tpn, law="deterministic", seed=config.seed
    )
    tpn_exp = simulate_tpn(
        tpn, n_datasets=n_tpn, law="exponential", seed=config.seed
    )
    for k in config.dataset_counts:
        result.add(
            n_datasets=k,
            cst_theory=cst_theory,
            cst_system=cst_series[k],
            exp_system=exp_series[k],
            cst_tpn=tpn_cst.throughput_after(min(k, n_tpn)),
            exp_tpn=tpn_exp.throughput_after(min(k, n_tpn)),
            exp_theory=exp_theory,
        )
    result.notes.append(
        "paper: all series converge to the theoretical value; the "
        "exponential/constant difference is small; <1% error at 50k tasks"
    )
    return result
