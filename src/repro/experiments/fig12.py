"""Figure 12 — throughput does not depend on the number of stages.

System: a chain of identical "5 senders → 7 receivers" communication
patterns (negligible computations, one costly communication between each
pair of consecutive stages). The event-graph model predicts that, absent
backward dependences, adding stages leaves the throughput unchanged; the
paper's normalized curves are flat across 1…25 stage pairs for both
constant and exponential times.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.application.chain import Application
from repro.core import pattern_throughput_homogeneous
from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.mapping import Mapping
from repro.platform.topology import Platform
from repro.sim.system_sim import simulate_system


def chained_pattern_system(
    n_links: int, *, u: int = 5, v: int = 7, comm_time: float = 1.0
) -> Mapping:
    """``n_links`` successive u→v communications (stages alternate u, v)."""
    reps = [u if i % 2 == 0 else v for i in range(n_links + 1)]
    app = Application.from_work(
        [1e-6] * len(reps), files=[1.0] * n_links
    )
    plat = Platform.homogeneous(sum(reps), 1.0, 1.0 / comm_time)
    teams, k = [], 0
    for r in reps:
        teams.append(list(range(k, k + r)))
        k += r
    return Mapping(app, plat, teams)


@dataclass
class Fig12Config:
    link_counts: list[int] = field(default_factory=lambda: [1, 2, 4, 8, 12])
    u: int = 5
    v: int = 7
    n_datasets: int = 10_000
    seed: int = 12


def run(config: Fig12Config | None = None) -> ExperimentResult:
    config = config or Fig12Config()
    result = ExperimentResult(
        name="fig12",
        description="normalized throughput vs number of stages (flat)",
        columns=[
            "n_links",
            "cst_theory",
            "cst_sim",
            "exp_theory",
            "exp_sim",
            "exp_sim_norm",
        ],
    )
    u, v = config.u, config.v
    exp_ref = pattern_throughput_homogeneous(u, v, 1.0)
    for n_links in config.link_counts:
        mp = chained_pattern_system(n_links, u=u, v=v)
        cst_theory = evaluate(mp, solver="deterministic")
        exp_theory = evaluate(mp, solver="exponential")
        sim_cst = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="deterministic", seed=config.seed,
        )
        sim_exp = simulate_system(
            mp, "overlap", n_datasets=config.n_datasets,
            law="exponential", seed=config.seed,
        )
        # Long chains have a long pipeline-fill transient proportional to
        # the number of stages; the mid-run window removes both it and
        # the drain tail, keeping the series comparable across lengths.
        cst_rho = sim_cst.windowed_throughput(0.3, 0.9)
        exp_rho = sim_exp.windowed_throughput(0.3, 0.9)
        result.add(
            n_links=n_links,
            cst_theory=cst_theory,
            cst_sim=cst_rho,
            exp_theory=exp_theory,
            exp_sim=exp_rho,
            exp_sim_norm=exp_rho / exp_ref,
        )
    result.notes.append(
        "paper: the throughput does not vary with the number of stages "
        "(no backward dependences in the event graph)"
    )
    return result
