"""Figure 17 — non-N.B.U.E. laws can escape the Theorem 7 sandwich.

Same sweep as Fig. 16 but with laws outside the N.B.U.E. class: gamma
with shape < 1 (DFR) and hyperexponential laws fall *below* the
exponential lower bound; gamma with shape > 1 and uniform laws stay
inside (they are in fact N.B.U.E. — the paper's own Fig. 17 shows the
"Gamma 2/5/8" and "Uniform" curves between the bounds, consistent with
our classification; see EXPERIMENTS.md for the discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.core import pattern_throughput_homogeneous
from repro.evaluate import evaluate
from repro.experiments.common import ExperimentResult
from repro.mapping.examples import single_communication
from repro.sim.sampling import LawSpec
from repro.sim.system_sim import simulate_system

#: The Fig. 17 sweep: gamma shapes from the paper plus genuinely
#: non-N.B.U.E. laws (gamma < 1, hyperexponential, lognormal).
FIG17_LAWS: list[LawSpec] = [
    LawSpec.of("gamma", shape=0.25),
    LawSpec.of("gamma", shape=0.5),
    LawSpec.of("gamma", shape=1.0),
    LawSpec.of("gamma", shape=2.0),
    LawSpec.of("gamma", shape=5.0),
    LawSpec.of("gamma", shape=8.0),
    LawSpec.of("uniform", rel_half_width=1.0),
    LawSpec.of("uniform", rel_half_width=0.5),
    LawSpec.of("hyperexponential", cv2=6.0),
    LawSpec.of("lognormal", sigma=1.2),
]


@dataclass
class Fig17Config:
    senders: list[int] = field(default_factory=lambda: list(range(2, 15)))
    v: int = 5
    n_datasets: int = 10_000
    seed: int = 17
    laws: list[LawSpec] = field(default_factory=lambda: list(FIG17_LAWS))


def run(config: Fig17Config | None = None) -> ExperimentResult:
    config = config or Fig17Config()
    v = config.v
    labels = [spec.label for spec in config.laws]
    result = ExperimentResult(
        name="fig17",
        description=f"non-N.B.U.E. laws vs the Theorem 7 bounds (v={v})",
        columns=["u", "lower_exp", "upper_cst", *labels],
    )
    escapes: dict[str, int] = {label: 0 for label in labels}
    for u in config.senders:
        mp = single_communication(u, v, comm_time=1.0)
        cst = evaluate(mp, solver="deterministic")
        g = gcd(u, v)
        lower = g * pattern_throughput_homogeneous(u // g, v // g, 1.0) / cst
        row: dict[str, object] = {"u": u, "lower_exp": lower, "upper_cst": 1.0}
        for spec in config.laws:
            rho = simulate_system(
                mp, "overlap", n_datasets=config.n_datasets,
                law=spec, seed=config.seed,
            ).steady_state_throughput() / cst
            row[spec.label] = rho
            if rho < lower * 0.97 or rho > 1.03:
                escapes[spec.label] += 1
        result.add(**row)
    for label, count in escapes.items():
        if count:
            result.notes.append(
                f"{label}: escaped the N.B.U.E. sandwich on {count} sweep points"
            )
    result.notes.append(
        "paper: non-N.B.U.E. laws can be larger or smaller than both the "
        "constant and exponential cases"
    )
    return result
