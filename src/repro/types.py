"""Shared enums and type aliases used across the library."""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

#: Anything accepted where a float is expected (numpy scalars included).
Real = Union[int, float, np.floating]

#: Index of a processor in a platform (0-based).
ProcIndex = int

#: Index of a stage in an application (0-based; the paper uses 1-based T_i).
StageIndex = int


class ExecutionModel(enum.Enum):
    """The two execution models of the paper (Section 2.1).

    * ``OVERLAP`` — a processor can simultaneously receive the next data
      set, compute the current one and send the previous one (full duplex,
      one-port per direction).
    * ``STRICT`` — receive, compute and send are serialized on each
      processor (single-threaded, one-port).
    """

    OVERLAP = "overlap"
    STRICT = "strict"

    @classmethod
    def coerce(cls, value: "ExecutionModel | str") -> "ExecutionModel":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(f"unknown execution model: {value!r}") from exc


class TransitionKind(enum.Enum):
    """What a timed-Petri-net transition models."""

    COMPUTE = "compute"
    COMM = "comm"


class PlaceKind(enum.Enum):
    """Why a place exists in the timed Petri net (Section 3 constraints).

    * ``FLOW`` — data dependence along a row (constraint set 1);
    * ``PROC_CYCLE`` — round-robin of a processor's computations
      (Overlap constraint 2);
    * ``OUT_PORT`` — one-port round-robin on a processor's sends
      (Overlap constraint 3);
    * ``IN_PORT`` — one-port round-robin on a processor's receptions
      (Overlap constraint 4);
    * ``STRICT_CYCLE`` — serialization receive→compute→send→receive of the
      Strict model (Section 3.3);
    * ``CAPACITY`` — optional finite-buffer back-pressure place (library
      extension, see DESIGN.md §3.3).
    """

    FLOW = "flow"
    PROC_CYCLE = "proc-cycle"
    OUT_PORT = "out-port"
    IN_PORT = "in-port"
    STRICT_CYCLE = "strict-cycle"
    CAPACITY = "capacity"
