"""Linear-chain streaming applications (paper Section 2.1)."""

from repro.application.stage import Stage
from repro.application.chain import Application
from repro.application.generators import random_application

__all__ = ["Stage", "Application", "random_application"]
