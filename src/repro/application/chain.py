"""The linear-chain application model of the paper (Section 2.1).

An :class:`Application` is an immutable sequence of :class:`Stage` objects
``T_1, …, T_N``. Stage ``T_i`` has size ``w_i`` (flop) and produces a file
``F_i`` of ``δ_i`` bytes consumed by ``T_{i+1}``; ``T_1`` produces the
initial data and ``T_N`` gathers the final data, so there are ``N - 1``
inter-stage files.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.application.stage import Stage
from repro.exceptions import InvalidApplicationError


class Application(Sequence[Stage]):
    """A streaming application whose dependence graph is a linear chain."""

    __slots__ = ("_stages",)

    def __init__(self, stages: Iterable[Stage]) -> None:
        stages = tuple(
            s if s.name else s.renamed(f"T{i + 1}") for i, s in enumerate(stages)
        )
        if not stages:
            raise InvalidApplicationError("an application needs at least one stage")
        if stages[-1].output_size != 0.0:
            raise InvalidApplicationError(
                "the last stage must not produce an output file "
                f"(got δ_N = {stages[-1].output_size})"
            )
        self._stages = stages

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_work(
        cls, work: Sequence[float], files: Sequence[float] | None = None
    ) -> "Application":
        """Build a chain from stage sizes and (optionally) file sizes.

        Parameters
        ----------
        work:
            ``w_1 … w_N`` in flop.
        files:
            ``δ_1 … δ_{N-1}`` in bytes; defaults to all zeros
            (communication-free application).
        """
        n = len(work)
        if files is None:
            files = [0.0] * max(n - 1, 0)
        if len(files) != max(n - 1, 0):
            raise InvalidApplicationError(
                f"expected {n - 1} file sizes for {n} stages, got {len(files)}"
            )
        sizes = list(files) + [0.0]
        return cls(Stage(float(w), float(d)) for w, d in zip(work, sizes))

    @classmethod
    def uniform(cls, n_stages: int, work: float, file_size: float) -> "Application":
        """A chain of ``n_stages`` identical stages with identical files."""
        if n_stages < 1:
            raise InvalidApplicationError("n_stages must be >= 1")
        return cls.from_work([work] * n_stages, [file_size] * (n_stages - 1))

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stages)

    def __getitem__(self, index):  # type: ignore[override]
        return self._stages[index]

    def __iter__(self) -> Iterator[Stage]:
        return iter(self._stages)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Application) and self._stages == other._stages

    def __hash__(self) -> int:
        return hash(self._stages)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{s.name}(w={s.work:g}, δ={s.output_size:g})" for s in self._stages
        )
        return f"Application([{inner}])"

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of stages ``N``."""
        return len(self._stages)

    @property
    def works(self) -> np.ndarray:
        """Vector ``(w_1, …, w_N)`` of stage sizes in flop."""
        return np.array([s.work for s in self._stages], dtype=float)

    @property
    def file_sizes(self) -> np.ndarray:
        """Vector ``(δ_1, …, δ_{N-1})`` of inter-stage file sizes in bytes."""
        return np.array([s.output_size for s in self._stages[:-1]], dtype=float)

    def file_size(self, i: int) -> float:
        """Size of file ``F_{i+1}`` flowing from stage ``i`` to ``i + 1``.

        ``i`` is a 0-based stage index; valid for ``0 <= i < N - 1``.
        """
        if not 0 <= i < self.n_stages - 1:
            raise IndexError(f"no file after stage index {i} (N={self.n_stages})")
        return self._stages[i].output_size
