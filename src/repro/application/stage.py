"""A single stage of a linear-chain streaming application."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidApplicationError


@dataclass(frozen=True, slots=True)
class Stage:
    """Stage ``T_i`` of the pipeline (paper Section 2.1).

    Attributes
    ----------
    work:
        Size ``w_i`` of the stage in flop. Must be non-negative; zero is
        allowed and models a negligible computation, as used by the paper's
        communication-only experiments (Section 7.4).
    output_size:
        Size ``δ_i`` in bytes of the file ``F_i`` produced for the next
        stage. The last stage of a chain has ``output_size == 0.0``.
    name:
        Optional human-readable identifier; defaults to ``"T{index}"`` when
        the stage is inserted into an :class:`~repro.application.Application`.
    """

    work: float
    output_size: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.work < 0:
            raise InvalidApplicationError(f"stage work must be >= 0, got {self.work}")
        if self.output_size < 0:
            raise InvalidApplicationError(
                f"stage output size must be >= 0, got {self.output_size}"
            )

    def renamed(self, name: str) -> "Stage":
        """Return a copy of this stage carrying ``name``."""
        return Stage(self.work, self.output_size, name)
