"""Random application generators for the experimental campaigns.

The paper's Table 1 draws stage and file sizes uniformly from ranges such as
5…15 s or 10…1000 s of *work time* on a reference processor; we keep the
same convention: callers pass time ranges and a reference speed/bandwidth of
1, so work == time numerically.
"""

from __future__ import annotations

import numpy as np

from repro.application.chain import Application
from repro.exceptions import InvalidApplicationError


def random_application(
    n_stages: int,
    rng: np.random.Generator,
    *,
    work_range: tuple[float, float] = (5.0, 15.0),
    file_range: tuple[float, float] = (5.0, 15.0),
) -> Application:
    """Draw an application with uniform stage and file sizes.

    Parameters
    ----------
    n_stages:
        Number of pipeline stages ``N >= 1``.
    rng:
        Numpy random generator (callers control seeding).
    work_range, file_range:
        Inclusive bounds of the uniform laws for ``w_i`` and ``δ_i``.
    """
    if n_stages < 1:
        raise InvalidApplicationError("n_stages must be >= 1")
    lo_w, hi_w = work_range
    lo_f, hi_f = file_range
    if lo_w < 0 or hi_w < lo_w or lo_f < 0 or hi_f < lo_f:
        raise InvalidApplicationError("invalid work/file ranges")
    work = rng.uniform(lo_w, hi_w, size=n_stages)
    files = rng.uniform(lo_f, hi_f, size=max(n_stages - 1, 0))
    return Application.from_work(work.tolist(), files.tolist())
