"""Scalar (max,+) semiring operations.

In the (max,+) semiring the "addition" is ``max`` (neutral element
``-inf``) and the "multiplication" is ``+`` (neutral element ``0``). The
daters ``D(n)`` of a timed event graph satisfy ``D(n) = D(n-1) ⊗ A(n)``
(paper, proof of Theorem 5), which is why the algebra shows up everywhere
in the deterministic analysis.
"""

from __future__ import annotations

import numpy as np

#: The semiring zero (neutral for ``oplus``); absent arcs carry this weight.
NEG_INF: float = float("-inf")


def is_neg_inf(x) -> np.ndarray | bool:
    """Elementwise test against the semiring zero."""
    return np.isneginf(x)


def oplus(a, b):
    """Semiring addition: elementwise maximum."""
    return np.maximum(a, b)


def otimes(a, b):
    """Semiring multiplication: elementwise addition.

    ``-inf + x`` must stay ``-inf`` (absorbing), which numpy guarantees
    except for the indeterminate form ``-inf + inf`` — never produced here
    because the library only manipulates finite firing times.
    """
    return np.add(a, b)
