"""(max,+) algebra: semiring, matrices, and critical-cycle computation.

Timed event graphs evolve linearly in the (max,+) semiring (paper
Section 4, after Baccelli et al. [2]); the throughput of a strongly
connected graph is the inverse of its maximum cycle ratio
``max_C Σ(firing times)/Σ(tokens)``.
"""

from repro.maxplus.semiring import NEG_INF, oplus, otimes, is_neg_inf
from repro.maxplus.matrix import MaxPlusMatrix
from repro.maxplus.graph import Arc, TokenGraph
from repro.maxplus.cycle import (
    CycleResult,
    max_cycle_ratio,
    max_cycle_ratio_brute_force,
    max_mean_cycle_karp,
)
from repro.maxplus.howard import howard_max_cycle_ratio
from repro.maxplus.dater import dater_evolution, dater_throughput

__all__ = [
    "NEG_INF",
    "oplus",
    "otimes",
    "is_neg_inf",
    "MaxPlusMatrix",
    "Arc",
    "TokenGraph",
    "CycleResult",
    "max_cycle_ratio",
    "max_cycle_ratio_brute_force",
    "max_mean_cycle_karp",
    "howard_max_cycle_ratio",
    "dater_evolution",
    "dater_throughput",
]
