"""Maximum cycle ratio / maximum mean cycle solvers.

The period of a strongly connected timed event graph is the *maximum cycle
ratio* of its token graph::

    P  =  max over cycles C of  Σ_{arc ∈ C} weight / Σ_{arc ∈ C} tokens

(paper Section 4, after [2]). Three solvers are provided:

* :func:`max_cycle_ratio` — exact cycle-ratio iteration: repeatedly test
  "is there a cycle with ``Σ(w - λ·t) > 0``?" by Bellman-Ford positive-
  cycle detection, and jump ``λ`` to the exact ratio of any witness cycle.
  ``λ`` strictly increases within the finite set of simple-cycle ratios, so
  the iteration terminates with the optimum and a witness critical cycle.
  Relaxations are vectorized over arcs (numpy), so each Bellman-Ford round
  costs O(E) array work.
* :func:`max_mean_cycle_karp` — Karp's classic O(VE) dynamic program for
  the maximum *mean* cycle (all token counts equal to 1); used by the
  (max,+) eigenvalue and as an independent cross-check.
* :func:`max_cycle_ratio_brute_force` — explicit enumeration of simple
  cycles via networkx; exponential, reserved for the test-suite oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StructuralError
from repro.maxplus.graph import TokenGraph
from repro.telemetry.profile import profile_span


@dataclass(frozen=True, slots=True)
class CycleResult:
    """A critical cycle and its ratio."""

    ratio: float
    nodes: tuple[int, ...]
    total_weight: float
    total_tokens: int


# ----------------------------------------------------------------------
# Vectorized Bellman-Ford positive-cycle machinery
# ----------------------------------------------------------------------
class _ArcData:
    """Pre-sorted arc arrays enabling vectorized segment-max relaxation."""

    __slots__ = ("n", "src", "dst", "weight", "tokens", "starts", "seg_nodes", "order")

    def __init__(self, graph: TokenGraph) -> None:
        self.n = graph.n_nodes
        src, dst, wgt, tok = graph.arc_arrays()
        order = np.argsort(dst, kind="stable")
        self.order = order
        self.src = src[order]
        self.dst = dst[order]
        self.weight = wgt[order]
        self.tokens = tok[order]
        # Segment boundaries: arcs grouped by destination node.
        self.seg_nodes, self.starts = np.unique(self.dst, return_index=True)


def _positive_cycle(data: _ArcData, lam: float, eps: float) -> tuple[int, ...] | None:
    """A cycle with ``Σ(w - λ t) > eps·|C|`` if one exists, else ``None``.

    Synchronous Bellman-Ford maximizing walk gains from the all-zero
    potential (equivalent to a virtual source towards every node). If gains
    still improve after ``n`` rounds, a positive cycle exists; it is
    recovered by walking the predecessor pointers.
    """
    n = data.n
    if data.src.size == 0:
        return None
    gain = data.weight - lam * data.tokens
    dist = np.zeros(n)
    pred = np.full(n, -1, dtype=np.int64)  # arc index (sorted order) per node
    big = np.int64(np.iinfo(np.int64).max)

    arc_ids = np.arange(data.src.size, dtype=np.int64)
    improved_nodes: np.ndarray | None = None
    for _ in range(n + 1):
        cand = dist[data.src] + gain
        seg_max = np.maximum.reduceat(cand, data.starts)
        better = seg_max > dist[data.seg_nodes] + eps
        if not better.any():
            return None
        # argmax within each segment: first arc achieving the segment max.
        rep = np.repeat(
            seg_max,
            np.diff(np.append(data.starts, cand.size)),
        )
        hit = np.where(cand >= rep, arc_ids, big)
        seg_arg = np.minimum.reduceat(hit, data.starts)
        upd = data.seg_nodes[better]
        dist[upd] = seg_max[better]
        pred[upd] = seg_arg[better]
        improved_nodes = upd
    # Still improving after n rounds: walk back n steps to land on a cycle.
    assert improved_nodes is not None
    v = int(improved_nodes[0])
    for _ in range(n):
        v = int(data.src[pred[v]])
    cycle = [v]
    u = int(data.src[pred[v]])
    while u != v:
        cycle.append(u)
        u = int(data.src[pred[u]])
    cycle.reverse()
    return tuple(cycle)


def _cycle_ratio(data: _ArcData, cycle: tuple[int, ...], lam: float) -> tuple[float, float, int]:
    """Exact (ratio, weight, tokens) of the cycle found at level ``lam``.

    Among parallel arcs ``u → v`` the walk used the one with the largest
    gain at ``lam``; we re-select it deterministically.
    """
    total_w, total_t = 0.0, 0.0
    k = len(cycle)
    for i in range(k):
        u, v = cycle[i], cycle[(i + 1) % k]
        mask = (data.src == u) & (data.dst == v)
        if not mask.any():
            raise StructuralError("cycle walk used a non-existent arc")
        gains = data.weight[mask] - lam * data.tokens[mask]
        j = int(np.argmax(gains))
        total_w += float(data.weight[mask][j])
        total_t += float(data.tokens[mask][j])
    if total_t <= 0:
        raise StructuralError("critical cycle carries no token (dead TPN)")
    return total_w / total_t, total_w, int(total_t)


def max_cycle_ratio(graph: TokenGraph) -> CycleResult | None:
    """Maximum cycle ratio of a token graph, or ``None`` if acyclic.

    Raises :class:`StructuralError` when the graph contains a zero-token
    cycle (a dead timed event graph whose ratio would be infinite).
    """
    with profile_span("critical_cycle"):
        return _max_cycle_ratio(graph)


def _max_cycle_ratio(graph: TokenGraph) -> CycleResult | None:
    if graph.has_zero_token_cycle():
        raise StructuralError("graph has a zero-token cycle: the TPN is not live")
    data = _ArcData(graph)
    if data.src.size == 0:
        return None

    scale = float(np.abs(data.weight).max()) if data.weight.size else 1.0
    eps = max(scale, 1.0) * 1e-12

    # Start strictly below every possible cycle ratio (a cycle's ratio is
    # at least the smallest weight/token quotient of its arcs) so even a
    # ratio-0 critical cycle yields a strictly positive gain.
    lam = float(np.min(data.weight / np.maximum(data.tokens, 1.0)))
    lam = min(lam, 0.0) - max(scale, 1.0) * 1e-9
    best: CycleResult | None = None
    # Cycle-ratio iteration: each pass either proves optimality or jumps to
    # a strictly larger simple-cycle ratio, so termination is finite.
    for _ in range(graph.n_arcs + 2):
        cycle = _positive_cycle(data, lam, eps)
        if cycle is None:
            return best
        ratio, w, t = _cycle_ratio(data, cycle, lam)
        if best is not None and ratio <= best.ratio + eps:
            # Numerical stall: the witness no longer improves the ratio.
            return best
        best = CycleResult(ratio, cycle, w, t)
        lam = ratio
    return best  # pragma: no cover - safeguarded by finite ratio set


def max_mean_cycle_karp(graph: TokenGraph) -> float:
    """Maximum mean cycle weight (token counts ignored), by Karp's DP.

    Requires at least one cycle. Works per SCC and returns the global max.
    ``D[k, v]`` is the maximum weight of an edge progression of length
    ``k`` from an arbitrary root; the answer is
    ``max_v min_k (D[n, v] - D[k, v]) / (n - k)``.
    """
    best = -np.inf
    for comp in graph.strongly_connected_components():
        sub, _ = graph.subgraph(comp)
        if sub.n_arcs == 0:
            continue
        src, dst, wgt, _ = sub.arc_arrays()
        n = sub.n_nodes
        d = np.full((n + 1, n), -np.inf)
        d[0, 0] = 0.0
        for k in range(1, n + 1):
            cand = d[k - 1, src] + wgt
            np.maximum.at(d[k], dst, cand)
        finite = np.isfinite(d[n])
        if not finite.any():
            continue
        with np.errstate(invalid="ignore"):
            ks = np.arange(n)[:, None]
            ratios = (d[n][None, :] - d[:n, :]) / (n - ks)
        # min over k of the ratio, only where D[k, v] is finite.
        ratios = np.where(np.isfinite(d[:n, :]), ratios, np.inf)
        per_node = ratios.min(axis=0)
        comp_best = per_node[finite].max()
        best = max(best, float(comp_best))
    if not np.isfinite(best):
        raise StructuralError("max_mean_cycle_karp requires at least one cycle")
    return best


def max_cycle_ratio_brute_force(graph: TokenGraph) -> CycleResult | None:
    """Oracle: enumerate simple cycles with networkx (exponential).

    The maximum cycle ratio is always attained on a simple cycle, so the
    enumeration is a valid (if slow) reference implementation used by the
    test-suite to validate :func:`max_cycle_ratio`.
    """
    import networkx as nx

    g = graph.to_networkx()
    best: CycleResult | None = None
    for cyc in nx.simple_cycles(g):
        k = len(cyc)
        total_w = total_t = 0.0
        # Parallel arcs: the ratio-maximizing choice per hop is ambiguous
        # (it depends on λ); enumerate greedily over each parallel bundle
        # by taking the max-weight/min-token dominant candidates. For the
        # oracle we simply try every combination when bundles are small.
        options_per_hop = []
        for i in range(k):
            u, v = cyc[i], cyc[(i + 1) % k]
            bundle = [
                (d["weight"], d["tokens"]) for d in g.get_edge_data(u, v).values()
            ]
            options_per_hop.append(bundle)
        # Cartesian product over parallel bundles (tiny in practice).
        import itertools

        for combo in itertools.product(*options_per_hop):
            total_w = sum(w for w, _ in combo)
            total_t = sum(t for _, t in combo)
            if total_t == 0:
                raise StructuralError("zero-token cycle in brute-force oracle")
            ratio = total_w / total_t
            if best is None or ratio > best.ratio:
                best = CycleResult(ratio, tuple(cyc), total_w, int(total_t))
    return best
