"""Weighted token graphs — the combinatorial core of the static analysis.

A :class:`TokenGraph` is a directed multigraph whose arcs carry a real
``weight`` (firing time contribution) and an integer ``tokens`` count
(initial marking of the corresponding place). The deterministic period of a
timed event graph is the maximum over cycles ``C`` of
``Σ weight(C) / Σ tokens(C)`` (paper Section 4); the graph is extracted
from a TPN by mapping transitions to nodes and places to arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

import numpy as np

from repro.exceptions import StructuralError


@dataclass(frozen=True, slots=True)
class Arc:
    """A place seen as an arc of the precedence graph."""

    src: int
    dst: int
    weight: float
    tokens: int

    def __post_init__(self) -> None:
        if self.tokens < 0:
            raise StructuralError(f"negative token count on arc {self}")
        if not np.isfinite(self.weight):
            raise StructuralError(f"non-finite weight on arc {self}")


class TokenGraph:
    """Directed multigraph with (weight, tokens) arcs."""

    __slots__ = ("_n", "_arcs")

    def __init__(self, n_nodes: int, arcs: Iterable[Arc] = ()) -> None:
        if n_nodes < 1:
            raise StructuralError("a token graph needs at least one node")
        self._n = int(n_nodes)
        self._arcs: list[Arc] = []
        for a in arcs:
            self.add_arc(a.src, a.dst, weight=a.weight, tokens=a.tokens)

    # ------------------------------------------------------------------
    def add_arc(self, src: int, dst: int, *, weight: float, tokens: int) -> None:
        if not (0 <= src < self._n and 0 <= dst < self._n):
            raise StructuralError(
                f"arc ({src}->{dst}) outside node range 0..{self._n - 1}"
            )
        self._arcs.append(Arc(src, dst, float(weight), int(tokens)))

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_arcs(self) -> int:
        return len(self._arcs)

    @property
    def arcs(self) -> tuple[Arc, ...]:
        return tuple(self._arcs)

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TokenGraph(nodes={self._n}, arcs={len(self._arcs)})"

    # ------------------------------------------------------------------
    def arc_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized view ``(src, dst, weight, tokens)`` for the solvers."""
        if not self._arcs:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=float)
            return empty_i, empty_i.copy(), empty_f, empty_f.copy()
        src = np.fromiter((a.src for a in self._arcs), dtype=np.int64)
        dst = np.fromiter((a.dst for a in self._arcs), dtype=np.int64)
        wgt = np.fromiter((a.weight for a in self._arcs), dtype=float)
        tok = np.fromiter((float(a.tokens) for a in self._arcs), dtype=float)
        return src, dst, wgt, tok

    def to_networkx(self):
        """A ``networkx.MultiDiGraph`` view (used by tests / brute force)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self._n))
        for a in self._arcs:
            g.add_edge(a.src, a.dst, weight=a.weight, tokens=a.tokens)
        return g

    # ------------------------------------------------------------------
    def strongly_connected_components(self) -> list[list[int]]:
        """SCCs of the underlying digraph (singletons included)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from((a.src, a.dst) for a in self._arcs)
        return [sorted(c) for c in nx.strongly_connected_components(g)]

    def subgraph(self, nodes: Iterable[int]) -> tuple["TokenGraph", dict[int, int]]:
        """Induced subgraph with relabelled nodes; returns (graph, old→new)."""
        keep = sorted(set(nodes))
        relabel = {old: new for new, old in enumerate(keep)}
        sub = TokenGraph(max(len(keep), 1))
        for a in self._arcs:
            if a.src in relabel and a.dst in relabel:
                sub.add_arc(
                    relabel[a.src], relabel[a.dst], weight=a.weight, tokens=a.tokens
                )
        return sub, relabel

    def has_zero_token_cycle(self) -> bool:
        """Whether some cycle carries no token (a dead / non-live TPN).

        Such a cycle can never fire: the maximum cycle ratio would be
        ``+inf``. The builders never produce one; this check guards
        hand-built graphs.
        """
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(
            (a.src, a.dst) for a in self._arcs if a.tokens == 0
        )
        try:
            nx.find_cycle(g)
            return True
        except nx.NetworkXNoCycle:
            return False
