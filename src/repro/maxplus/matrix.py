"""Dense (max,+) matrices.

A square (max,+) matrix ``A`` encodes a weighted precedence graph
(``A[i, j]`` is the weight of arc ``i → j``, ``-inf`` when absent). The
library uses them for the dater recursions of Section 6's proofs and for
property-testing the cycle algorithms: the (max,+) eigenvalue of an
irreducible matrix equals its maximum mean cycle weight.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import StructuralError
from repro.maxplus.semiring import NEG_INF


class MaxPlusMatrix:
    """A square matrix over the (max,+) semiring."""

    __slots__ = ("_a",)

    def __init__(self, data: np.ndarray | Sequence[Sequence[float]]) -> None:
        a = np.array(data, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise StructuralError(f"expected a square matrix, got shape {a.shape}")
        self._a = a

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int) -> "MaxPlusMatrix":
        """The semiring zero matrix (all entries ``-inf``)."""
        return cls(np.full((n, n), NEG_INF))

    @classmethod
    def identity(cls, n: int) -> "MaxPlusMatrix":
        """The semiring identity (0 on the diagonal, ``-inf`` elsewhere)."""
        a = np.full((n, n), NEG_INF)
        np.fill_diagonal(a, 0.0)
        return cls(a)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._a.shape[0]

    @property
    def array(self) -> np.ndarray:
        """The underlying ndarray (``-inf`` marks absent arcs)."""
        return self._a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MaxPlusMatrix) and np.array_equal(self._a, other._a)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("MaxPlusMatrix is not hashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPlusMatrix(n={self.n})"

    # ------------------------------------------------------------------
    #: Row-block budget for :meth:`matmul` temporaries, in float64 elements
    #: (8 MB). The block height adapts so the broadcast scratch stays
    #: ``O(n²)`` memory however large the matrix gets.
    _BLOCK_ELEMENTS = 1 << 20

    def matmul(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        """Semiring product ``(A ⊗ B)[i,j] = max_k (A[i,k] + B[k,j])``.

        Vectorized with broadcasting, row-blocked: the scratch tensor for
        a block of ``r`` rows has shape ``(r, n, n)``, and ``r`` is chosen
        so it stays within :attr:`_BLOCK_ELEMENTS` — O(n²) memory overall
        instead of the full ``(n, n, n)`` temporary.
        """
        a, b = self._a, other._a
        n = self.n
        rows = max(1, min(n, self._BLOCK_ELEMENTS // max(1, n * n)))
        out = np.empty_like(a)
        for i0 in range(0, n, rows):
            i1 = min(n, i0 + rows)
            out[i0:i1] = (a[i0:i1, :, None] + b[None, :, :]).max(axis=1)
        return MaxPlusMatrix(out)

    def __matmul__(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        return self.matmul(other)

    def vecmul(self, vec: np.ndarray) -> np.ndarray:
        """Row-vector product ``(v ⊗ A)[j] = max_i (v[i] + A[i,j])``.

        This is the dater update ``D(n) = D(n-1) ⊗ A(n)`` used in the
        proof of Theorem 5.
        """
        v = np.asarray(vec, dtype=float)
        return (v[:, None] + self._a).max(axis=0)

    def power(self, k: int) -> "MaxPlusMatrix":
        """Semiring power ``A^{⊗k}`` by binary exponentiation."""
        if k < 0:
            raise ValueError("negative powers are undefined in (max,+)")
        result = MaxPlusMatrix.identity(self.n)
        base = MaxPlusMatrix(self._a.copy())
        while k:
            if k & 1:
                result = result @ base
            base = base @ base
            k >>= 1
        return result

    # ------------------------------------------------------------------
    def is_irreducible(self) -> bool:
        """Whether the precedence graph is strongly connected."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        rows, cols = np.nonzero(np.isfinite(self._a))
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return nx.is_strongly_connected(g)

    def eigenvalue(self) -> float:
        """(max,+) eigenvalue of an irreducible matrix.

        Equals the maximum mean cycle weight of the precedence graph
        (Baccelli et al. [2], Thm. 3.23). Computed by delegating to the
        cycle engine with unit token counts.
        """
        from repro.maxplus.cycle import max_mean_cycle_karp
        from repro.maxplus.graph import TokenGraph

        if not self.is_irreducible():
            raise StructuralError("eigenvalue requires an irreducible matrix")
        g = TokenGraph(self.n)
        rows, cols = np.nonzero(np.isfinite(self._a))
        for i, j in zip(rows.tolist(), cols.tolist()):
            g.add_arc(i, j, weight=float(self._a[i, j]), tokens=1)
        return max_mean_cycle_karp(g)
